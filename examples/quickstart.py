"""Quickstart: explain a filter and a group-by step on the Spotify dataset.

Reproduces the paper's running example (Section 1 / Figure 2): filter the
songs to the popular ones and ask FEDEX what is interesting about the result,
then group recent songs by year and ask again.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Comparison, ExplainableDataFrame
from repro.datasets import load_spotify


def main() -> None:
    # A reduced Spotify dataset keeps the example fast; crank n_rows up to
    # repro.datasets.FULL_SPOTIFY_ROWS for the paper-scale table.
    songs = ExplainableDataFrame(load_spotify(n_rows=30_000, seed=7))
    print(f"Loaded the Spotify dataset: {songs.shape[0]} rows x {songs.shape[1]} columns")

    # Step 1 — "what makes songs popular?": keep only the popular songs.
    popular = songs.filter(Comparison("popularity", ">", 65), label="popular songs")
    print(f"\nFilter popularity > 65 -> {popular.shape[0]} rows")
    print("\n" + popular.explain_text(width=44))

    # Step 2 — focus on recent songs and compare loudness/danceability by year.
    by_year = songs.groupby(
        "year",
        {"loudness": ["mean"], "danceability": ["mean"]},
        pre_filter=Comparison("year", ">=", 1990),
        label="mean loudness and danceability per year since 1990",
    )
    print(f"\nGroup-by year (year >= 1990) -> {by_year.shape[0]} groups")
    print("\n" + by_year.explain_text(width=44))


if __name__ == "__main__":
    main()
