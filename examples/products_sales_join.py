"""Explaining join and group-by steps on the Products & Sales dataset.

The paper's largest dataset joins a product catalogue with a multi-million
row sales log.  This example reproduces that session at a reduced scale:
join the two tables, explain what the join changed, then aggregate sales by
vendor and explain the diversity of the result.

Run with::

    python examples/products_sales_join.py
"""

from __future__ import annotations

from repro import Comparison, ExplainableDataFrame
from repro.datasets import load_products_and_sales
from repro.viz import chart_to_json


def main() -> None:
    products, sales = load_products_and_sales(n_sales=60_000, n_products=3_000, seed=29)
    print(f"Products: {products.shape[0]} rows x {products.shape[1]} columns")
    print(f"Sales:    {sales.shape[0]} rows x {sales.shape[1]} columns")

    catalogue = ExplainableDataFrame(products)

    # Step 1 — join the catalogue with the sales log (query 1 of the workload).
    joined = catalogue.join(sales, on="item", label="products joined with sales")
    print(f"\nJoin on item -> {joined.shape[0]} rows")
    print("\n" + joined.explain_text(width=44))

    # Step 2 — six-bottle packs only (query 5 uses pack == 12; we look at 6).
    # After the join, colliding column names carry _left/_right suffixes:
    # "pack_left" is the catalogue pack size.
    six_packs = joined.filter(Comparison("pack_left", "==", 6), label="six-packs")
    print(f"\nSales of six-packs: {six_packs.shape[0]} rows")
    print("\n" + six_packs.explain_text(width=44))

    # Step 3 — sales count per vendor (query 16), explained.
    per_vendor = joined.groupby("vendor_left", include_count=True, label="sales per vendor")
    print(f"\nSales per vendor: {per_vendor.shape[0]} groups")
    report = per_vendor.explain()
    print("\n" + report.render_text(width=44))

    # Explanations are exportable: the chart spec of the first explanation as JSON.
    if report.explanations and report.explanations[0].chart is not None:
        print("\nChart spec of the first explanation (JSON, for external plotting):")
        print(chart_to_json(report.explanations[0].chart)[:600] + " ...")


if __name__ == "__main__":
    main()
