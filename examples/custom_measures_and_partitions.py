"""Customising FEDEX: user-defined interestingness measures and partitioners.

Demonstrates the extension points of Section 3.8:

* a custom interestingness measure (Gini-based concentration) registered next
  to the built-in exceptionality / diversity measures,
* a custom partitioner that buckets a numeric year column into eras,
* restricting the explanation to user-specified columns.

Run with::

    python examples/custom_measures_and_partitions.py
"""

from __future__ import annotations

from repro import Comparison, ExploratoryStep, FedexConfig, Filter, GroupBy
from repro.core import (
    FedexExplainer,
    FunctionMeasure,
    MappingPartitioner,
    default_registry,
)
from repro.datasets import load_spotify
from repro.stats import gini_coefficient


def era_of(year) -> str | None:
    """Custom bucketing of release years into coarse musical eras."""
    if year is None:
        return None
    year = float(year)
    if year < 1970:
        return "early catalogue"
    if year < 1990:
        return "analog era"
    if year < 2010:
        return "digital era"
    return "streaming era"


def main() -> None:
    songs = load_spotify(n_rows=25_000, seed=7)

    # ---------------------------------------------------------------- custom measure
    def concentration(inputs, step, output, attribute) -> float:
        column = output[attribute]
        if not column.is_numeric:
            return 0.0
        return gini_coefficient(column.to_float())

    registry = default_registry()
    registry.register(FunctionMeasure("concentration", concentration, columns="numeric"))

    groupby_step = ExploratoryStep(
        [songs],
        GroupBy("decade", {"popularity": ["mean"], "loudness": ["mean"]}),
        label="per-decade averages",
    )
    explainer = FedexExplainer(FedexConfig(sample_size=5_000), registry=registry)
    report = explainer.explain(groupby_step, measure="concentration")
    print("Explanations under the custom 'concentration' measure:")
    for explanation in report.explanations:
        print(" -", explanation.caption)

    # ------------------------------------------------------------- custom partitioner
    era_partitioner = MappingPartitioner("era", era_of)
    filter_step = ExploratoryStep(
        [songs], Filter(Comparison("popularity", ">", 70)), label="very popular songs"
    )
    explainer = FedexExplainer(
        FedexConfig(sample_size=5_000, target_columns=["year"]),
        extra_partitioners=[era_partitioner],
    )
    report = explainer.explain(filter_step)
    print("\nExplanations of the 'year' column with the custom era partition available:")
    for explanation in report.explanations:
        print(" -", f"[{explanation.candidate.row_set.method}]", explanation.caption)


if __name__ == "__main__":
    main()
