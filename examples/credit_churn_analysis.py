"""Credit-card churn analysis assisted by FEDEX.

Walks through the task of the paper's second user study on the Credit Card
Customers ("Bank") dataset: *why do customers leave the service, and how can
we anticipate it?*  Each exploratory step is explained in one line; the
explanations point at the customer segments that drive the patterns.

Run with::

    python examples/credit_churn_analysis.py
"""

from __future__ import annotations

from repro import Comparison, ExplainableDataFrame
from repro.datasets import load_credit


def main() -> None:
    customers = ExplainableDataFrame(load_credit(n_rows=10_127, seed=11))
    print(f"Loaded the Credit Card Customers dataset: {customers.shape[0]} rows "
          f"x {customers.shape[1]} columns")

    # Step 1 — isolate the churned customers (query 11 of the paper's workload).
    churned = customers.filter(
        Comparison("Attrition_Flag", "!=", "Existing Customer"), label="churned customers"
    )
    print(f"\nChurned customers: {churned.shape[0]} rows")
    print("\n" + churned.explain_text(width=44))

    # Step 2 — among the churned, who kept their activity level up? (query 12)
    active_churners = churned.filter(
        Comparison("Total_Count_Change_Q4_vs_Q1", ">", 0.75), label="active churners"
    )
    print(f"\nChurners whose Q4/Q1 transaction-count ratio stayed above 0.75: "
          f"{active_churners.shape[0]} rows")
    print("\n" + active_churners.explain_text(width=44))

    # Step 3 — profile the customer base by marital status and income (query 26).
    by_segment = customers.groupby(
        ["Marital_Status", "Income_Category"],
        {"Credit_Used": ["mean"], "Total_Transitions_Amount": ["mean"]},
        label="credit usage by segment",
    )
    print(f"\nSegments (marital status x income): {by_segment.shape[0]} groups")
    print("\n" + by_segment.explain_text(width=44))

    # Expert users can focus FEDEX on the columns they care about (paper §3.8).
    focused = churned.explain(target_columns=["Months_Inactive_Count_Last_Year",
                                              "Total_Transactions_Count",
                                              "Total_Transitions_Amount"])
    print("\nFocused explanation (user-specified columns):")
    print(focused.render_text(width=44))


if __name__ == "__main__":
    main()
