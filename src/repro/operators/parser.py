"""A small SQL-ish parser for the paper's workload queries.

Appendix A of the paper specifies its 30 evaluation queries as SQL-like
strings (Tables 2 and 3).  This parser understands exactly that dialect so
the workload definitions in :mod:`repro.workloads` can be written in the same
form the paper publishes them, and users can feed similar one-liners to the
explainer::

    SELECT * FROM spotify WHERE popularity > 65;
    SELECT * FROM products INNER JOIN sales ON products.item=sales.item;
    SELECT mean(loudness), mean(danceability) FROM spotify WHERE year >= 1990 GROUP BY year;
    SELECT count FROM bank GROUP BY Marital_Status, Gender;

The parser produces a :class:`ParsedQuery`: the operation object plus the
names of the referenced tables (resolution of names to dataframes is the
caller's job).  Nested queries of the form ``SELECT * FROM [<subquery>]
WHERE ...`` are supported one level deep (query 12 in Table 2 uses this).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import QueryParseError
from ..dataframe.predicates import And, Comparison, Predicate
from .operations import Filter, GroupBy, Join, Operation

_AGG_PATTERN = re.compile(r"(?P<agg>mean|avg|sum|min|max|median|std|count)\s*\(\s*(?P<col>[\w.]+)\s*\)", re.IGNORECASE)
_COMPARISON_PATTERN = re.compile(
    r"(?P<col>[\w.]+)\s*(?P<op>==|=|!=|>=|<=|>|<)\s*(?P<value>\"[^\"]*\"|'[^']*'|“[^”]*”|[-\w.$]+)"
)
_JOIN_PATTERN = re.compile(
    r"FROM\s+(?P<left>\w+)\s+INNER\s+JOIN\s+(?P<right>\w+)\s+ON\s+(?P<lkey>[\w.]+)\s*=\s*(?P<rkey>[\w.]+)",
    re.IGNORECASE,
)

_AGG_ALIASES = {"avg": "mean"}


@dataclass
class ParsedQuery:
    """Result of parsing a query string."""

    operation: Operation
    tables: List[str]
    inner: Optional["ParsedQuery"] = None
    text: str = ""
    select_columns: List[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        """Operation kind of the outermost operation."""
        return self.operation.kind


def parse_query(text: str) -> ParsedQuery:
    """Parse a single SQL-ish query string into a :class:`ParsedQuery`."""
    original = text
    text = text.strip().rstrip(";").strip()
    if not text:
        raise QueryParseError("empty query string")
    if not re.match(r"(?i)^select\b", text):
        raise QueryParseError(f"query must start with SELECT: {original!r}")

    inner_match = re.search(r"\[(.*)\]", text, flags=re.DOTALL)
    inner_parsed: Optional[ParsedQuery] = None
    if inner_match:
        inner_parsed = parse_query(inner_match.group(1))
        placeholder = "__inner__"
        text = text[: inner_match.start()] + placeholder + text[inner_match.end():]

    if re.search(r"(?i)\bgroup\s+by\b", text):
        parsed = _parse_groupby(text, original)
    elif re.search(r"(?i)\binner\s+join\b", text):
        parsed = _parse_join(text, original)
    else:
        parsed = _parse_filter(text, original)

    parsed.inner = inner_parsed
    parsed.text = original.strip()
    if inner_parsed is not None:
        parsed.tables = [
            table for table in parsed.tables if table != "__inner__"
        ] or inner_parsed.tables
    return parsed


def _parse_filter(text: str, original: str) -> ParsedQuery:
    table_match = re.search(r"(?i)\bfrom\s+(?P<table>[\w__]+)", text)
    if not table_match:
        raise QueryParseError(f"could not find FROM clause in {original!r}")
    table = table_match.group("table")
    where_match = re.search(r"(?i)\bwhere\b(?P<cond>.+)$", text)
    if not where_match:
        raise QueryParseError(f"filter query has no WHERE clause: {original!r}")
    predicate = _parse_condition(where_match.group("cond"), original)
    select_cols = _parse_select_columns(text)
    return ParsedQuery(operation=Filter(predicate), tables=[table], select_columns=select_cols)


def _parse_join(text: str, original: str) -> ParsedQuery:
    match = _JOIN_PATTERN.search(text)
    if not match:
        raise QueryParseError(f"could not parse join clause in {original!r}")
    left, right = match.group("left"), match.group("right")
    left_key = match.group("lkey").split(".")[-1]
    right_key = match.group("rkey").split(".")[-1]
    if left_key != right_key:
        # The substrate joins on a shared column name; the paper's join keys
        # always match after stripping the table prefix.
        raise QueryParseError(
            f"join keys must share a column name, got {left_key!r} and {right_key!r}"
        )
    return ParsedQuery(operation=Join(on=left_key), tables=[left, right])


def _parse_groupby(text: str, original: str) -> ParsedQuery:
    table_match = re.search(r"(?i)\bfrom\s+(?P<table>[\w__]+)", text)
    if not table_match:
        raise QueryParseError(f"could not find FROM clause in {original!r}")
    table = table_match.group("table")

    group_match = re.search(r"(?i)\bgroup\s+by\s+(?P<keys>.+)$", text)
    if not group_match:
        raise QueryParseError(f"could not find GROUP BY clause in {original!r}")
    keys = [key.strip() for key in group_match.group("keys").split(",") if key.strip()]

    select_clause = re.search(r"(?i)^select\s+(?P<cols>.+?)\s+from\b", text)
    if not select_clause:
        raise QueryParseError(f"could not parse SELECT clause in {original!r}")
    select_text = select_clause.group("cols")

    aggregations: Dict[str, List[str]] = {}
    include_count = False
    for agg_match in _AGG_PATTERN.finditer(select_text):
        agg = agg_match.group("agg").lower()
        agg = _AGG_ALIASES.get(agg, agg)
        column = agg_match.group("col").split(".")[-1]
        if agg == "count":
            include_count = True
            continue
        aggregations.setdefault(column, [])
        if agg not in aggregations[column]:
            aggregations[column].append(agg)
    if re.fullmatch(r"(?i)\s*count\s*", select_text):
        include_count = True

    pre_filter: Optional[Predicate] = None
    where_match = re.search(r"(?i)\bwhere\b(?P<cond>.+?)(?=(?i:\bgroup\s+by\b))", text, flags=re.DOTALL)
    if where_match:
        pre_filter = _parse_condition(where_match.group("cond"), original)

    operation = GroupBy(
        keys=keys, aggregations=aggregations, include_count=include_count, pre_filter=pre_filter
    )
    return ParsedQuery(operation=operation, tables=[table])


def _parse_select_columns(text: str) -> List[str]:
    select_clause = re.search(r"(?i)^select\s+(?P<cols>.+?)\s+from\b", text)
    if not select_clause:
        return []
    cols = select_clause.group("cols").strip()
    if cols == "*":
        return []
    return [col.strip() for col in cols.split(",") if col.strip()]


def _parse_condition(condition_text: str, original: str) -> Predicate:
    """Parse a WHERE clause consisting of AND-ed comparisons."""
    parts = re.split(r"(?i)\s+and\s+", condition_text.strip())
    predicates: List[Predicate] = []
    for part in parts:
        match = _COMPARISON_PATTERN.search(part)
        if not match:
            raise QueryParseError(f"could not parse condition {part!r} in {original!r}")
        column = match.group("col").split(".")[-1]
        op = match.group("op")
        if op == "=":
            op = "=="
        value = _parse_value(match.group("value"))
        predicates.append(Comparison(column, op, value))
    if len(predicates) == 1:
        return predicates[0]
    return And(predicates)


def _parse_value(token: str):
    token = token.strip()
    if (token.startswith('"') and token.endswith('"')) or (
        token.startswith("'") and token.endswith("'")
    ) or (token.startswith("“") and token.endswith("”")):
        return token[1:-1]
    try:
        value = float(token)
    except ValueError:
        return token
    return int(value) if value == int(value) else value


def parse_workload(queries: Sequence[str]) -> List[ParsedQuery]:
    """Parse a list of query strings, preserving order."""
    return [parse_query(query) for query in queries]
