"""EDA operation specifications.

An *operation* (``q`` in the paper) is a declarative, re-applicable
description of an exploratory action: filter, group-by, join, or union.
Keeping operations declarative is essential for FEDEX's contribution
computation, which removes a set of rows from the input and re-runs *the
same* operation on the reduced input (Definition 3.3).

Every operation knows:

* how to :meth:`~Operation.apply` itself to a list of input dataframes,
* which interestingness family suits it by default
  (:attr:`~Operation.default_measure` — ``"exceptionality"`` for
  filter/join/union, ``"diversity"`` for group-by, per §3.2),
* how to :meth:`~Operation.describe` itself for captions and logs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dataframe.frame import DataFrame
from ..dataframe.predicates import Predicate
from ..errors import OperationError

#: Interestingness families (see :mod:`repro.core.interestingness`).
MEASURE_EXCEPTIONALITY = "exceptionality"
MEASURE_DIVERSITY = "diversity"

#: Aggregations whose reduced value is derivable from per-group partials
#: without re-running the group-by: sum/count/mean by subtraction, min/max
#: by a per-group rescan, median by order-statistic lookups on a shared
#: group-major sort, std by subtraction of centered first/second moments.
DECOMPOSABLE_AGGREGATIONS = ("mean", "sum", "min", "max", "count", "median", "std")


class Operation(ABC):
    """Base class for EDA operations."""

    #: Name of the operation type ("filter", "groupby", "join", "union").
    kind: str = "operation"

    @abstractmethod
    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        """Apply the operation to the input dataframes and return the output."""

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable description used in captions and logs."""

    def signature(self) -> str:
        """Faithful content identity of the operation, for cache keys.

        Must distinguish any two operations that can behave differently on
        the same inputs.  The default delegates to :meth:`describe`, which
        is faithful for key/column-driven operations (group-by, join, union,
        project); operations embedding predicates override it so lossy
        predicate descriptions (:class:`RowIndexPredicate`) cannot collide.
        """
        return self.describe()

    @property
    def default_measure(self) -> str:
        """The interestingness family FEDEX uses for this operation by default."""
        return MEASURE_EXCEPTIONALITY

    @property
    def arity(self) -> int:
        """Number of input dataframes the operation expects."""
        return 1

    def validate_inputs(self, inputs: Sequence[DataFrame]) -> None:
        """Raise :class:`OperationError` when the number of inputs is wrong."""
        if len(inputs) != self.arity:
            raise OperationError(
                f"{self.kind} operation expects {self.arity} input dataframe(s), got {len(inputs)}"
            )

    # ------------------------------------------------- incremental-backend hooks
    def decomposable_aggregates(self) -> Optional[Dict[str, Tuple[str, Optional[str]]]]:
        """Structure of the output aggregates, when every one is decomposable.

        Group-by style operations return a mapping ``output column ->
        (aggregation name, source column)`` (source column ``None`` for pure
        row counts) that lets the incremental contribution backend derive
        every reduced aggregate from precomputed per-group partials instead
        of re-grouping (see :mod:`repro.core.backends.incremental`).  ``None``
        — the default — means the hook does not apply: either the operation
        is not an aggregation, or some aggregate (``median``, ``std``) cannot
        be updated incrementally.
        """
        return None

    def row_mask(self, inputs: Sequence[DataFrame]) -> Optional[List[Optional[np.ndarray]]]:
        """Row-level provenance of the output: which input row made each output row.

        Operations whose output rows are copies of input rows (filter, join,
        union, project) return one entry per input dataframe: an ``int64``
        array of length ``n_output_rows`` whose ``j``-th element is the
        positional index of the input row that produced output row ``j``
        (``-1`` when the output row does not derive from that input, as in a
        union), or ``None`` when removing rows of that input is *not*
        equivalent to slicing the output (e.g. the right side of a left
        join, where removals resurrect unmatched left rows).  Returning
        ``None`` altogether — the default — means the output is not a row
        selection of the inputs (e.g. group-by) and the incremental backend
        must use another strategy or fall back to re-running.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class Filter(Operation):
    """Row-selection operation: keep rows satisfying a predicate.

    Both application and row-level provenance evaluate the predicate via
    :meth:`DataFrame.predicate_mask`, so explaining a filter over a stored
    dataset (:mod:`repro.storage`) prunes whole chunks through the
    persisted footer statistics instead of touching every row.
    """

    kind = "filter"

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        return inputs[0].filter(self.predicate)

    def row_mask(self, inputs: Sequence[DataFrame]) -> List[Optional[np.ndarray]]:
        self.validate_inputs(inputs)
        return [np.flatnonzero(inputs[0].predicate_mask(self.predicate)).astype(np.int64)]

    def describe(self) -> str:
        return f"filter {self.predicate.describe()}"

    def signature(self) -> str:
        return f"filter {self.predicate.signature()}"


class GroupBy(Operation):
    """Group-by-and-aggregate operation.

    Parameters
    ----------
    keys:
        Grouping column(s).
    aggregations:
        Mapping value-column -> list of aggregation names (``mean``, ``max``,
        ``min``, ``sum``, ``count``, ``median``, ``std``).
    include_count:
        Add a ``count`` column with the group sizes (the paper's
        ``SELECT count ... GROUP BY`` queries).
    pre_filter:
        Optional predicate applied to the input before grouping; the paper's
        running example (query "group by year where year >= 1990") uses this.
    """

    kind = "groupby"

    def __init__(self, keys: Sequence[str] | str,
                 aggregations: Mapping[str, Sequence[str]] | None = None,
                 include_count: bool = False,
                 pre_filter: Predicate | None = None) -> None:
        self.keys = [keys] if isinstance(keys, str) else list(keys)
        if not self.keys:
            raise OperationError("group-by requires at least one key column")
        self.aggregations: Dict[str, List[str]] = {
            column: list(aggs) for column, aggs in (aggregations or {}).items()
        }
        self.include_count = include_count or not self.aggregations
        self.pre_filter = pre_filter

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        frame = inputs[0]
        if self.pre_filter is not None:
            frame = frame.filter(self.pre_filter)
        return frame.groupby(self.keys, self.aggregations, include_count=self.include_count)

    @property
    def default_measure(self) -> str:
        return MEASURE_DIVERSITY

    def aggregated_output_columns(self) -> List[str]:
        """Names of the aggregate columns produced in the output dataframe."""
        from ..dataframe.groupby import aggregation_column_name

        names = [
            aggregation_column_name(agg, column)
            for column, aggs in self.aggregations.items()
            for agg in aggs
        ]
        if self.include_count:
            names.append("count")
        return names

    def decomposable_aggregates(self) -> Optional[Dict[str, Tuple[str, Optional[str]]]]:
        from ..dataframe.groupby import aggregation_column_name

        specs: Dict[str, Tuple[str, Optional[str]]] = {}
        for column, aggs in self.aggregations.items():
            for agg in aggs:
                if agg not in DECOMPOSABLE_AGGREGATIONS:
                    return None
                specs[aggregation_column_name(agg, column)] = (agg, column)
        if self.include_count:
            specs["count"] = ("count", None)
        return specs

    def describe(self) -> str:
        prefix = f"where {self.pre_filter.describe()} " if self.pre_filter is not None else ""
        return self._render(prefix)

    def signature(self) -> str:
        prefix = f"where {self.pre_filter.signature()} " if self.pre_filter is not None else ""
        return self._render(prefix)

    def _render(self, prefix: str) -> str:
        agg_text = ", ".join(
            f"{agg}({column})" for column, aggs in self.aggregations.items() for agg in aggs
        )
        if self.include_count:
            agg_text = f"{agg_text}, count" if agg_text else "count"
        return f"{prefix}group by {', '.join(self.keys)} computing {agg_text}"


class Join(Operation):
    """Inner (or left) join of two input dataframes on key column(s)."""

    kind = "join"

    def __init__(self, on: str | Sequence[str], how: str = "inner") -> None:
        self.on = [on] if isinstance(on, str) else list(on)
        if not self.on:
            raise OperationError("join requires at least one key column")
        self.how = how

    @property
    def arity(self) -> int:
        return 2

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        return inputs[0].join(inputs[1], on=self.on, how=self.how)

    def match_rows(self, inputs: Sequence[DataFrame]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The join's match structure: paired row indices plus unmatched lefts.

        Returns ``(left_idx, right_idx, unmatched_left)`` exactly as the
        hash-join materialisation computes them: ``left_idx[i]`` /
        ``right_idx[i]`` are the input rows of output pair ``i`` (in output
        order), and ``unmatched_left`` lists (sorted) the left rows a left
        join appends after the pairs.  The incremental backend derives
        right-side interventions of a *left* join from this — removing
        right rows drops pairs and resurrects fully-unmatched left rows,
        which is not a slice of the output but is fully determined here.
        """
        from ..dataframe.join import _match_rows

        self.validate_inputs(inputs)
        return _match_rows(inputs[0], inputs[1], self.on)

    def row_mask(self, inputs: Sequence[DataFrame]) -> Optional[List[Optional[np.ndarray]]]:
        left_idx, right_idx, unmatched_left = self.match_rows(inputs)
        if self.how == "inner":
            return [left_idx, right_idx]
        if self.how == "left":
            # Output rows are the matched pairs followed by the unmatched left
            # rows.  Removing a right row is not a slice of the output (its
            # matched left rows would resurface as unmatched), hence ``None``
            # — the dedicated left-join plan of the incremental backend
            # handles that side through :meth:`match_rows` instead.
            return [np.concatenate([left_idx, unmatched_left]).astype(np.int64), None]
        return None

    def describe(self) -> str:
        return f"{self.how} join on {', '.join(self.on)}"


class Union(Operation):
    """Union (row concatenation, aligned by column name) of input dataframes."""

    kind = "union"

    def __init__(self, n_inputs: int = 2) -> None:
        if n_inputs < 2:
            raise OperationError("union requires at least two input dataframes")
        self.n_inputs = n_inputs

    @property
    def arity(self) -> int:
        return self.n_inputs

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        result = inputs[0]
        for frame in inputs[1:]:
            result = result.union(frame)
        return result

    def row_mask(self, inputs: Sequence[DataFrame]) -> List[Optional[np.ndarray]]:
        self.validate_inputs(inputs)
        total = sum(frame.num_rows for frame in inputs)
        sources: List[Optional[np.ndarray]] = []
        offset = 0
        for frame in inputs:
            mapping = np.full(total, -1, dtype=np.int64)
            mapping[offset:offset + frame.num_rows] = np.arange(frame.num_rows, dtype=np.int64)
            sources.append(mapping)
            offset += frame.num_rows
        return sources

    def describe(self) -> str:
        return f"union of {self.n_inputs} dataframes"


class Project(Operation):
    """Column projection.

    Not one of the paper's four first-class EDA operations, but used to
    implement the "user-specified columns" extension (§3.8): FEDEX projects
    the input and output onto the user-selected attributes before running
    Algorithm 1.
    """

    kind = "project"

    def __init__(self, columns: Sequence[str]) -> None:
        if not columns:
            raise OperationError("projection requires at least one column")
        self.columns = list(columns)

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        present = [name for name in self.columns if name in inputs[0]]
        return inputs[0].select(present)

    def row_mask(self, inputs: Sequence[DataFrame]) -> List[Optional[np.ndarray]]:
        self.validate_inputs(inputs)
        return [np.arange(inputs[0].num_rows, dtype=np.int64)]

    def describe(self) -> str:
        return f"project onto {', '.join(self.columns)}"
