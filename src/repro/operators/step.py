"""The exploratory step ``Q = (D_in, q, d_out)``.

An :class:`ExploratoryStep` bundles the input dataframe(s), the operation,
and the resulting output dataframe — the unit of explanation in FEDEX.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dataframe.frame import DataFrame
from ..errors import OperationError
from .operations import Operation


class ExploratoryStep:
    """One step of a notebook EDA session.

    Parameters
    ----------
    inputs:
        The input dataframe(s) ``D_in`` (two for join/union, one otherwise).
    operation:
        The EDA operation ``q``.
    output:
        The output dataframe ``d_out``.  When omitted it is computed by
        applying the operation to the inputs (the common case); passing it
        explicitly lets callers reuse an already-materialised result.
    label:
        Optional human-readable label (e.g. the workload query number).
    """

    __slots__ = ("inputs", "operation", "output", "label")

    def __init__(self, inputs: Sequence[DataFrame] | DataFrame, operation: Operation,
                 output: Optional[DataFrame] = None, label: str | None = None) -> None:
        if isinstance(inputs, DataFrame):
            inputs = [inputs]
        self.inputs: List[DataFrame] = list(inputs)
        if not self.inputs:
            raise OperationError("an exploratory step requires at least one input dataframe")
        self.operation = operation
        operation.validate_inputs(self.inputs)
        self.output = output if output is not None else operation.apply(self.inputs)
        self.label = label

    # ------------------------------------------------------------------ helpers
    @property
    def primary_input(self) -> DataFrame:
        """The first input dataframe (the only one for unary operations)."""
        return self.inputs[0]

    @property
    def is_multi_input(self) -> bool:
        """True for join/union steps with more than one input dataframe."""
        return len(self.inputs) > 1

    def rerun(self, new_inputs: Sequence[DataFrame]) -> DataFrame:
        """Apply the step's operation to different inputs (intervention primitive)."""
        self.operation.validate_inputs(new_inputs)
        return self.operation.apply(new_inputs)

    def with_inputs_replaced(self, input_index: int, new_input: DataFrame) -> List[DataFrame]:
        """The input list with the dataframe at ``input_index`` swapped out."""
        if not 0 <= input_index < len(self.inputs):
            raise OperationError(
                f"input index {input_index} out of range for step with {len(self.inputs)} inputs"
            )
        inputs = list(self.inputs)
        inputs[input_index] = new_input
        return inputs

    def describe(self) -> str:
        """Readable description (label + operation + shapes)."""
        label = f"[{self.label}] " if self.label else ""
        shapes = " + ".join(f"{frame.num_rows}x{frame.num_columns}" for frame in self.inputs)
        return (
            f"{label}{self.operation.describe()} on {shapes} -> "
            f"{self.output.num_rows}x{self.output.num_columns}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExploratoryStep({self.describe()})"
