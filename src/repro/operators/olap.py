"""Advanced EDA / OLAP operations: pivot, diff, and roll-up.

Section 3.1 of the paper notes that "additional, advanced EDA and OLAP
operations such as pivot, diff, and roll-up can be supported by a simple
extension of our model".  This module provides that extension:

* :class:`Pivot` — group by a row key, spread a column's values into columns,
  aggregate a measure (a cross-tabulation).  Explained with the diversity
  measure, like group-by.
* :class:`Diff` — row-wise difference of an aggregated measure between two
  snapshots of a dataframe (e.g. two time periods), keyed by a grouping
  column.  Explained with the diversity measure over the delta column.
* :class:`RollUp` — a group-by re-aggregated at a coarser key (drop the last
  key column), the classic OLAP roll-up.  Explained like group-by.

All three re-apply cleanly to modified inputs, so FEDEX's intervention-based
contribution works on them unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..dataframe.groupby import AGGREGATIONS, group_indices
from ..errors import OperationError
from .operations import GroupBy, MEASURE_DIVERSITY, Operation


class Pivot(Operation):
    """Cross-tabulation: rows = ``index`` values, columns = ``columns`` values.

    Parameters
    ----------
    index:
        Grouping attribute whose values become the output rows.
    columns:
        Attribute whose values become output columns (one column per value,
        named ``<value>_<aggregate>_<measure>``).
    measure:
        Numeric attribute being aggregated; ``None`` counts rows.
    aggregate:
        Aggregation name (``mean``, ``sum``, ``count``, ...).
    max_columns:
        Only the ``max_columns`` most frequent values of ``columns`` become
        output columns (keeps the pivot readable and bounded).
    """

    kind = "pivot"

    def __init__(self, index: str, columns: str, measure: Optional[str] = None,
                 aggregate: str = "count", max_columns: int = 12) -> None:
        if aggregate not in AGGREGATIONS:
            raise OperationError(f"unknown aggregation {aggregate!r}")
        if measure is None and aggregate != "count":
            raise OperationError("a measure column is required unless aggregate='count'")
        self.index = index
        self.columns = columns
        self.measure = measure
        self.aggregate = aggregate
        self.max_columns = max_columns

    @property
    def default_measure(self) -> str:
        return MEASURE_DIVERSITY

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        frame = inputs[0]
        for name in (self.index, self.columns) + ((self.measure,) if self.measure else ()):
            if name not in frame:
                raise OperationError(f"pivot column {name!r} not found")

        column_values = [value for value, _ in sorted(
            frame[self.columns].value_counts().items(), key=lambda item: (-item[1], str(item[0]))
        )[: self.max_columns]]
        buckets = group_indices(frame, [self.index, self.columns])
        row_keys = sorted({key[0] for key in buckets}, key=str)
        func = AGGREGATIONS[self.aggregate]

        cells: Dict[str, List[float]] = {str(value): [] for value in column_values}
        for row_key in row_keys:
            for value in column_values:
                indices = buckets.get((row_key, value))
                if indices is None or indices.size == 0:
                    cells[str(value)].append(float("nan"))
                    continue
                if self.aggregate == "count" or self.measure is None:
                    cells[str(value)].append(float(indices.size))
                    continue
                measures = frame[self.measure].values[indices].astype(float)
                measures = measures[~np.isnan(measures)]
                cells[str(value)].append(func(measures) if measures.size else float("nan"))

        out_columns = [Column(self.index, np.asarray(row_keys, dtype=object))]
        suffix = f"{self.aggregate}_{self.measure}" if self.measure else "count"
        for value in column_values:
            out_columns.append(Column(f"{value}_{suffix}", np.asarray(cells[str(value)], dtype=float)))
        return DataFrame(out_columns)

    def describe(self) -> str:
        measure_text = f"{self.aggregate}({self.measure})" if self.measure else "count"
        return f"pivot {measure_text} by {self.index} x {self.columns}"


class Diff(Operation):
    """Per-group change of an aggregated measure between two input snapshots.

    Takes two input dataframes (e.g. sales of two years), aggregates
    ``measure`` per ``key`` in each, and outputs one row per key with the two
    aggregates and their difference (``delta_<agg>_<measure>``).
    """

    kind = "diff"

    def __init__(self, key: str, measure: str, aggregate: str = "mean") -> None:
        if aggregate not in AGGREGATIONS:
            raise OperationError(f"unknown aggregation {aggregate!r}")
        self.key = key
        self.measure = measure
        self.aggregate = aggregate

    @property
    def arity(self) -> int:
        return 2

    @property
    def default_measure(self) -> str:
        return MEASURE_DIVERSITY

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        first = self._aggregate(inputs[0])
        second = self._aggregate(inputs[1])
        keys = sorted(set(first) | set(second), key=str)
        agg_name = f"{self.aggregate}_{self.measure}"
        before = [first.get(key, float("nan")) for key in keys]
        after = [second.get(key, float("nan")) for key in keys]
        delta = [b - a if (a == a and b == b) else float("nan") for a, b in zip(before, after)]
        return DataFrame([
            Column(self.key, np.asarray(keys, dtype=object)),
            Column(f"{agg_name}_before", np.asarray(before, dtype=float)),
            Column(f"{agg_name}_after", np.asarray(after, dtype=float)),
            Column(f"delta_{agg_name}", np.asarray(delta, dtype=float)),
        ])

    def _aggregate(self, frame: DataFrame) -> Dict:
        if self.key not in frame or self.measure not in frame:
            raise OperationError(
                f"diff requires columns {self.key!r} and {self.measure!r} in both inputs"
            )
        func = AGGREGATIONS[self.aggregate]
        result: Dict = {}
        for key, indices in group_indices(frame, [self.key]).items():
            values = frame[self.measure].values[indices].astype(float)
            values = values[~np.isnan(values)]
            result[key[0]] = func(values) if values.size else float("nan")
        return result

    def describe(self) -> str:
        return f"diff of {self.aggregate}({self.measure}) per {self.key} between two snapshots"


class RollUp(Operation):
    """OLAP roll-up: aggregate at a coarser grouping key.

    Equivalent to a :class:`~repro.operators.operations.GroupBy` on
    ``keys[:-1]`` — the last (finest) key column is rolled away.  Provided as
    a first-class operation so exploration sessions can express
    drill-down/roll-up pairs explicitly.
    """

    kind = "rollup"

    def __init__(self, keys: Sequence[str], aggregations: Mapping[str, Sequence[str]] | None = None,
                 include_count: bool = False) -> None:
        keys = list(keys)
        if len(keys) < 2:
            raise OperationError("roll-up requires at least two key columns (one is rolled away)")
        self.keys = keys
        self._inner = GroupBy(keys[:-1], aggregations, include_count=include_count)

    @property
    def default_measure(self) -> str:
        return MEASURE_DIVERSITY

    @property
    def rolled_keys(self) -> List[str]:
        """The grouping keys of the rolled-up (coarser) result."""
        return list(self._inner.keys)

    def aggregated_output_columns(self) -> List[str]:
        """Aggregate columns of the output (mirrors GroupBy's helper)."""
        return self._inner.aggregated_output_columns()

    def apply(self, inputs: Sequence[DataFrame]) -> DataFrame:
        self.validate_inputs(inputs)
        return self._inner.apply(inputs)

    def describe(self) -> str:
        return f"roll-up from ({', '.join(self.keys)}) to ({', '.join(self._inner.keys)})"
