"""EDA operation model: operations, exploratory steps, OLAP extensions, and the query parser."""

from .olap import Diff, Pivot, RollUp
from .operations import (
    Filter,
    GroupBy,
    Join,
    MEASURE_DIVERSITY,
    MEASURE_EXCEPTIONALITY,
    Operation,
    Project,
    Union,
)
from .parser import ParsedQuery, parse_query, parse_workload
from .step import ExploratoryStep

__all__ = [
    "Diff",
    "ExploratoryStep",
    "Filter",
    "GroupBy",
    "Join",
    "MEASURE_DIVERSITY",
    "MEASURE_EXCEPTIONALITY",
    "Operation",
    "ParsedQuery",
    "Pivot",
    "Project",
    "RollUp",
    "Union",
    "parse_query",
    "parse_workload",
]
