"""Interestingness-Only (IO) baseline.

The paper's IO baseline follows the pre-FEDEX practice inspired by [79]:
measure how interesting each output attribute is (the same measures FEDEX
uses in its first phase), and present the most interesting attributes to the
user — without any contribution analysis, i.e. without saying *which rows*
make the attribute interesting.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.interestingness import default_registry, measure_for_step
from ..operators.step import ExploratoryStep
from ..viz.chartspec import BarChartWithReference
from .common import BaselineExplanation, BaselineSystem


class InterestingnessOnly(BaselineSystem):
    """Rank output columns by interestingness and report the top ones."""

    name = "IO"

    def __init__(self) -> None:
        self._registry = default_registry()

    def explain(self, step: ExploratoryStep, top_k: int = 3) -> List[BaselineExplanation]:
        measure = measure_for_step(step, self._registry)
        scores = {
            attribute: measure.score_step(step, attribute)
            for attribute in measure.applicable_columns(step)
        }
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        explanations: List[BaselineExplanation] = []
        for attribute, score in ranked[:top_k]:
            if score <= 0:
                continue
            caption = (
                f"The column '{attribute}' is the most affected by this operation "
                f"({measure.name} score {score:.3f})."
            )
            explanations.append(BaselineExplanation(
                system=self.name,
                title=f"interesting column: {attribute}",
                target_column=attribute,
                highlighted_value=None,
                caption=caption,
                chart=self._column_chart(step, attribute),
                score=score,
                details={"measure": measure.name},
            ))
        return explanations

    def _column_chart(self, step: ExploratoryStep, attribute: str) -> BarChartWithReference | None:
        """A simple distribution chart of the output column (no row-set highlight)."""
        if attribute not in step.output:
            return None
        column = step.output[attribute]
        if column.is_numeric:
            values = column.to_float()
            values = values[~np.isnan(values)]
            if values.size == 0:
                return None
            quantiles = np.quantile(values, [0.0, 0.25, 0.5, 0.75, 1.0])
            return BarChartWithReference(
                title=f"Distribution summary of '{attribute}'",
                x_label="quantile",
                y_label=attribute,
                categories=["min", "p25", "median", "p75", "max"],
                values=[float(q) for q in quantiles],
                reference_value=float(np.mean(values)),
            )
        frequencies = column.frequencies()
        top = sorted(frequencies.items(), key=lambda item: -item[1])[:10]
        if not top:
            return None
        return BarChartWithReference(
            title=f"Value frequencies of '{attribute}'",
            x_label=attribute,
            y_label="frequency",
            categories=[str(value) for value, _ in top],
            values=[100.0 * freq for _, freq in top],
            reference_value=None,
        )
