"""RATH-style baseline — automatic top-k insight extraction.

The paper compares against RATH [59, 72], which automatically extracts the
top-k insightful visualizations from the *result* dataframe using a single
score function across insight types.  This reimplementation follows the
"Extracting Top-K Insights from Multi-dimensional Data" recipe the paper
cites [72]:

* enumerate subspaces: every (grouping attribute, measure attribute)
  combination of the output dataframe,
* compute per-group aggregates and evaluate several insight types on them —
  *outstanding #1* (one group dominates), *outstanding last*, *trend*
  (monotone relationship with an ordered grouping attribute), and
  *evenness/skew*,
* score = impact (share of data the subspace covers) × significance
  (statistical extremity of the pattern), take the global top-k.

Unlike FEDEX, RATH never looks at the input dataframe or at the operation —
its insights are facts about the result only, which is exactly the behaviour
the user study contrasts.  The full enumeration is also expensive, which the
runtime experiments (Figs 9–10) surface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..dataframe.frame import DataFrame
from ..dataframe.groupby import group_indices
from ..operators.step import ExploratoryStep
from ..stats.dispersion import z_score
from ..viz.chartspec import BarChartWithReference
from .common import BaselineExplanation, BaselineSystem


class RathInsights(BaselineSystem):
    """Top-k insight extraction over the step's output dataframe.

    Parameters
    ----------
    max_group_cardinality:
        Grouping attributes with more distinct values are skipped.
    max_rows:
        Safety valve mirroring the original tool's memory appetite: outputs
        larger than this are processed whole (no sampling), which is exactly
        what makes the baseline slow/omitted at the paper's 3M/10M-row scale.
    """

    name = "Rath"

    def __init__(self, max_group_cardinality: int = 60, max_rows: Optional[int] = None) -> None:
        self.max_group_cardinality = max_group_cardinality
        self.max_rows = max_rows

    def explain(self, step: ExploratoryStep, top_k: int = 3) -> List[BaselineExplanation]:
        frame = step.output
        if self.max_rows is not None and frame.num_rows > self.max_rows:
            return []
        insights: List[BaselineExplanation] = []
        group_attrs = self._grouping_attributes(frame)
        measure_attrs = frame.numeric_columns()
        for group_attr in group_attrs:
            buckets = group_indices(frame, [group_attr])
            if len(buckets) < 2:
                continue
            coverage = sum(idx.size for idx in buckets.values()) / max(frame.num_rows, 1)
            for measure_attr in measure_attrs:
                if measure_attr == group_attr:
                    continue
                labels, values = self._aggregate(frame, buckets, measure_attr)
                if len(labels) < 2:
                    continue
                insights.extend(
                    self._point_insights(group_attr, measure_attr, labels, values, coverage)
                )
                trend = self._trend_insight(group_attr, measure_attr, labels, values, coverage)
                if trend is not None:
                    insights.append(trend)
        insights.sort(key=lambda insight: -insight.score)
        return insights[:top_k]

    # ---------------------------------------------------------------- internals
    def _grouping_attributes(self, frame: DataFrame) -> List[str]:
        attrs = []
        for name in frame.column_names:
            distinct = frame[name].n_unique()
            if 2 <= distinct <= self.max_group_cardinality:
                attrs.append(name)
        return attrs

    def _aggregate(self, frame: DataFrame, buckets, measure_attr: str) -> Tuple[List[str], List[float]]:
        labels: List[str] = []
        values: List[float] = []
        for key, indices in sorted(buckets.items(), key=lambda item: str(item[0])):
            measure = frame[measure_attr].values[indices].astype(float)
            measure = measure[~np.isnan(measure)]
            if measure.size == 0:
                continue
            labels.append(str(key[0]))
            values.append(float(np.mean(measure)))
        return labels, values

    def _point_insights(self, group_attr: str, measure_attr: str, labels: List[str],
                        values: List[float], coverage: float) -> List[BaselineExplanation]:
        insights = []
        array = np.asarray(values, dtype=float)
        mean_value = float(np.mean(array))
        for selector, kind in ((int(np.argmax(array)), "outstanding #1"),
                               (int(np.argmin(array)), "outstanding last")):
            significance = abs(z_score(values[selector], values))
            score = coverage * significance
            chart = BarChartWithReference(
                title=f"Rath insight: mean {measure_attr} by {group_attr}",
                x_label=group_attr,
                y_label=f"mean {measure_attr}",
                categories=labels,
                values=values,
                reference_value=mean_value,
                highlight_index=selector,
            )
            insights.append(BaselineExplanation(
                system=self.name,
                title=(f"{kind}: '{group_attr}'='{labels[selector]}' has the "
                       f"{'highest' if kind == 'outstanding #1' else 'lowest'} mean {measure_attr}"),
                target_column=measure_attr,
                highlighted_value=labels[selector],
                caption=None,  # Rath outputs visualizations, not narrative captions.
                chart=chart,
                score=score,
                details={"insight_type": kind, "group_attr": group_attr},
            ))
        return insights

    def _trend_insight(self, group_attr: str, measure_attr: str, labels: List[str],
                       values: List[float], coverage: float) -> Optional[BaselineExplanation]:
        ordered_positions = self._numeric_order(labels)
        if ordered_positions is None or len(values) < 3:
            return None
        x = np.asarray(ordered_positions, dtype=float)
        y = np.asarray(values, dtype=float)
        if np.std(x) == 0 or np.std(y) == 0:
            return None
        correlation = float(np.corrcoef(x, y)[0, 1])
        significance = abs(correlation)
        if significance < 0.5:
            return None
        direction = "increasing" if correlation > 0 else "decreasing"
        chart = BarChartWithReference(
            title=f"Rath insight: trend of mean {measure_attr} over {group_attr}",
            x_label=group_attr,
            y_label=f"mean {measure_attr}",
            categories=labels,
            values=values,
            reference_value=float(np.mean(y)),
            highlight_index=int(np.argmax(x)),
        )
        return BaselineExplanation(
            system=self.name,
            title=f"trend: mean {measure_attr} is {direction} in {group_attr} (r={correlation:.2f})",
            target_column=measure_attr,
            highlighted_value=None,
            caption=None,
            chart=chart,
            score=coverage * significance,
            details={"insight_type": "trend", "group_attr": group_attr, "correlation": correlation},
        )

    @staticmethod
    def _numeric_order(labels: List[str]) -> Optional[List[float]]:
        """Positions of the labels when they are numeric-like, else None."""
        positions = []
        for label in labels:
            try:
                positions.append(float(label))
            except ValueError:
                return None
        return positions
