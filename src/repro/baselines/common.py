"""Shared types for the baseline systems the paper compares against.

Every baseline consumes an :class:`~repro.operators.step.ExploratoryStep` and
produces a list of :class:`BaselineExplanation` objects — a lowest common
denominator of "something shown to the user about the step": a textual
description, optionally a chart, and the *claims* it makes (which output
column it talks about and, when applicable, which value/set-of-rows it
highlights).  The simulated user study scores systems by comparing these
claims against ground-truth signals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..operators.step import ExploratoryStep
from ..viz.chartspec import ChartSpec


@dataclass
class BaselineExplanation:
    """One artefact produced by a baseline (or by FEDEX, for uniform scoring)."""

    system: str
    title: str
    target_column: Optional[str] = None
    highlighted_value: Optional[str] = None
    caption: Optional[str] = None
    chart: Optional[ChartSpec] = None
    score: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def has_visualization(self) -> bool:
        """True when the artefact contains a chart."""
        return self.chart is not None

    @property
    def has_text(self) -> bool:
        """True when the artefact contains a caption / textual explanation."""
        return bool(self.caption)

    @property
    def is_hybrid(self) -> bool:
        """True when the artefact has both a chart and a caption (FEDEX's format)."""
        return self.has_visualization and self.has_text

    def claim(self) -> Tuple[Optional[str], Optional[str]]:
        """The (column, highlighted value) pair the artefact claims is interesting."""
        return (self.target_column, self.highlighted_value)


class BaselineSystem(ABC):
    """Interface of a baseline explanation/visualization system."""

    #: Display name used in experiment tables.
    name: str = "baseline"

    @abstractmethod
    def explain(self, step: ExploratoryStep, top_k: int = 3) -> List[BaselineExplanation]:
        """Produce up to ``top_k`` artefacts for the exploratory step."""

    def supports(self, step: ExploratoryStep) -> bool:
        """Whether the system can handle the step at all (SeeDB cannot do group-by)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
