"""Adapter presenting FEDEX through the baseline interface.

The simulated user study scores every system through the common
:class:`~repro.baselines.common.BaselineExplanation` type; this adapter runs
the real FEDEX engine and converts its explanations, so FEDEX, fedex-Sampling
and the baselines are judged by exactly the same code path.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import FedexConfig
from ..core.engine import FedexExplainer
from ..operators.step import ExploratoryStep
from .common import BaselineExplanation, BaselineSystem


class FedexSystem(BaselineSystem):
    """FEDEX (or fedex-Sampling) wrapped as a scorable system."""

    def __init__(self, config: Optional[FedexConfig] = None, name: str = "FEDEX") -> None:
        self.name = name
        self._explainer = FedexExplainer(config=config)

    def explain(self, step: ExploratoryStep, top_k: int = 3) -> List[BaselineExplanation]:
        report = self._explainer.explain(step)
        artefacts: List[BaselineExplanation] = []
        for explanation in report.explanations[:top_k]:
            candidate = explanation.candidate
            artefacts.append(BaselineExplanation(
                system=self.name,
                title=f"{explanation.attribute} explained by {explanation.row_set_label}",
                target_column=explanation.attribute,
                highlighted_value=explanation.row_set_label,
                caption=explanation.caption,
                chart=explanation.chart,
                score=candidate.weighted_score(1.0, 1.0),
                details={
                    "interestingness": candidate.interestingness,
                    "standardized_contribution": candidate.standardized_contribution,
                    "measure": candidate.measure_name,
                },
            ))
        return artefacts


def fedex_system(sample_size: Optional[int] = None, name: Optional[str] = None) -> FedexSystem:
    """Convenience constructor for the exact or sampling FEDEX system."""
    config = FedexConfig(sample_size=sample_size)
    resolved_name = name if name is not None else ("FEDEX-Sampling" if sample_size else "FEDEX")
    return FedexSystem(config=config, name=resolved_name)
