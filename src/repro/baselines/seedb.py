"""SeeDB baseline (Vartak et al., VLDB 2015) — deviation-based view recommendation.

SeeDB recommends the visualizations whose *target* distribution (the query
result) deviates most from the *reference* distribution (the input data).
A view is a triple (grouping attribute ``a``, measure attribute ``m``,
aggregate ``f``); its utility is the distance between the normalised
aggregate vectors of the view computed on the output versus the input.

The reimplementation follows the published algorithm:

* candidate views = categorical (or low-cardinality) grouping attributes ×
  numeric measure attributes × {count, sum, mean},
* utility = earth-mover-style L1 distance between the normalised aggregate
  distributions,
* the top-k views are returned as side-by-side bar charts.

As in the paper's experiments, SeeDB cannot explain group-by steps: the input
and output schemas differ, so no reference distribution exists
(:meth:`SeeDB.supports` returns False for them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataframe.frame import DataFrame
from ..dataframe.groupby import group_indices
from ..operators.operations import GroupBy
from ..operators.step import ExploratoryStep
from ..viz.chartspec import SideBySideBarChart
from .common import BaselineExplanation, BaselineSystem

_AGGREGATES = ("count", "sum", "mean")


class SeeDB(BaselineSystem):
    """Deviation-based view recommender.

    Parameters
    ----------
    max_group_cardinality:
        Grouping attributes with more distinct values than this are skipped
        (high-cardinality groupings produce unreadable charts and blow up the
        search space, exactly as in the original system's pruning).
    max_categories_in_chart:
        Number of category bars kept in the produced charts.
    """

    name = "SeeDB"

    def __init__(self, max_group_cardinality: int = 40, max_categories_in_chart: int = 12) -> None:
        self.max_group_cardinality = max_group_cardinality
        self.max_categories_in_chart = max_categories_in_chart

    def supports(self, step: ExploratoryStep) -> bool:
        return not isinstance(step.operation, GroupBy)

    def explain(self, step: ExploratoryStep, top_k: int = 3) -> List[BaselineExplanation]:
        if not self.supports(step):
            return []
        reference = step.primary_input
        target = step.output
        views = self._candidate_views(reference, target)
        scored: List[Tuple[float, Tuple[str, Optional[str], str]]] = []
        for view in views:
            utility = self._view_utility(reference, target, view)
            if utility is not None:
                scored.append((utility, view))
        scored.sort(key=lambda item: (-item[0], item[1]))
        explanations = []
        for utility, (group_attr, measure_attr, aggregate) in scored[:top_k]:
            explanations.append(self._render_view(
                reference, target, group_attr, measure_attr, aggregate, utility
            ))
        return explanations

    # ---------------------------------------------------------------- internals
    def _candidate_views(self, reference: DataFrame,
                         target: DataFrame) -> List[Tuple[str, Optional[str], str]]:
        shared = [name for name in target.column_names if name in reference]
        group_attrs = [
            name for name in shared
            if not reference[name].is_numeric or reference[name].n_unique() <= self.max_group_cardinality
        ]
        group_attrs = [
            name for name in group_attrs
            if 2 <= reference[name].n_unique() <= self.max_group_cardinality
        ]
        measure_attrs = [name for name in shared if reference[name].is_numeric]
        views: List[Tuple[str, Optional[str], str]] = []
        for group_attr in group_attrs:
            views.append((group_attr, None, "count"))
            for measure_attr in measure_attrs:
                if measure_attr == group_attr:
                    continue
                views.append((group_attr, measure_attr, "sum"))
                views.append((group_attr, measure_attr, "mean"))
        return views

    def _aggregate_vector(self, frame: DataFrame, group_attr: str, measure_attr: Optional[str],
                          aggregate: str) -> Dict:
        buckets = group_indices(frame, [group_attr])
        vector: Dict = {}
        for key, indices in buckets.items():
            label = key[0]
            if aggregate == "count" or measure_attr is None:
                vector[label] = float(indices.size)
                continue
            values = frame[measure_attr].values[indices].astype(float)
            values = values[~np.isnan(values)]
            if values.size == 0:
                vector[label] = 0.0
            elif aggregate == "sum":
                vector[label] = float(np.sum(values))
            else:
                vector[label] = float(np.mean(values))
        return vector

    def _view_utility(self, reference: DataFrame, target: DataFrame,
                      view: Tuple[str, Optional[str], str]) -> Optional[float]:
        group_attr, measure_attr, aggregate = view
        if group_attr not in target:
            return None
        if measure_attr is not None and measure_attr not in target:
            return None
        reference_vector = self._aggregate_vector(reference, group_attr, measure_attr, aggregate)
        target_vector = self._aggregate_vector(target, group_attr, measure_attr, aggregate)
        if not reference_vector or not target_vector:
            return None
        return _normalised_l1(reference_vector, target_vector)

    def _render_view(self, reference: DataFrame, target: DataFrame, group_attr: str,
                     measure_attr: Optional[str], aggregate: str,
                     utility: float) -> BaselineExplanation:
        reference_vector = self._aggregate_vector(reference, group_attr, measure_attr, aggregate)
        target_vector = self._aggregate_vector(target, group_attr, measure_attr, aggregate)
        categories = sorted(
            set(reference_vector) | set(target_vector),
            key=lambda label: -(target_vector.get(label, 0.0)),
        )[: self.max_categories_in_chart]
        reference_total = sum(reference_vector.values()) or 1.0
        target_total = sum(target_vector.values()) or 1.0
        before = [100.0 * reference_vector.get(label, 0.0) / reference_total for label in categories]
        after = [100.0 * target_vector.get(label, 0.0) / target_total for label in categories]
        measure_text = f"{aggregate}({measure_attr})" if measure_attr else "count"
        deviations = [abs(a - b) for a, b in zip(after, before)]
        highlight = int(np.argmax(deviations)) if deviations else None
        chart = SideBySideBarChart(
            title=f"SeeDB view: {measure_text} by {group_attr}",
            x_label=group_attr,
            categories=[str(c) for c in categories],
            before=before,
            after=after,
            highlight_index=highlight,
            before_label="Reference",
            after_label="Target",
        )
        claimed_column = measure_attr or group_attr
        return BaselineExplanation(
            system=self.name,
            title=f"{measure_text} by {group_attr} (utility {utility:.3f})",
            target_column=claimed_column,
            highlighted_value=str(categories[highlight]) if highlight is not None else None,
            caption=None,  # SeeDB produces visualizations only (no captions).
            chart=chart,
            score=utility,
            details={"group_attr": group_attr, "measure_attr": measure_attr, "agg": aggregate},
        )


def _normalised_l1(first: Dict, second: Dict) -> float:
    """L1 distance between the two vectors after normalising each to sum 1."""
    labels = set(first) | set(second)
    first_total = sum(abs(v) for v in first.values()) or 1.0
    second_total = sum(abs(v) for v in second.values()) or 1.0
    return float(sum(
        abs(first.get(label, 0.0) / first_total - second.get(label, 0.0) / second_total)
        for label in labels
    ))
