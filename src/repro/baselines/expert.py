"""Expert baseline — simulated manually-authored explanations.

In the paper, three human experts inspected each notebook and wrote a
detailed textual explanation for every operation; those explanations received
the highest user-study scores but took orders of magnitude longer to produce
(Figure 4).  Humans are not available in this reproduction, so the Expert
baseline is simulated:

* the *content* of the expert explanation is taken from an exhaustive,
  exact FEDEX run (no sampling, exhaustive partition pairing, all columns) —
  i.e. the expert is assumed to find the strongest signal in the data and
  describe it well, enriched with the concrete statistics an analyst would
  quote;
* the *cost* of producing it is modelled as a per-query authoring time drawn
  from a configurable range (minutes, not milliseconds), which is what
  Figure 4 contrasts with FEDEX's interactive latency.

This substitution is documented in DESIGN.md; the simulated study checks the
*relative* ordering of systems, not absolute Likert values.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.config import FedexConfig
from ..core.engine import FedexExplainer
from ..operators.step import ExploratoryStep
from .common import BaselineExplanation, BaselineSystem


class ExpertBaseline(BaselineSystem):
    """Simulated expert-authored textual explanations.

    Parameters
    ----------
    authoring_minutes:
        (low, high) range of the simulated manual authoring time per query.
    seed:
        Seed of the authoring-time draw (kept separate from data seeds).
    """

    name = "Expert"

    def __init__(self, authoring_minutes: tuple = (6.0, 18.0), seed: int = 123) -> None:
        self.authoring_minutes = authoring_minutes
        self._rng = np.random.default_rng(seed)
        config = FedexConfig(
            sample_size=None,
            top_k_columns=8,
            top_k_explanations=3,
        )
        self._explainer = FedexExplainer(config=config)
        self.last_authoring_seconds: float = 0.0

    def explain(self, step: ExploratoryStep, top_k: int = 3) -> List[BaselineExplanation]:
        report = self._explainer.explain(step)
        low, high = self.authoring_minutes
        self.last_authoring_seconds = float(self._rng.uniform(low, high) * 60.0)
        artefacts: List[BaselineExplanation] = []
        for explanation in report.explanations[:top_k]:
            candidate = explanation.candidate
            narrative = (
                f"{explanation.caption} Looking deeper, this pattern concerns "
                f"{candidate.row_set.size} of the input rows "
                f"({candidate.row_set.method} grouping on '{candidate.row_set.label_attribute}'), "
                f"and the '{explanation.attribute}' column would lose "
                f"{100.0 * candidate.contribution / max(candidate.interestingness, 1e-9):.0f}% of its "
                f"{candidate.measure_name} signal without them."
            )
            artefacts.append(BaselineExplanation(
                system=self.name,
                title=f"expert note on {explanation.attribute}",
                target_column=explanation.attribute,
                highlighted_value=explanation.row_set_label,
                caption=narrative,
                chart=None,  # the paper's experts wrote text, they did not plot
                score=candidate.weighted_score(1.0, 1.0),
                details={"authoring_seconds": self.last_authoring_seconds},
            ))
        return artefacts
