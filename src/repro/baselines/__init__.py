"""Baseline systems the paper compares FEDEX against (§4.1)."""

from .common import BaselineExplanation, BaselineSystem
from .expert import ExpertBaseline
from .fedex_adapter import FedexSystem, fedex_system
from .interestingness_only import InterestingnessOnly
from .rath import RathInsights
from .seedb import SeeDB

__all__ = [
    "BaselineExplanation",
    "BaselineSystem",
    "ExpertBaseline",
    "FedexSystem",
    "InterestingnessOnly",
    "RathInsights",
    "SeeDB",
    "fedex_system",
]
