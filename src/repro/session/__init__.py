"""Exploration-session service layer: cross-step caching + stateful serving.

FEDEX explains *sequences* of exploration steps, but the core engine is
stateless.  This subsystem adds the session layer on top:

* :class:`ExplanationSession` — the stateful façade serving explanation
  requests for one exploration session (one notebook, one user);
* :class:`SessionCache` — the cross-step cache of full reports, row
  partitions, operation structure, and column argsorts/factorizations,
  keyed by content fingerprints;
* signatures (re-exported from :mod:`repro.core.signatures`) — the
  value-based step/config identities the memoization keys are built from.
"""

from ..core.signatures import config_signature, step_signature
from .cache import SessionCache, SessionCacheStats
from .session import ExplanationSession

__all__ = [
    "ExplanationSession",
    "SessionCache",
    "SessionCacheStats",
    "config_signature",
    "step_signature",
]
