"""Exploration-session service layer: cross-step caching + stateful serving.

FEDEX explains *sequences* of exploration steps, but the core engine is
stateless.  This subsystem adds the session layer on top:

* :class:`ExplanationSession` — the stateful façade serving explanation
  requests for one exploration session (one notebook, one user);
* :class:`CacheStore` — the shared, thread-safe, byte-budgeted LRU store
  holding the entries (reports, scores, partitions, structure, columns)
  with per-tenant quotas, in-flight request coalescing, and
  ``save()``/``load()`` snapshot persistence;
* :class:`SessionCache` — one session's lightweight view over a store:
  tenant identity, per-view statistics, request-scoped fingerprint memo;
* signatures (re-exported from :mod:`repro.core.signatures`) — the
  value-based step/config identities the memoization keys are built from.
"""

from ..core.signatures import config_signature, step_signature
from .cache import SessionCache, SessionCacheStats
from .session import ExplanationSession
from .store import DEFAULT_BUDGET_BYTES, CacheStore, RWLock, StoreMetrics, measured_bytes

__all__ = [
    "CacheStore",
    "DEFAULT_BUDGET_BYTES",
    "ExplanationSession",
    "RWLock",
    "SessionCache",
    "SessionCacheStats",
    "StoreMetrics",
    "config_signature",
    "step_signature",
    "measured_bytes",
]
