"""The exploration-session service layer.

:class:`ExplanationSession` is the stateful front door for explaining a
*sequence* of exploration steps — the unit FEDEX was designed around
(explaining data exploration *steps*, plural) and the shape a production
explanation service takes: one session per user/notebook, many explanation
requests against overlapping data.

The session owns everything that outlives a single ``explain()`` call:

* a :class:`~repro.session.cache.SessionCache` holding full-report memos,
  row partitions, operation structure, and adopted column
  argsorts/factorizations — all keyed by content fingerprints;
* one :class:`~repro.core.engine.FedexExplainer` per distinct configuration
  (constructed once, reused across requests) with the cache injected as its
  context;
* the measure registry and any user partitioners, shared by those engines.

Usage::

    from repro.session import ExplanationSession

    session = ExplanationSession()
    report = session.explain(step)            # cold: full Algorithm 1
    report = session.explain(step)            # warm: dictionary lookup

    songs = session.open(load_spotify())      # ExplainableDataFrame routed
    popular = songs.filter(...)               # through this session
    print(popular.explain().render_text())

Caching is governed by the request's config: ``cache_reports=False``
disables the full-report memo, ``cache_structures=False`` detaches the
engine from the structure cache (each toggle independently).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

from ..core.config import FedexConfig
from ..core.engine import ExplainerPool, ExplanationReport, FedexExplainer
from ..core.interestingness import MeasureRegistry, default_registry
from ..core.partition import Partitioner
from ..core.signatures import config_signature, step_signature
from ..dataframe.frame import DataFrame
from ..explain.explainable import ExplainableDataFrame
from ..operators.step import ExploratoryStep
from .cache import SessionCache, SessionCacheStats
from .store import CacheStore


class _EnvironmentToken:
    """Identity-hashed marker for one session's custom measure environment."""

    __slots__ = ()


class ExplanationSession:
    """Serves explanation requests for one exploration session, statefully.

    Parameters
    ----------
    config:
        Default engine configuration of the session; individual
        :meth:`explain` calls may override it per request.
    registry:
        Interestingness measure registry shared by all the session's
        engines; defaults to the paper's two measures.
    extra_partitioners:
        User-defined partitioners appended to the built-in families (§3.8).
        Their presence disables partition caching (the cache key cannot
        capture arbitrary partitioner identity) but leaves every other
        layer active.
    cache:
        The cross-step cache view; injectable for sharing across sessions or
        for inspection in tests.  A fresh bounded cache by default.
    store:
        Alternatively, a shared :class:`~repro.session.store.CacheStore`:
        the session builds its own lightweight :class:`SessionCache` view
        over it, charged to ``tenant``.  Ignored when ``cache`` is given.
    tenant:
        Tenant identity for store accounting (per-tenant byte quotas) when
        the session shares a store with other sessions.
    max_history:
        Number of recent steps retained in :attr:`history`.  Bounded because
        each retained step pins its input/output dataframes in memory — a
        long-lived session must not grow with the number of requests served.
    """

    def __init__(self, config: FedexConfig | None = None,
                 registry: MeasureRegistry | None = None,
                 extra_partitioners: Sequence[Partitioner] | None = None,
                 cache: SessionCache | None = None,
                 store: "CacheStore | None" = None,
                 tenant: str = "default",
                 max_history: int = 256) -> None:
        self.config = config or FedexConfig()
        self.registry = registry or default_registry()
        self.extra_partitioners = list(extra_partitioners or [])
        if cache is None:
            cache = SessionCache(store=store, tenant=tenant)
        self.cache = cache
        self.tenant = cache.tenant
        self._explainers = ExplainerPool(self._build_explainer)
        self._history: "deque[ExploratoryStep]" = deque(maxlen=max_history)
        # Report-memo key component identifying the session's measure/
        # partitioner environment.  Sessions with the default environment
        # share memoized reports through a shared cache; a custom registry
        # or custom partitioners cannot be identified by content, so such a
        # session keys its reports privately — under an owned sentinel
        # object rather than a raw id(), so the keys themselves keep the
        # sentinel alive and a dead session's identity can never be reused
        # by a later one against the same cache.
        if registry is None and not self.extra_partitioners:
            self._environment_token: Tuple = ("default",)
        else:
            self._environment_token = ("custom", _EnvironmentToken())

    # ------------------------------------------------------------------ public
    def explain(self, step: ExploratoryStep, measure: str | None = None,
                config: FedexConfig | None = None,
                progress=None) -> ExplanationReport:
        """Explain one exploratory step through the session's caches.

        Behaviourally identical to ``FedexExplainer(config).explain(step)``
        — same report, same scores — but warm requests reuse cross-step
        state: a step already explained under the same configuration (by
        content, not object identity) returns its memoized report, and a
        merely *overlapping* step reuses partitions, operation structure,
        and column argsorts of its predecessors.

        ``progress`` is forwarded to the engine for partial-result events;
        a memoized report (and a coalesced follower of someone else's
        computation) emits none — there is nothing partial about a cache
        hit.
        """
        effective = config or self.config
        self._history.append(step)
        # One request scope: every fingerprint needed below (step signature,
        # column adoption, partition/structure keys) is hashed at most once.
        with self.cache.request():
            compute = lambda: self._explainers.for_config(effective).explain(
                step, measure=measure, progress=progress
            )
            if not effective.cache_reports:
                return compute()
            report_key = (
                step_signature(step, frame_fingerprint=self.cache.frame_fingerprint),
                config_signature(effective), measure, self._environment_token,
            )
            # Coalesced through the shared store: concurrent misses on the
            # same key (four tenants replaying one workload) share a single
            # computation instead of racing four identical ones.
            return self.cache.report_singleflight(report_key, compute)

    def open(self, frame: DataFrame, config: FedexConfig | None = None) -> ExplainableDataFrame:
        """Wrap a dataframe so every ``explain()`` on it routes through this session."""
        return ExplainableDataFrame(frame, config=config or self.config, session=self)

    @property
    def history(self) -> List[ExploratoryStep]:
        """Every step this session was asked to explain (oldest first)."""
        return list(self._history)

    @property
    def stats(self) -> SessionCacheStats:
        """Hit/miss counters of the session's cache layers."""
        return self.cache.stats

    def clear(self) -> None:
        """Drop all cached state (reports, partitions, structure, columns)."""
        self.cache.clear()
        self._explainers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExplanationSession(steps={len(self._history)}, "
                f"engines={len(self._explainers)}, cache={self.cache!r})")

    # ---------------------------------------------------------------- internals
    def _build_explainer(self, config: FedexConfig) -> FedexExplainer:
        """Engine factory for the pool: session registry/partitioners/context."""
        context = self.cache if config.cache_structures else None
        return FedexExplainer(
            config=config, registry=self.registry,
            extra_partitioners=self.extra_partitioners, context=context,
        )
