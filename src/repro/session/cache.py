"""The cross-step cache of an exploration session.

A notebook exploration session revisits the same data over and over: a
filter is refined three times over the same dataframe, a group-by is
re-aggregated with a different function, a cell is simply re-run.  The
stateless engine rebuilds column argsorts, factorizations, row partitions,
and group structure from scratch every time.  :class:`SessionCache` owns all
of that cross-step state, keyed by **content fingerprints**
(:meth:`repro.dataframe.column.Column.fingerprint`), so any step touching
content-identical data reuses the intervention structure of earlier steps —
regardless of whether the dataframe objects are literally the same.

Four layers, from coarse to fine:

* **full reports** — ``(step signature, config signature, measure)`` →
  :class:`~repro.core.engine.ExplanationReport`, LRU-bounded; re-explaining
  an already-seen step is a dictionary lookup;
* **row partitions** — ``(frame fingerprint, partition config)`` → built
  :class:`~repro.core.partition.RowPartition` lists; two different filters
  over the same input share every partition;
* **operation structure** — per-group row assignment of group-by steps and
  row-level provenance of sliceable steps, keyed by input fingerprints plus
  the operation's declarative description;
* **column structure** — cached argsorts / factorizations are *adopted*
  across content-identical :class:`Column` objects, so the ``O(n log n)``
  sort behind every KS re-scoring is paid once per content, not once per
  step.

Because every key embeds content fingerprints that are recomputed from the
raw values on each lookup, mutated data can never produce a stale hit: the
mutation changes the fingerprint and the lookup misses.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.engine import ExplanationReport
from ..core.partition import RowPartition
from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..operators.step import ExploratoryStep


@dataclass
class SessionCacheStats:
    """Hit/miss counters of every cache layer (observability + tests)."""

    report_hits: int = 0
    report_misses: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    structure_hits: int = 0
    structure_misses: int = 0
    column_structure_hits: int = 0
    columns_adopted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary (for logging/rendering)."""
        return {name: getattr(self, name) for name in (
            "report_hits", "report_misses", "partition_hits", "partition_misses",
            "structure_hits", "structure_misses", "column_structure_hits",
            "columns_adopted",
        )}


class SessionCache:
    """All cross-step memoized state of one exploration session.

    The cache doubles as the engine's *context* object: it implements the
    ``adopt_step`` / ``partitions`` / ``groupby_structure`` / ``row_sources``
    hooks that :class:`~repro.core.engine.FedexExplainer` and the
    incremental backend consult when one is injected.

    Every layer is bounded (caps below, least-recently-used eviction), so a
    long-lived session serving many requests over changing data reaches a
    steady-state memory footprint instead of growing without limit.

    Parameters
    ----------
    max_reports:
        Upper bound on memoized full reports.
    max_columns:
        Upper bound on retained canonical columns.  Columns dominate the
        cache's memory footprint because each keeps its values plus cached
        argsort/factorization alive.
    max_partitions:
        Upper bound on memoized per-attribute partition lists (each holds
        row-index arrays proportional to its frame's row count).
    max_structures:
        Upper bound on memoized operation structures (group-by row
        assignments, row-provenance arrays).
    """

    def __init__(self, max_reports: int = 256, max_columns: int = 4_096,
                 max_partitions: int = 1_024, max_structures: int = 512) -> None:
        self.max_reports = max_reports
        self.max_columns = max_columns
        self.max_partitions = max_partitions
        self.max_structures = max_structures
        self.stats = SessionCacheStats()
        self._reports: "OrderedDict[Tuple, ExplanationReport]" = OrderedDict()
        self._partitions: "OrderedDict[Tuple, List[RowPartition]]" = OrderedDict()
        self._structures: "OrderedDict[Tuple, object]" = OrderedDict()
        self._columns: "OrderedDict[str, Column]" = OrderedDict()
        # Request-scoped fingerprint memos (id -> (object, fingerprint)); the
        # kept object reference pins the id for the memo's lifetime.  Active
        # only inside a `request()` scope, so the mutation-invalidation
        # contract (recompute per request) is preserved.
        self._request_columns: Optional[Dict[int, Tuple[Column, str]]] = None
        self._request_frames: Optional[Dict[int, Tuple[DataFrame, str]]] = None

    # ------------------------------------------------------- fingerprint memo
    @contextmanager
    def request(self):
        """Scope one explanation request: fingerprints are hashed at most once.

        A single cold explain needs the same frame/column fingerprints in
        several places (step signature, column adoption, partition keys,
        structure keys); inside a ``request()`` scope those are computed once
        per object and reused.  The memo dies with the scope, so the next
        request re-hashes and in-place mutations are still detected.
        """
        outer = (self._request_columns, self._request_frames)
        if self._request_columns is None:
            self._request_columns = {}
            self._request_frames = {}
        try:
            yield self
        finally:
            self._request_columns, self._request_frames = outer

    def column_fingerprint(self, column: Column) -> str:
        """The column's content fingerprint, memoized within a request scope."""
        memo = self._request_columns
        if memo is None:
            return column.fingerprint()
        entry = memo.get(id(column))
        if entry is None or entry[0] is not column:
            entry = (column, column.fingerprint())
            memo[id(column)] = entry
        return entry[1]

    def frame_fingerprint(self, frame: DataFrame) -> str:
        """The frame's content fingerprint, memoized within a request scope."""
        memo = self._request_frames
        if memo is None:
            return frame.fingerprint(column_fingerprint=self.column_fingerprint)
        entry = memo.get(id(frame))
        if entry is None or entry[0] is not frame:
            entry = (frame, frame.fingerprint(column_fingerprint=self.column_fingerprint))
            memo[id(frame)] = entry
        return entry[1]

    # ------------------------------------------------------------ full reports
    def get_report(self, key: Tuple) -> Optional[ExplanationReport]:
        """The memoized report for a (step, config, measure) signature, if any."""
        report = self._reports.get(key)
        if report is None:
            self.stats.report_misses += 1
            return None
        self._reports.move_to_end(key)
        self.stats.report_hits += 1
        return report

    def store_report(self, key: Tuple, report: ExplanationReport) -> None:
        """Memoize a full report, evicting the least recently used beyond the cap."""
        self._reports[key] = report
        self._reports.move_to_end(key)
        while len(self._reports) > self.max_reports:
            self._reports.popitem(last=False)

    # -------------------------------------------------------------- partitions
    def partitions(self, key: Tuple,
                   build: Callable[[], List[RowPartition]]) -> List[RowPartition]:
        """Partitions of one frame under one partition configuration, memoized.

        ``key`` carries the frame's content fingerprint plus the partition
        configuration (attribute, set counts, methods, input index, minimum
        group values) — the caller hashes the frame once and reuses the
        fingerprint across its per-attribute keys.
        """
        cached = self._partitions.get(key)
        if cached is not None:
            self._partitions.move_to_end(key)
            self.stats.partition_hits += 1
            return cached
        self.stats.partition_misses += 1
        built = build()
        self._partitions[key] = built
        while len(self._partitions) > self.max_partitions:
            self._partitions.popitem(last=False)
        return built

    # ----------------------------------------------------- operation structure
    def groupby_structure(self, step: ExploratoryStep, build: Callable) -> object:
        """Per-group row assignment of a group-by step, memoized by content.

        The structure depends on the (pre-filtered) input content, the key
        columns, and the pre-filter — all captured by the key — and not on
        the aggregations, so re-aggregating the same grouping reuses it.
        """
        operation = step.operation
        key = (
            "groupby",
            self.frame_fingerprint(step.inputs[0]),
            tuple(getattr(operation, "keys", ())),
            operation.pre_filter.signature() if getattr(operation, "pre_filter", None) is not None
            else None,
        )
        return self._structure(key, lambda: build(step))

    def row_sources(self, step: ExploratoryStep, build: Callable) -> object:
        """Row-level provenance of a sliceable step, memoized by content."""
        key = (
            "sources",
            step.operation.kind,
            step.operation.signature(),
            tuple(self.frame_fingerprint(frame) for frame in step.inputs),
        )
        return self._structure(key, lambda: build(step))

    def _structure(self, key: Tuple, build: Callable[[], object]) -> object:
        if key in self._structures:
            self._structures.move_to_end(key)
            self.stats.structure_hits += 1
            return self._structures[key]
        self.stats.structure_misses += 1
        built = build()
        self._structures[key] = built
        while len(self._structures) > self.max_structures:
            self._structures.popitem(last=False)
        return built

    # --------------------------------------------------------- column adoption
    def adopt_step(self, step: ExploratoryStep) -> None:
        """Adopt every column of the step's inputs and output."""
        for frame in list(step.inputs) + [step.output]:
            self.adopt_frame(frame)

    def adopt_frame(self, frame: DataFrame) -> None:
        """Adopt every column of one dataframe."""
        for column in frame.columns():
            self.adopt_column(column)

    def adopt_column(self, column: Column) -> Column:
        """Share cached argsort/factorization across content-identical columns.

        The newest adopted column becomes the canonical holder of its
        fingerprint: it inherits whatever structure the previous canonical
        column already computed, and — being the object the engine is about
        to work on — it accumulates any structure computed during the coming
        explain call, ready for the *next* adoption of the same content.

        Because the canonical column computes its structure lazily *after*
        its fingerprint was recorded, its backing array could have been
        mutated in between; the canonical's fingerprint is therefore
        re-verified before any structure is shared, so a stale canonical is
        dropped rather than poisoning a fresh content-identical column.
        """
        fingerprint = self.column_fingerprint(column)
        previous = self._columns.get(fingerprint)
        if previous is not None and previous is not column:
            if self.column_fingerprint(previous) != fingerprint:
                previous = None  # canonical mutated since adoption: treat as new content
        if previous is not None and previous is not column:
            if column._sorted_order is None and previous._sorted_order is not None:
                column._sorted_order = previous._sorted_order
                self.stats.column_structure_hits += 1
            if column._factorized is None and previous._factorized is not None:
                column._factorized = previous._factorized
                self.stats.column_structure_hits += 1
        self.stats.columns_adopted += 1
        self._columns[fingerprint] = column
        self._columns.move_to_end(fingerprint)
        while len(self._columns) > self.max_columns:
            self._columns.popitem(last=False)
        return column

    # ------------------------------------------------------------ housekeeping
    def clear(self) -> None:
        """Drop every cached entry and reset the counters."""
        self._reports.clear()
        self._partitions.clear()
        self._structures.clear()
        self._columns.clear()
        if self._request_columns is not None:
            self._request_columns.clear()
            self._request_frames.clear()
        self.stats = SessionCacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SessionCache(reports={len(self._reports)}, "
                f"partitions={len(self._partitions)}, "
                f"structures={len(self._structures)}, columns={len(self._columns)})")
