"""The per-tenant cache view of an exploration session.

A notebook exploration session revisits the same data over and over: a
filter is refined three times over the same dataframe, a group-by is
re-aggregated with a different function, a cell is simply re-run.  The
stateless engine rebuilds column argsorts, factorizations, row partitions,
and group structure from scratch every time.  :class:`SessionCache` owns all
of that cross-step state, keyed by **content fingerprints**
(:meth:`repro.dataframe.column.Column.fingerprint`), so any step touching
content-identical data reuses the intervention structure of earlier steps —
regardless of whether the dataframe objects are literally the same.

Since the multi-tenant refactor the entries themselves live in a shared,
thread-safe, byte-budgeted :class:`~repro.session.store.CacheStore`;
``SessionCache`` is the lightweight *view* one session holds over it: it
contributes the tenant identity every insert is charged to, the per-view
hit/miss statistics, and the request-scoped fingerprint memo (thread-local,
so concurrent workers serving one tenant never share a memo).  A private
store is created when none is injected, which preserves the original
one-session-one-cache behaviour exactly.

Five layers, from coarse to fine:

* **full reports** — ``(step signature, config signature, measure)`` →
  :class:`~repro.core.engine.ExplanationReport`; re-explaining an
  already-seen step is a dictionary lookup;
* **interestingness scores** — phase-1 per-attribute scores keyed by step
  content + scoring config, reused across *different* engine
  configurations of the same step;
* **row partitions** — ``(frame fingerprint, partition config)`` → built
  :class:`~repro.core.partition.RowPartition` lists; two different filters
  over the same input share every partition;
* **operation structure** — per-group row assignment of group-by steps,
  row-level provenance of sliceable steps, and left-join match structure,
  keyed by input fingerprints plus the operation's declarative description;
* **column structure** — cached argsorts / factorizations are *adopted*
  across content-identical :class:`Column` objects, so the ``O(n log n)``
  sort behind every KS re-scoring is paid once per content, not once per
  step.

Because every key embeds content fingerprints that are recomputed from the
raw values on each lookup, mutated data can never produce a stale hit: the
mutation changes the fingerprint and the lookup misses.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.engine import ExplanationReport
from ..core.partition import RowPartition
from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..operators.step import ExploratoryStep
from .store import CacheStore, _MISSING


@dataclass
class SessionCacheStats:
    """Hit/miss counters of every cache layer (observability + tests)."""

    report_hits: int = 0
    report_misses: int = 0
    score_hits: int = 0
    score_misses: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    structure_hits: int = 0
    structure_misses: int = 0
    column_structure_hits: int = 0
    columns_adopted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary (for logging/rendering)."""
        return {name: getattr(self, name) for name in (
            "report_hits", "report_misses", "score_hits", "score_misses",
            "partition_hits", "partition_misses",
            "structure_hits", "structure_misses", "column_structure_hits",
            "columns_adopted",
        )}


class SessionCache:
    """One session's view over a (possibly shared) explanation cache store.

    The cache doubles as the engine's *context* object: it implements the
    ``adopt_step`` / ``partitions`` / ``score`` / ``groupby_structure`` /
    ``row_sources`` / ``left_join_structure`` hooks that
    :class:`~repro.core.engine.FedexExplainer` and the incremental backend
    consult when one is injected.

    Parameters
    ----------
    max_reports / max_columns / max_partitions / max_structures:
        Per-layer entry caps applied to a *privately created* store (the
        original single-session bounds).  Ignored when ``store`` is
        injected — a shared store is governed by its own byte budget.
    store:
        The shared :class:`~repro.session.store.CacheStore` holding the
        entries.  ``None`` creates a private store bounded by the entry
        caps plus the default byte budget.
    tenant:
        Tenant identity every insert through this view is charged to.
    """

    def __init__(self, max_reports: int = 256, max_columns: int = 4_096,
                 max_partitions: int = 1_024, max_structures: int = 512,
                 store: Optional[CacheStore] = None, tenant: str = "default") -> None:
        self.max_reports = max_reports
        self.max_columns = max_columns
        self.max_partitions = max_partitions
        self.max_structures = max_structures
        self.tenant = tenant
        if store is None:
            store = CacheStore(max_entries={
                "reports": max_reports, "columns": max_columns,
                "partitions": max_partitions, "structures": max_structures,
                "scores": max_reports, "costs": max_reports,
            })
        self.store = store
        self.stats = SessionCacheStats()
        # Request-scoped fingerprint memos (id -> (object, fingerprint)); the
        # kept object reference pins the id for the memo's lifetime.  Active
        # only inside a `request()` scope and thread-local, so concurrent
        # workers sharing one view keep independent memos and the
        # mutation-invalidation contract (recompute per request) holds.
        self._local = threading.local()

    # ------------------------------------------------------- fingerprint memo
    @property
    def _request_columns(self) -> Optional[Dict[int, Tuple[Column, str]]]:
        return getattr(self._local, "columns", None)

    @property
    def _request_frames(self) -> Optional[Dict[int, Tuple[DataFrame, str]]]:
        return getattr(self._local, "frames", None)

    @contextmanager
    def request(self):
        """Scope one explanation request: fingerprints are hashed at most once.

        A single cold explain needs the same frame/column fingerprints in
        several places (step signature, column adoption, partition keys,
        structure keys); inside a ``request()`` scope those are computed once
        per object and reused.  The memo dies with the scope, so the next
        request re-hashes and in-place mutations are still detected.
        """
        local = self._local
        outer = (getattr(local, "columns", None), getattr(local, "frames", None))
        if outer[0] is None:
            local.columns = {}
            local.frames = {}
        try:
            yield self
        finally:
            local.columns, local.frames = outer

    def column_fingerprint(self, column: Column) -> str:
        """The column's content fingerprint, memoized within a request scope."""
        memo = self._request_columns
        if memo is None:
            return column.fingerprint()
        entry = memo.get(id(column))
        if entry is None or entry[0] is not column:
            entry = (column, column.fingerprint())
            memo[id(column)] = entry
        return entry[1]

    def frame_fingerprint(self, frame: DataFrame) -> str:
        """The frame's content fingerprint, memoized within a request scope."""
        memo = self._request_frames
        if memo is None:
            return frame.fingerprint(column_fingerprint=self.column_fingerprint)
        entry = memo.get(id(frame))
        if entry is None or entry[0] is not frame:
            entry = (frame, frame.fingerprint(column_fingerprint=self.column_fingerprint))
            memo[id(frame)] = entry
        return entry[1]

    # ------------------------------------------------------------ full reports
    def get_report(self, key: Tuple) -> Optional[ExplanationReport]:
        """The memoized report for a (step, config, measure) signature, if any."""
        report = self.store.get("reports", key)
        if report is None:
            self.stats.report_misses += 1
            return None
        self.stats.report_hits += 1
        return report

    def store_report(self, key: Tuple, report: ExplanationReport) -> None:
        """Memoize a full report (byte-budget eviction owned by the store)."""
        self.store.put("reports", key, report, tenant=self.tenant)

    def report_singleflight(self, key: Tuple,
                            build: Callable[[], ExplanationReport]) -> ExplanationReport:
        """Memoized report with in-flight coalescing of concurrent misses.

        Counts a hit when the store (or a concurrent leader) already holds
        the report, a miss when this caller computes it.
        """
        cached = self.store.get("reports", key, default=_MISSING)
        if cached is not _MISSING:
            self.stats.report_hits += 1
            return cached

        def counted_build() -> ExplanationReport:
            self.stats.report_misses += 1
            return build()

        return self.store.singleflight("reports", key, counted_build,
                                       tenant=self.tenant)

    # ------------------------------------------------------------------ scores
    def score(self, key: Tuple, build: Callable[[], float]) -> float:
        """A phase-1 interestingness score, memoized by content key."""
        cached = self.store.get("scores", key, default=_MISSING)
        if cached is not _MISSING:
            self.stats.score_hits += 1
            return cached
        self.stats.score_misses += 1
        value = build()
        self.store.put("scores", key, value, tenant=self.tenant)
        return value

    # -------------------------------------------------------------- pair costs
    def pair_costs(self, key: Tuple) -> Dict[Tuple, float]:
        """Measured per-pair contribution timings of an earlier run, if any.

        ``key`` is the step's cost-history key
        (:func:`~repro.core.backends.costs.history_key`): operation kind +
        declarative signature + input content fingerprints.  The pooled
        backends feed the mapping (pair key → seconds) into the batch
        planner so the *next* run of the same step sizes batches by
        measured wall-time instead of static estimates.
        """
        return self.store.get("costs", key) or {}

    def store_pair_costs(self, key: Tuple, costs: Dict[Tuple, float]) -> None:
        """Merge newly-measured pair timings into the step's cost history.

        Merge-on-write: a crash-degraded run that measured only part of the
        grid refines the history instead of erasing the rest of it.
        """
        if not costs:
            return
        merged = dict(self.store.get("costs", key) or {})
        merged.update(costs)
        self.store.put("costs", key, merged, tenant=self.tenant)

    # -------------------------------------------------------------- partitions
    def partitions(self, key: Tuple,
                   build: Callable[[], List[RowPartition]]) -> List[RowPartition]:
        """Partitions of one frame under one partition configuration, memoized.

        ``key`` carries the frame's content fingerprint plus the partition
        configuration (attribute, set counts, methods, input index, minimum
        group values) — the caller hashes the frame once and reuses the
        fingerprint across its per-attribute keys.
        """
        cached = self.store.get("partitions", key, default=_MISSING)
        if cached is not _MISSING:
            self.stats.partition_hits += 1
            return cached
        self.stats.partition_misses += 1
        built = build()
        self.store.put("partitions", key, built, tenant=self.tenant)
        return built

    # ----------------------------------------------------- operation structure
    def groupby_structure(self, step: ExploratoryStep, build: Callable) -> object:
        """Per-group row assignment of a group-by step, memoized by content.

        The structure depends on the (pre-filtered) input content, the key
        columns, and the pre-filter — all captured by the key — and not on
        the aggregations, so re-aggregating the same grouping reuses it.
        """
        operation = step.operation
        key = (
            "groupby",
            self.frame_fingerprint(step.inputs[0]),
            tuple(getattr(operation, "keys", ())),
            operation.pre_filter.signature() if getattr(operation, "pre_filter", None) is not None
            else None,
        )
        return self._structure(key, lambda: build(step))

    def row_sources(self, step: ExploratoryStep, build: Callable) -> object:
        """Row-level provenance of a sliceable step, memoized by content."""
        key = (
            "sources",
            step.operation.kind,
            step.operation.signature(),
            tuple(self.frame_fingerprint(frame) for frame in step.inputs),
        )
        return self._structure(key, lambda: build(step))

    def left_join_structure(self, step: ExploratoryStep, build: Callable) -> object:
        """Match structure of a left join (for right-side interventions)."""
        key = (
            "leftjoin",
            step.operation.signature(),
            tuple(self.frame_fingerprint(frame) for frame in step.inputs),
        )
        return self._structure(key, lambda: build(step))

    def _structure(self, key: Tuple, build: Callable[[], object]) -> object:
        cached = self.store.get("structures", key, default=_MISSING)
        if cached is not _MISSING:
            self.stats.structure_hits += 1
            return cached
        self.stats.structure_misses += 1
        built = build()
        self.store.put("structures", key, built, tenant=self.tenant)
        return built

    # --------------------------------------------------------- column adoption
    def adopt_step(self, step: ExploratoryStep) -> None:
        """Adopt every column of the step's inputs and output."""
        for frame in list(step.inputs) + [step.output]:
            self.adopt_frame(frame)

    def adopt_frame(self, frame: DataFrame) -> None:
        """Adopt every column of one dataframe."""
        for column in frame.columns():
            self.adopt_column(column)

    def adopt_column(self, column: Column) -> Column:
        """Share cached argsort/factorization across content-identical columns.

        The newest adopted column becomes the canonical holder of its
        fingerprint: it inherits whatever structure the previous canonical
        column already computed, and — being the object the engine is about
        to work on — it accumulates any structure computed during the coming
        explain call, ready for the *next* adoption of the same content.

        Because the canonical column computes its structure lazily *after*
        its fingerprint was recorded, its backing array could have been
        mutated in between; the canonical's fingerprint is therefore
        re-verified before any structure is shared, so a stale canonical is
        dropped rather than poisoning a fresh content-identical column.
        """
        fingerprint = self.column_fingerprint(column)
        previous = self.store.get("columns", fingerprint)
        if previous is not None and previous is not column:
            if self.column_fingerprint(previous) != fingerprint:
                previous = None  # canonical mutated since adoption: treat as new content
        if previous is not None and previous is not column:
            if column._sorted_order is None and previous._sorted_order is not None:
                column._sorted_order = previous._sorted_order
                self.stats.column_structure_hits += 1
            if column._factorized is None and previous._factorized is not None:
                column._factorized = previous._factorized
                self.stats.column_structure_hits += 1
        self.stats.columns_adopted += 1
        self.store.put("columns", fingerprint, column, tenant=self.tenant)
        return column

    # --------------------------------------------------------------- inspection
    @property
    def _reports(self) -> Dict:
        """Snapshot of the reports layer (tests/debugging)."""
        return self.store.layer_items("reports")

    @property
    def _partitions(self) -> Dict:
        """Snapshot of the partitions layer (tests/debugging)."""
        return self.store.layer_items("partitions")

    @property
    def _structures(self) -> Dict:
        """Snapshot of the structures layer (tests/debugging)."""
        return self.store.layer_items("structures")

    @property
    def _columns(self) -> Dict:
        """Snapshot of the columns layer (tests/debugging)."""
        return self.store.layer_items("columns")

    # ------------------------------------------------------------ housekeeping
    def clear(self) -> None:
        """Drop every cached entry and reset the counters.

        Clears the *store* — when the store is shared this clears it for
        every view, which is what an operator flushing a poisoned cache
        wants; per-tenant trimming is the store's quota eviction's job.
        """
        self.store.clear()
        memo = self._request_columns
        if memo is not None:
            memo.clear()
            self._request_frames.clear()
        self.stats = SessionCacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        store = self.store
        return (f"SessionCache(tenant={self.tenant!r}, "
                f"reports={store.layer_count('reports')}, "
                f"scores={store.layer_count('scores')}, "
                f"partitions={store.layer_count('partitions')}, "
                f"structures={store.layer_count('structures')}, "
                f"columns={store.layer_count('columns')})")
