"""The shared, byte-budgeted explanation cache store.

:class:`CacheStore` is the multi-tenant heart of the serving architecture:
one process-wide store of memoized explanation state — full reports,
phase-1 interestingness scores, row partitions, operation structure,
canonical columns — shared by every
:class:`~repro.session.cache.SessionCache` view (and thus every tenant) of
an :class:`~repro.service.ExplanationService`.

Design points, in the order they matter:

* **Bounded by measured bytes, not entry counts.**  A memoized report over
  a 1M-row frame and one over a 100-row frame are wildly different costs;
  the store sizes every value with :func:`measured_bytes` (a recursive
  walk that prices NumPy buffers at ``nbytes``) and evicts
  least-recently-used entries — across *all* layers, in one global LRU —
  until usage fits ``budget_bytes``.  A value that alone exceeds the
  budget is rejected outright instead of wiping the store.
* **Per-tenant byte quotas.**  Every entry is charged to the tenant that
  inserted it.  When a tenant exceeds its quota, *that tenant's*
  least-recently-used entries are evicted first, so one analyst replaying
  a giant notebook cannot evict everyone else's warm state.  Reads are
  shared: any tenant may hit any entry (the whole point of a shared
  store); quotas bound what each tenant can pin, not what it can see.
* **Reader/writer locking.**  Lookups take a shared read lock; inserts and
  evictions take the exclusive write lock.  Because an LRU *read* must
  eventually bump recency (a write), reads record their touches in a
  lock-free queue that the next writer drains — recency is batched, never
  blocking the read path.
* **Snapshot persistence.**  :meth:`save` pickles the entries to a file and
  :meth:`load` rebuilds a store from one, so a warmed cache survives a
  process restart (or ships to another serving process).  Entries that
  cannot be pickled (custom environment tokens hold process-local
  identity on purpose) are skipped, never fatal.
* **In-flight request coalescing.**  :meth:`singleflight` lets concurrent
  misses on the same key share one computation: the first caller becomes
  the leader and computes, followers block on an event and read the
  stored result.  Under concurrent tenants replaying overlapping
  workloads this — not thread parallelism — is where the throughput
  multiplier comes from.
"""

from __future__ import annotations

import pickle
import sys
import threading
import types
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.config import DEFAULT_CACHE_BUDGET_BYTES
from ..obs.metrics import MetricsRegistry
from ..obs.trace import current_tracer

#: Default global byte budget of a shared store (one source of truth with
#: :data:`repro.core.config.DEFAULT_CACHE_BUDGET_BYTES`, which services use).
DEFAULT_BUDGET_BYTES = DEFAULT_CACHE_BUDGET_BYTES

#: Read-side recency records are drained opportunistically once the queue
#: grows past this; a pure-hit workload must not accumulate touches forever.
_TOUCH_DRAIN_THRESHOLD = 4_096

#: Layers a store distinguishes (used for per-layer entry caps and stats).
STORE_LAYERS = ("reports", "scores", "partitions", "structures", "columns")

#: Fallback object size when ``sys.getsizeof`` is unavailable for a value.
_DEFAULT_OBJECT_SIZE = 64

_MISSING = object()


# ------------------------------------------------------------------ sizing
def measured_bytes(value: object) -> int:
    """Approximate deep size of a cached value, in bytes.

    An iterative graph walk (cycle-safe via an ``id`` set) that prices
    NumPy arrays at their buffer size — the dominant cost of every cached
    artefact (reports pin row-set index arrays, partitions pin row
    indices, columns pin values plus cached argsorts) — and everything
    else at ``sys.getsizeof``.  Shared sub-objects are counted once per
    call, so the result is the marginal footprint of pinning the value.

    The walk descends into containers, ``__dict__``/``__slots__`` state,
    but never into classes, modules, or functions (shared process state is
    not attributable to one cache entry).
    """
    seen: set = set()
    total = 0
    stack: List[object] = [value]
    while stack:
        obj = stack.pop()
        identity = id(obj)
        if identity in seen:
            continue
        seen.add(identity)
        if isinstance(obj, np.ndarray):
            total += int(obj.nbytes) + _DEFAULT_OBJECT_SIZE
            if obj.dtype == np.object_:
                stack.extend(obj.tolist())
            continue
        if isinstance(obj, (type, types.ModuleType, types.FunctionType,
                            types.MethodType, types.BuiltinFunctionType)):
            continue
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic C extension types
            total += _DEFAULT_OBJECT_SIZE
        if isinstance(obj, (str, bytes, bytearray, int, float, complex, bool)) or obj is None:
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset, deque)):
            stack.extend(obj)
            continue
        state = getattr(obj, "__dict__", None)
        if state:
            stack.extend(state.values())
        for klass in type(obj).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                attr = getattr(obj, slot, None)
                if attr is not None:
                    stack.append(attr)
    return total


# ------------------------------------------------------------------ locking
class RWLock:
    """A readers/writer lock with writer preference.

    Any number of readers may hold the lock concurrently; a writer holds it
    exclusively.  Arriving writers block *new* readers (writer preference),
    so a steady read stream cannot starve eviction or insertion.  Not
    reentrant — the store never nests acquisitions.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        """Hold the shared read lock for the duration of the block."""
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        """Hold the exclusive write lock for the duration of the block."""
        with self._condition:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._condition:
                self._writer = False
                self._condition.notify_all()


# ------------------------------------------------------------------ metrics
class StoreMetrics:
    """Aggregate counters of one shared store (all tenants, all layers).

    Backed by a :class:`~repro.obs.metrics.MetricsRegistry` — one labeled
    counter family per field, incremented under the registry lock, so
    concurrent workers count exactly — while keeping the original shape as
    views: ``store.metrics.hits`` reads, :meth:`as_dict` and
    :meth:`hit_rate` all answer from the registry.  The registry itself is
    the scrape surface (:meth:`MetricsRegistry.render_text`), concatenated
    into ``/metrics`` payloads by
    :meth:`~repro.service.service.ExplanationService.render_metrics`.
    """

    _FIELDS = ("hits", "misses", "insertions", "evictions", "quota_evictions",
               "oversize_rejections", "coalesced_requests",
               "tier_hits", "tier_misses", "tier_offers")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"repro_store_{name}_total",
                f"Cache-store lifetime count of {name.replace('_', ' ')}.",
            )
            for name in self._FIELDS
        }

    def bump(self, name: str, amount: int = 1) -> None:
        """Atomically increment one counter."""
        self._counters[name].inc(amount)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    def hit_rate(self) -> float:
        """Fraction of lookups that hit, over the store's lifetime."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """The counters (plus the derived hit rate) as a plain dictionary."""
        payload: Dict[str, float] = {
            name: int(self._counters[name].value) for name in self._FIELDS
        }
        total = payload["hits"] + payload["misses"]
        payload["hit_rate"] = payload["hits"] / total if total else 0.0
        return payload


class _Entry:
    __slots__ = ("value", "nbytes", "tenant")

    def __init__(self, value: object, nbytes: int, tenant: str) -> None:
        self.value = value
        self.nbytes = nbytes
        self.tenant = tenant


@dataclass
class _Inflight:
    """One in-flight computation being coalesced across callers."""

    event: threading.Event = field(default_factory=threading.Event)


# -------------------------------------------------------------------- store
class CacheStore:
    """Shared, thread-safe, byte-budgeted LRU store of explanation state.

    Parameters
    ----------
    budget_bytes:
        Global cap on the measured bytes of all entries.  ``None`` disables
        byte-based eviction (entry caps, when given, still apply).
    tenant_quota_bytes:
        Per-tenant byte cap.  Either one integer applied to every tenant or
        a mapping ``tenant -> quota``; tenants absent from the mapping are
        unbounded (up to the global budget).  ``None`` disables quotas.
    max_entries:
        Optional per-layer entry caps, ``{layer: count}`` — retained for
        the single-session :class:`~repro.session.cache.SessionCache`
        compatibility surface; byte budgets are the primary bound.
    tier:
        Optional out-of-process second cache level (duck-typed: ``lookup``
        and ``offer``, e.g. :class:`repro.serving.SharedCacheTier`).  A
        local miss consults the tier and promotes its hit into this store
        (charged to the ``"shared"`` pseudo-tenant); local inserts are
        offered back so other replicas can promote them.  Tier failures
        (disk gone, unpicklable value) degrade to plain misses — the tier
        is an optimization, never a correctness dependency.
    """

    #: Tenant that tier-promoted entries are charged to.  A pseudo-tenant:
    #: no single client pinned the entry, the fleet did.
    SHARED_TENANT = "shared"

    def __init__(self, budget_bytes: Optional[int] = DEFAULT_BUDGET_BYTES,
                 tenant_quota_bytes: Optional[object] = None,
                 max_entries: Optional[Dict[str, int]] = None,
                 tier: Optional[object] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._tenant_quotas = tenant_quota_bytes
        self._max_entries = dict(max_entries or {})
        self._entries: "OrderedDict[Tuple[str, object], _Entry]" = OrderedDict()
        self._layer_counts: Dict[str, int] = {}
        self._usage = 0
        self._tenant_usage: Dict[str, int] = {}
        # Per-tenant recency index: tenant -> OrderedDict of that tenant's
        # composite keys in the same LRU order as _entries.  Kept in lock
        # step on insert/remove/touch so quota eviction picks a tenant's
        # LRU victim in O(1) instead of scanning the whole store.
        self._tenant_lru: Dict[str, "OrderedDict[Tuple[str, object], None]"] = {}
        self._lock = RWLock()
        self._touches: "deque[Tuple[str, object]]" = deque()
        self._inflight: Dict[Tuple[str, object], _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self.tier = tier
        self.metrics = StoreMetrics()

    # ----------------------------------------------------------------- lookups
    def get(self, layer: str, key: object, default: object = None) -> object:
        """The cached value of ``(layer, key)``, bumping its recency on a hit."""
        composite = (layer, key)
        with self._lock.read():
            entry = self._entries.get(composite)
        tracer = current_tracer()
        if entry is None:
            promoted = self._tier_promote(layer, key)
            if promoted is not _MISSING:
                self.metrics.bump("hits")
                if tracer.enabled:
                    tracer.event("cache.lookup",
                                 labels={"layer": layer, "outcome": "tier_hit"})
                return promoted
            self.metrics.bump("misses")
            if tracer.enabled:
                tracer.event("cache.lookup", labels={"layer": layer, "outcome": "miss"})
            return default
        # Recency is recorded lock-free and applied by the next writer;
        # deque.append is atomic under the GIL.  A pure-hit workload never
        # writes, so drain opportunistically once the queue grows — both to
        # bound its memory and to keep LRU order honest between writes.
        self._touches.append(composite)
        if len(self._touches) > _TOUCH_DRAIN_THRESHOLD:
            with self._lock.write():
                self._drain_touches_locked()
        self.metrics.bump("hits")
        if tracer.enabled:
            tracer.event("cache.lookup", labels={"layer": layer, "outcome": "hit"})
        return entry.value

    def __contains__(self, composite: Tuple[str, object]) -> bool:
        with self._lock.read():
            return composite in self._entries

    # ----------------------------------------------------------------- inserts
    def put(self, layer: str, key: object, value: object, tenant: str = "default",
            nbytes: Optional[int] = None) -> bool:
        """Insert (or replace) an entry, evicting beyond budgets.

        Returns ``False`` when the value alone exceeds the global budget or
        the tenant's quota — such a value is *not* stored (storing it would
        evict the whole store and still not fit).
        """
        size = measured_bytes(value) if nbytes is None else int(nbytes)
        quota = self._quota_for(tenant)
        if (self.budget_bytes is not None and size > self.budget_bytes) or \
                (quota is not None and size > quota):
            self.metrics.bump("oversize_rejections")
            return False
        composite = (layer, key)
        with self._lock.write():
            self._drain_touches_locked()
            previous = self._entries.pop(composite, None)
            if previous is not None:
                self._account_removal_locked(composite, previous)
            self._entries[composite] = _Entry(value, size, tenant)
            self._layer_counts[layer] = self._layer_counts.get(layer, 0) + 1
            self._usage += size
            self._tenant_usage[tenant] = self._tenant_usage.get(tenant, 0) + size
            self._tenant_lru.setdefault(tenant, OrderedDict())[composite] = None
            self.metrics.bump("insertions")
            self._evict_locked(tenant)
        if self.tier is not None and tenant != self.SHARED_TENANT:
            # Write-through to the shared tier (tier-promoted entries are
            # not re-offered; they came from there).  Never fatal: one
            # replica's disk hiccup must not fail the request that computed
            # the value.
            try:
                if self.tier.offer(layer, key, value, nbytes=size):
                    self.metrics.bump("tier_offers")
            except Exception:
                pass
        return True

    def memoize(self, layer: str, key: object, build: Callable[[], object],
                tenant: str = "default") -> object:
        """``get`` or build-and-``put`` — the common read-through pattern."""
        value = self.get(layer, key, default=_MISSING)
        if value is not _MISSING:
            return value
        value = build()
        self.put(layer, key, value, tenant=tenant)
        return value

    # ------------------------------------------------------------ coalescing
    def singleflight(self, layer: str, key: object, build: Callable[[], object],
                     tenant: str = "default") -> object:
        """Compute-once semantics for concurrent misses on one key.

        The first caller of a missing key becomes the *leader*: it runs
        ``build()``, stores the result, and wakes the followers, which
        return the stored value without recomputing.  If the leader fails
        (or the result is evicted before a follower wakes), followers fall
        back to computing for themselves — coalescing is an optimization,
        never a correctness dependency.
        """
        value = self.get(layer, key, default=_MISSING)
        if value is not _MISSING:
            return value
        composite = (layer, key)
        with self._inflight_lock:
            flight = self._inflight.get(composite)
            leader = flight is None
            if leader:
                flight = _Inflight()
                self._inflight[composite] = flight
        if not leader:
            with current_tracer().span("cache.coalesce_wait", layer=layer):
                flight.event.wait()
            self.metrics.bump("coalesced_requests")
            value = self.get(layer, key, default=_MISSING)
            if value is not _MISSING:
                return value
            return build()
        try:
            value = build()
            self.put(layer, key, value, tenant=tenant)
            return value
        finally:
            with self._inflight_lock:
                self._inflight.pop(composite, None)
            flight.event.set()

    # ------------------------------------------------------------- accounting
    @property
    def usage_bytes(self) -> int:
        """Measured bytes of every stored entry (consistent snapshot)."""
        with self._lock.read():
            return self._usage

    def tenant_usage(self, tenant: str) -> int:
        """Measured bytes currently charged to one tenant."""
        with self._lock.read():
            return self._tenant_usage.get(tenant, 0)

    def tenants(self) -> List[str]:
        """Tenants with at least one charged byte."""
        with self._lock.read():
            return sorted(t for t, used in self._tenant_usage.items() if used > 0)

    def layer_count(self, layer: str) -> int:
        """Number of entries currently stored in one layer."""
        with self._lock.read():
            return self._layer_counts.get(layer, 0)

    def layer_items(self, layer: str) -> "OrderedDict[object, object]":
        """Snapshot of one layer's ``key -> value`` mapping (LRU order)."""
        with self._lock.read():
            return OrderedDict(
                (key, entry.value) for (entry_layer, key), entry in self._entries.items()
                if entry_layer == layer
            )

    def clear(self) -> None:
        """Drop every entry (metrics are retained; they are lifetime counters)."""
        with self._lock.write():
            self._entries.clear()
            self._layer_counts.clear()
            self._tenant_usage.clear()
            self._tenant_lru.clear()
            self._usage = 0
            self._touches.clear()

    def snapshot_entries(self) -> List[Tuple[str, object, str, int, object]]:
        """A consistent ``(layer, key, tenant, nbytes, value)`` snapshot.

        Recency order is preserved (oldest first).  This is the surface the
        snapshot persistence and the shared cache tier's bulk
        :meth:`~repro.serving.SharedCacheTier.publish` both read from.
        """
        with self._lock.read():
            return [
                (layer, key, entry.tenant, entry.nbytes, entry.value)
                for (layer, key), entry in self._entries.items()
            ]

    # ------------------------------------------------------------- persistence
    def save(self, path: str) -> int:
        """Snapshot the store to ``path``; returns the number of saved entries.

        Entries are pickled individually so one unpicklable value (e.g. a
        report keyed under a process-local environment token, or a custom
        structure holding a lambda) skips that entry instead of failing the
        snapshot.  Recency order is preserved: oldest first, so a loaded
        store evicts in the same order the live one would have.
        """
        snapshot = self.snapshot_entries()
        records: List[bytes] = []
        for record in snapshot:
            try:
                records.append(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                continue
        payload = {"version": 1, "records": records}
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return len(records)

    @classmethod
    def load(cls, path: str, budget_bytes: Optional[int] = DEFAULT_BUDGET_BYTES,
             tenant_quota_bytes: Optional[object] = None,
             max_entries: Optional[Dict[str, int]] = None) -> "CacheStore":
        """Rebuild a store from a :meth:`save` snapshot.

        Entries are re-inserted oldest-first under the *new* budgets, so a
        snapshot taken under a larger budget is trimmed to the most
        recently used entries that fit.  Corrupt individual records are
        skipped.
        """
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValueError(f"unrecognised cache snapshot format in {path!r}")
        store = cls(budget_bytes=budget_bytes, tenant_quota_bytes=tenant_quota_bytes,
                    max_entries=max_entries)
        for blob in payload["records"]:
            try:
                layer, key, tenant, nbytes, value = pickle.loads(blob)
            except Exception:
                continue
            store.put(layer, key, value, tenant=tenant, nbytes=nbytes)
        return store

    # --------------------------------------------------------------- internals
    def _tier_promote(self, layer: str, key: object) -> object:
        """Consult the shared tier on a local miss; install and return a hit."""
        if self.tier is None:
            return _MISSING
        try:
            found = self.tier.lookup(layer, key)
        except Exception:
            found = None
        if found is None:
            self.metrics.bump("tier_misses")
            return _MISSING
        value, nbytes = found
        self.metrics.bump("tier_hits")
        self.put(layer, key, value, tenant=self.SHARED_TENANT, nbytes=nbytes)
        return value

    def _quota_for(self, tenant: str) -> Optional[int]:
        quotas = self._tenant_quotas
        if quotas is None:
            return None
        if isinstance(quotas, dict):
            return quotas.get(tenant)
        return int(quotas)

    def _drain_touches_locked(self) -> None:
        """Apply batched read-side recency bumps (write lock held)."""
        while True:
            try:
                composite = self._touches.popleft()
            except IndexError:
                return
            entry = self._entries.get(composite)
            if entry is not None:
                self._entries.move_to_end(composite)
                tenant_lru = self._tenant_lru.get(entry.tenant)
                if tenant_lru is not None and composite in tenant_lru:
                    tenant_lru.move_to_end(composite)

    def _account_removal_locked(self, composite: Tuple[str, object],
                                entry: _Entry) -> None:
        layer = composite[0]
        self._layer_counts[layer] = self._layer_counts.get(layer, 1) - 1
        self._usage -= entry.nbytes
        remaining = self._tenant_usage.get(entry.tenant, entry.nbytes) - entry.nbytes
        self._tenant_usage[entry.tenant] = max(remaining, 0)
        tenant_lru = self._tenant_lru.get(entry.tenant)
        if tenant_lru is not None:
            tenant_lru.pop(composite, None)
            if not tenant_lru:
                del self._tenant_lru[entry.tenant]

    def _evict_locked(self, inserted_tenant: str) -> None:
        # Per-tenant quota first: the inserting tenant pays for its own
        # overflow before anyone else's entries are considered.
        quota = self._quota_for(inserted_tenant)
        if quota is not None:
            while self._tenant_usage.get(inserted_tenant, 0) > quota:
                if not self._evict_one_locked(tenant=inserted_tenant):
                    break
                self.metrics.bump("quota_evictions")
        # Per-layer entry caps (compatibility bound for private stores).
        for layer, cap in self._max_entries.items():
            while self._layer_counts.get(layer, 0) > cap:
                if not self._evict_one_locked(layer=layer):
                    break
        # Global byte budget last, across all layers and tenants.
        if self.budget_bytes is not None:
            while self._usage > self.budget_bytes and self._entries:
                self._evict_one_locked()

    def _evict_one_locked(self, tenant: Optional[str] = None,
                          layer: Optional[str] = None) -> bool:
        """Evict the least-recently-used entry (optionally of one tenant/layer).

        Tenant-targeted eviction reads the head of the tenant's own recency
        index — O(1) per eviction, so a tenant blowing its quota pays
        O(entries evicted), not O(store size) per evicted entry.  Layer-
        targeted eviction (the compatibility entry caps of private session
        stores) still scans.
        """
        victim: Optional[Tuple[str, object]] = None
        if tenant is not None:
            tenant_lru = self._tenant_lru.get(tenant)
            if tenant_lru:
                if layer is None:
                    victim = next(iter(tenant_lru))
                else:
                    for composite in tenant_lru:
                        if composite[0] == layer:
                            victim = composite
                            break
        elif layer is None:
            if self._entries:
                victim = next(iter(self._entries))
        else:
            for composite in self._entries:
                if composite[0] == layer:
                    victim = composite
                    break
        if victim is None:
            return False
        entry = self._entries.pop(victim)
        self._account_removal_locked(victim, entry)
        self.metrics.bump("evictions")
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock.read():
            counts = ", ".join(
                f"{layer}={count}" for layer, count in sorted(self._layer_counts.items())
                if count
            )
            return (f"CacheStore({counts or 'empty'}, usage={self._usage}B, "
                    f"budget={self.budget_bytes}B)")
