"""One-line explanation wrapper over the dataframe substrate (pd-explain style)."""

from .explainable import ExplainableDataFrame, explain_dataframe

__all__ = ["ExplainableDataFrame", "explain_dataframe"]
