"""One-line explanation wrapper (the "pandas wrapper" of the paper's future work).

:class:`ExplainableDataFrame` wraps a :class:`~repro.dataframe.frame.DataFrame`
and records every EDA operation applied through it.  After any operation the
user can call :meth:`~ExplainableDataFrame.explain` to get FEDEX explanations
of the *last* step (or of any recorded step), in one line::

    songs = ExplainableDataFrame(load_spotify())
    popular = songs.filter(Comparison("popularity", ">", 65))
    print(popular.explain().render_text())

This mirrors the pd-explain interface the FEDEX authors released alongside
the paper.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from ..core.config import FedexConfig
from ..core.engine import ExplainerPool, ExplanationReport, FedexExplainer
from ..dataframe.frame import DataFrame
from ..dataframe.predicates import Predicate
from ..errors import ExplanationError
from ..operators.operations import Filter, GroupBy, Join, Union
from ..operators.step import ExploratoryStep


class ExplainableDataFrame:
    """A dataframe that remembers how it was produced and can explain it.

    Wrappers derived through operations share one pool of
    :class:`~repro.core.engine.FedexExplainer` instances (one per distinct
    configuration), so repeated ``explain()`` calls never rebuild the engine
    or its measure registry.  A wrapper opened from an
    :class:`~repro.session.ExplanationSession` (via ``session.open(frame)``)
    additionally routes every ``explain()`` through that session, making
    repeated explains of the same step cross-step cache hits; one opened
    from an :class:`~repro.service.ExplanationService` (via
    ``service.open(tenant, frame)``) further carries the tenant identity, so
    its explains pass admission control, are charged to the tenant's store
    quota, and appear in the service metrics.  ``session`` is duck-typed:
    anything with ``explain(step, measure=..., config=...)`` works.
    """

    def __init__(self, frame: DataFrame, history: Optional[List[ExploratoryStep]] = None,
                 config: FedexConfig | None = None, session=None,
                 _explainers: Optional[ExplainerPool] = None) -> None:
        self._frame = frame
        self._history: List[ExploratoryStep] = list(history or [])
        self._config = config or FedexConfig()
        self._session = session
        # One engine per config signature, shared (by reference) with every
        # wrapper derived from this one.
        self._explainers: ExplainerPool = (
            _explainers if _explainers is not None else ExplainerPool()
        )

    # ------------------------------------------------------------------ access
    @property
    def frame(self) -> DataFrame:
        """The wrapped dataframe."""
        return self._frame

    @property
    def history(self) -> List[ExploratoryStep]:
        """All exploratory steps recorded so far (oldest first)."""
        return list(self._history)

    @property
    def last_step(self) -> Optional[ExploratoryStep]:
        """The most recent exploratory step, if any."""
        return self._history[-1] if self._history else None

    @property
    def shape(self) -> tuple:
        """Shape of the wrapped dataframe."""
        return self._frame.shape

    @property
    def column_names(self) -> List[str]:
        """Column names of the wrapped dataframe."""
        return self._frame.column_names

    def __len__(self) -> int:
        return len(self._frame)

    def __getitem__(self, name: str):
        return self._frame[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExplainableDataFrame({self._frame!r}, steps={len(self._history)})"

    # -------------------------------------------------------------- operations
    def filter(self, predicate: Predicate, label: str | None = None) -> "ExplainableDataFrame":
        """Apply a filter operation and record the step."""
        return self._apply(Filter(predicate), label=label)

    def groupby(self, keys: Sequence[str] | str,
                aggregations: Mapping[str, Sequence[str]] | None = None,
                include_count: bool = False,
                pre_filter: Predicate | None = None,
                label: str | None = None) -> "ExplainableDataFrame":
        """Apply a group-by operation and record the step."""
        operation = GroupBy(keys, aggregations, include_count=include_count, pre_filter=pre_filter)
        return self._apply(operation, label=label)

    def join(self, other: "ExplainableDataFrame | DataFrame", on: str | Sequence[str],
             how: str = "inner", label: str | None = None) -> "ExplainableDataFrame":
        """Apply a join with another (explainable) dataframe and record the step."""
        right = other.frame if isinstance(other, ExplainableDataFrame) else other
        operation = Join(on=on, how=how)
        step = ExploratoryStep([self._frame, right], operation, label=label)
        return self._derive(step)

    def union(self, other: "ExplainableDataFrame | DataFrame",
              label: str | None = None) -> "ExplainableDataFrame":
        """Apply a union with another (explainable) dataframe and record the step."""
        right = other.frame if isinstance(other, ExplainableDataFrame) else other
        operation = Union(n_inputs=2)
        step = ExploratoryStep([self._frame, right], operation, label=label)
        return self._derive(step)

    # ------------------------------------------------------------- explanation
    def explain(self, step_index: int = -1, config: FedexConfig | None = None,
                measure: str | None = None,
                target_columns: Sequence[str] | None = None) -> ExplanationReport:
        """Explain a recorded exploratory step (the last one by default)."""
        if not self._history:
            raise ExplanationError(
                "no exploratory step has been recorded yet; apply an operation first"
            )
        step = self._history[step_index]
        effective_config = config or self._config
        if target_columns is not None:
            effective_config = effective_config.restricted_to(target_columns)
        if self._session is not None:
            return self._session.explain(step, measure=measure, config=effective_config)
        return self._explainers.for_config(effective_config).explain(step, measure=measure)

    def explain_text(self, step_index: int = -1, width: int = 40, **kwargs) -> str:
        """Shorthand: explanations of a recorded step rendered as text."""
        return self.explain(step_index=step_index, **kwargs).render_text(width=width)

    # ---------------------------------------------------------------- internals
    def _apply(self, operation, label: str | None) -> "ExplainableDataFrame":
        step = ExploratoryStep([self._frame], operation, label=label)
        return self._derive(step)

    def _derive(self, step: ExploratoryStep) -> "ExplainableDataFrame":
        """A new wrapper extending this one's history, sharing session and engines."""
        return ExplainableDataFrame(
            step.output, self._history + [step], config=self._config,
            session=self._session, _explainers=self._explainers,
        )


def explain_dataframe(frame: DataFrame, config: FedexConfig | None = None) -> ExplainableDataFrame:
    """Wrap a plain dataframe for one-line explanations."""
    return ExplainableDataFrame(frame, config=config)
