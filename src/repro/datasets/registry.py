"""Dataset registry: look datasets up by the names the workloads use.

The registry decouples the workload definitions ("query 6 runs on the
``spotify`` table") from dataset materialisation, and lets experiments swap
in smaller instances of the same datasets for fast sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..dataframe.frame import DataFrame
from ..errors import DatasetError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage imports io)
    from ..storage.store import DatasetStore
from .credit import FULL_CREDIT_ROWS, load_credit
from .products import (
    FULL_PRODUCTS_ROWS,
    FULL_SALES_ROWS,
    load_counties,
    load_products,
    load_products_sales_view,
    load_sales,
    load_stores,
)
from .spotify import FULL_SPOTIFY_ROWS, load_spotify

#: Logical dataset names used throughout workloads and experiments.
DATASET_SPOTIFY = "spotify"
DATASET_BANK = "bank"
DATASET_PRODUCTS = "products"


class DatasetRegistry:
    """Caches dataset tables by name so repeated experiments reuse one build.

    Parameters
    ----------
    spotify_rows / bank_rows / sales_rows:
        Sizes of the generated tables.  The defaults are experiment-friendly
        reductions; pass the ``FULL_*_ROWS`` constants for paper-scale data.
    seed:
        Base seed; each table derives its own seed from it.
    store:
        Optional :class:`~repro.storage.store.DatasetStore` (or a path to
        create one at).  Tables are then persisted in the columnar format
        under a name encoding their size/seed identity, and every later
        build of the same table — in this process or the next — opens the
        stored mmap-backed frame instead of regenerating the data.
    """

    def __init__(self, spotify_rows: int = 40_000, bank_rows: int = FULL_CREDIT_ROWS,
                 sales_rows: int = 120_000, products_rows: int = FULL_PRODUCTS_ROWS,
                 seed: int = 0, store: "DatasetStore | str | None" = None) -> None:
        self.spotify_rows = spotify_rows
        self.bank_rows = bank_rows
        self.sales_rows = sales_rows
        self.products_rows = products_rows
        self.seed = seed
        if isinstance(store, str) or hasattr(store, "__fspath__"):
            from ..storage.store import DatasetStore

            store = DatasetStore(store)
        self.store: "Optional[DatasetStore]" = store
        self._cache: Dict[str, DataFrame] = {}
        # Names overridden via register(): those are served from their
        # builder, never from the store — a registered frame has no
        # (sizes, seed) identity a store key could safely encode.
        self._custom: set = set()
        self._builders: Dict[str, Callable[[], DataFrame]] = {
            "spotify": lambda: load_spotify(self.spotify_rows, seed=self.seed + 7),
            "bank": lambda: load_credit(self.bank_rows, seed=self.seed + 11),
            "products": lambda: load_products(self.products_rows, seed=self.seed + 23),
            "sales": lambda: load_sales(
                self.sales_rows, products=self.table("products"), seed=self.seed + 29
            ),
            "counties": lambda: load_counties(seed=self.seed + 31),
            "stores": lambda: load_stores(seed=self.seed + 37),
            "products_sales": lambda: load_products_sales_view(
                n_sales=self.sales_rows, seed=self.seed + 29, n_products=self.products_rows
            ),
        }

    def table(self, name: str) -> DataFrame:
        """The table registered under ``name`` (built lazily, then cached).

        With a :attr:`store` attached, a table is generated at most once per
        store: later requests (including ones from a fresh process) open
        the persisted columnar dataset as an mmap-backed frame.
        """
        key = name.lower()
        if key not in self._builders:
            raise DatasetError(
                f"unknown table {name!r}; available: {sorted(self._builders)}"
            )
        if key not in self._cache:
            self._cache[key] = self._materialize(key)
        return self._cache[key]

    def _materialize(self, key: str) -> DataFrame:
        if self.store is None or key in self._custom:
            return self._builders[key]()
        store_key = self._store_key(key)
        if not self.store.contains(store_key):
            self.store.put(store_key, self._builders[key]())
        return self.store.open(store_key)

    def _store_key(self, key: str) -> str:
        """Store name pinning the table's full build identity (sizes + seed)."""
        sizes = {
            "spotify": (self.spotify_rows,),
            "bank": (self.bank_rows,),
            "products": (self.products_rows,),
            "sales": (self.sales_rows, self.products_rows),
            "products_sales": (self.sales_rows, self.products_rows),
            "counties": (),
            "stores": (),
        }.get(key, ())
        suffix = "".join(f".r{count}" for count in sizes)
        return f"{key}{suffix}.s{self.seed}"

    def register(self, name: str, frame: DataFrame) -> None:
        """Register (or replace) a table under a custom name.

        Registered tables are always served as given — a registry store
        never shadows them with (or persists them as) generated datasets.
        """
        self._cache[name.lower()] = frame
        self._builders[name.lower()] = lambda: frame
        self._custom.add(name.lower())

    def table_names(self) -> List[str]:
        """Names of all registered tables."""
        return sorted(self._builders)

    def clear(self) -> None:
        """Drop all cached tables (frees memory between experiments)."""
        self._cache.clear()


def small_registry(seed: int = 0) -> DatasetRegistry:
    """A registry with small tables for unit tests and quick examples."""
    return DatasetRegistry(
        spotify_rows=6_000, bank_rows=4_000, sales_rows=20_000, products_rows=2_000, seed=seed
    )


def paper_scale_registry(seed: int = 0) -> DatasetRegistry:
    """A registry with the paper's full dataset sizes (slow to build)."""
    return DatasetRegistry(
        spotify_rows=FULL_SPOTIFY_ROWS,
        bank_rows=FULL_CREDIT_ROWS,
        sales_rows=FULL_SALES_ROWS,
        products_rows=FULL_PRODUCTS_ROWS,
        seed=seed,
    )
