"""Synthetic dataset generators reproducing the paper's three evaluation datasets."""

from .credit import FULL_CREDIT_ROWS, load_credit
from .products import (
    FULL_PRODUCTS_ROWS,
    FULL_SALES_ROWS,
    load_counties,
    load_products,
    load_products_and_sales,
    load_products_sales_view,
    load_sales,
    load_stores,
)
from .registry import (
    DATASET_BANK,
    DATASET_PRODUCTS,
    DATASET_SPOTIFY,
    DatasetRegistry,
    paper_scale_registry,
    small_registry,
)
from .spotify import FULL_SPOTIFY_ROWS, load_spotify

__all__ = [
    "DATASET_BANK",
    "DATASET_PRODUCTS",
    "DATASET_SPOTIFY",
    "DatasetRegistry",
    "FULL_CREDIT_ROWS",
    "FULL_PRODUCTS_ROWS",
    "FULL_SALES_ROWS",
    "FULL_SPOTIFY_ROWS",
    "load_counties",
    "load_credit",
    "load_products",
    "load_products_and_sales",
    "load_products_sales_view",
    "load_sales",
    "load_spotify",
    "load_stores",
    "paper_scale_registry",
    "small_registry",
]
