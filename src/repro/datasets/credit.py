"""Synthetic "Credit Card Customers" (Bank) dataset.

The paper's Credit Card Customers dataset [19] has 10,127 rows and 21 columns
describing bank customers and whether they churned ("Attrited Customer" vs
"Existing Customer").  This generator reproduces the schema used by workload
queries 11–15 and 26–30 and plants the structure the paper's second user
study revolves around (why do customers leave?):

* churned customers have fewer transactions, lower transaction amounts, more
  inactive months, and a larger drop in Q4-vs-Q1 activity,
* income categories and card categories are skewed categorical columns,
* ``Credit_Used`` (revolving balance / utilisation) is right-skewed.
"""

from __future__ import annotations

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..errors import DatasetError

#: Row count of the real Kaggle dataset.
FULL_CREDIT_ROWS = 10_127

_INCOME_CATEGORIES = [
    "Less than $40K", "$40K - $60K", "$60K - $80K", "$80K - $120K", "$120K +", "Unknown",
]
_INCOME_WEIGHTS = [0.35, 0.18, 0.14, 0.15, 0.07, 0.11]
_EDUCATION_LEVELS = [
    "High School", "Graduate", "Uneducated", "College", "Post-Graduate", "Doctorate", "Unknown",
]
_EDUCATION_WEIGHTS = [0.20, 0.31, 0.15, 0.10, 0.05, 0.04, 0.15]
_MARITAL_STATUSES = ["Married", "Single", "Divorced", "Unknown"]
_MARITAL_WEIGHTS = [0.46, 0.39, 0.07, 0.08]
_CARD_CATEGORIES = ["Blue", "Silver", "Gold", "Platinum"]
_CARD_WEIGHTS = [0.93, 0.055, 0.011, 0.004]


def load_credit(n_rows: int = FULL_CREDIT_ROWS, seed: int = 11, churn_rate: float = 0.16) -> DataFrame:
    """Generate the synthetic Credit Card Customers dataframe.

    Parameters
    ----------
    n_rows:
        Number of customers; defaults to the real dataset's size.
    seed:
        Seed of the generator.
    churn_rate:
        Fraction of attrited customers (the real dataset has ~16%).
    """
    if n_rows <= 0:
        raise DatasetError(f"n_rows must be positive, got {n_rows}")
    if not 0.0 < churn_rate < 1.0:
        raise DatasetError(f"churn_rate must be in (0, 1), got {churn_rate}")
    rng = np.random.default_rng(seed)

    churned = rng.random(n_rows) < churn_rate
    attrition_flag = np.where(churned, "Attrited Customer", "Existing Customer").astype(object)

    customer_age = np.clip(np.round(rng.normal(46.0, 8.0, size=n_rows)), 22, 75)
    gender = np.where(rng.random(n_rows) < 0.53, "F", "M").astype(object)
    dependent_count = rng.integers(0, 6, size=n_rows)
    education = rng.choice(_EDUCATION_LEVELS, size=n_rows, p=_EDUCATION_WEIGHTS).astype(object)
    marital_status = rng.choice(_MARITAL_STATUSES, size=n_rows, p=_MARITAL_WEIGHTS).astype(object)
    income_category = rng.choice(_INCOME_CATEGORIES, size=n_rows, p=_INCOME_WEIGHTS).astype(object)
    card_category = rng.choice(_CARD_CATEGORIES, size=n_rows, p=_CARD_WEIGHTS).astype(object)

    months_on_book = np.clip(np.round(rng.normal(36.0, 8.0, size=n_rows)), 13, 56)
    registered_products = np.clip(
        rng.integers(1, 7, size=n_rows) - churned.astype(int), 1, 6
    )
    # Churners are systematically less active: more inactive months, fewer
    # contacts, larger Q4-vs-Q1 drop, fewer and smaller transactions.
    months_inactive = np.clip(
        rng.poisson(2.0 + 1.4 * churned, size=n_rows), 0, 6
    )
    contacts_count = np.clip(rng.poisson(2.3 + 0.9 * churned, size=n_rows), 0, 6)

    credit_limit = np.round(rng.lognormal(mean=8.9, sigma=0.72, size=n_rows), 0)
    credit_limit = np.clip(credit_limit, 1_400, 35_000)
    credit_used = np.clip(
        rng.beta(1.3, 3.5, size=n_rows) * (1.0 - 0.45 * churned) * credit_limit, 0, None
    )
    total_transactions = np.clip(
        np.round(rng.normal(68.0 - 24.0 * churned, 22.0, size=n_rows)), 10, 140
    )
    total_amount = np.clip(
        rng.lognormal(mean=8.15 - 0.55 * churned, sigma=0.55, size=n_rows), 500, 20_000
    )
    count_change_q4_q1 = np.clip(
        rng.normal(0.72 - 0.22 * churned, 0.22, size=n_rows), 0.0, 3.8
    )
    amount_change_q4_q1 = np.clip(
        rng.normal(0.76 - 0.20 * churned, 0.21, size=n_rows), 0.0, 3.4
    )
    utilisation_ratio = np.clip(credit_used / credit_limit, 0.0, 1.0)

    customer_ids = np.asarray([f"C{100000 + i}" for i in range(n_rows)], dtype=object)

    return DataFrame([
        Column("Customer_ID", customer_ids),
        Column("Attrition_Flag", attrition_flag),
        Column("Customer_Age", customer_age.astype(float)),
        Column("Gender", gender),
        Column("Dependent_Count", dependent_count.astype(float)),
        Column("Education_Level", education),
        Column("Marital_Status", marital_status),
        Column("Income_Category", income_category),
        Column("Card_Category", card_category),
        Column("Months_On_Book", months_on_book.astype(float)),
        Column("Registered_Products_Count", registered_products.astype(float)),
        Column("Months_Inactive_Count_Last_Year", months_inactive.astype(float)),
        Column("Contacts_Count_Last_Year", contacts_count.astype(float)),
        Column("Credit_Limit", credit_limit.astype(float)),
        Column("Credit_Used", np.round(credit_used, 1)),
        Column("Utilisation_Ratio", np.round(utilisation_ratio, 3)),
        Column("Total_Transitions_Amount", np.round(total_amount, 1)),
        Column("Total_Transactions_Count", total_transactions.astype(float)),
        Column("Total_Count_Change_Q4_vs_Q1", np.round(count_change_q4_q1, 3)),
        Column("Total_Amount_Change_Q4_vs_Q1", np.round(amount_change_q4_q1, 3)),
        Column("Avg_Open_To_Buy", np.round(np.clip(credit_limit - credit_used, 0, None), 1)),
    ])
