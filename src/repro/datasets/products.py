"""Synthetic "Products and Sales" dataset (Iowa liquor-style sales).

The paper's Products and Sales dataset [55] consists of a Products table
(9,977 rows × 16 columns) describing beverage products and a Sales table
(3,049,913 rows × 17 columns) recording individual sales in a store chain;
the evaluation joins them into a single view and — for the scalability
experiment — pads the view to 10M rows with uniformly sampled duplicates.

The generator reproduces:

* the two-table structure with ``item`` as the join key (many-to-one from
  sales to products),
* additional many-to-one relations (item → vendor / category, store →
  county) that the many-to-one partitioner can mine,
* extreme skew in sales totals and pack sizes (the paper reports a top
  Fisher–Pearson coefficient of ~206 for this dataset),
* the prefixed join view (``products_*`` / ``sales_*`` column names) the
  workload queries of Appendix A refer to.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..errors import DatasetError

#: Row counts of the real dataset.
FULL_PRODUCTS_ROWS = 9_977
FULL_SALES_ROWS = 3_049_913

_CATEGORIES = [
    "vodka", "whiskey", "rum", "tequila", "gin", "brandy", "liqueur", "schnapps",
    "scotch", "bourbon", "wine", "beer",
]
_COUNTY_COUNT = 99
_STORE_COUNT = 1_400
_VENDOR_COUNT = 260
_PACKS = np.asarray([1, 6, 12, 24, 48])
_PACK_WEIGHTS = np.asarray([0.08, 0.37, 0.40, 0.12, 0.03])
_BOTTLE_SIZES = np.asarray([50, 200, 375, 500, 750, 1000, 1750])
_BOTTLE_WEIGHTS = np.asarray([0.04, 0.07, 0.16, 0.11, 0.38, 0.14, 0.10])


def load_products(n_rows: int = FULL_PRODUCTS_ROWS, seed: int = 23) -> DataFrame:
    """Generate the Products table."""
    if n_rows <= 0:
        raise DatasetError(f"n_rows must be positive, got {n_rows}")
    rng = np.random.default_rng(seed)

    item = np.arange(10_000, 10_000 + n_rows)
    vendor_ids = rng.zipf(1.35, size=n_rows) % _VENDOR_COUNT
    category_ids = rng.integers(0, len(_CATEGORIES), size=n_rows)
    pack = rng.choice(_PACKS, size=n_rows, p=_PACK_WEIGHTS)
    inner_pack = np.where(pack >= 12, pack // 2, 1)
    bottle_size = rng.choice(_BOTTLE_SIZES, size=n_rows, p=_BOTTLE_WEIGHTS)
    liter_size = bottle_size / 1000.0
    bottle_cost = np.round(np.clip(rng.lognormal(2.1, 0.6, size=n_rows), 1.0, 400.0), 2)
    bottle_retail = np.round(bottle_cost * rng.uniform(1.4, 1.6, size=n_rows), 2)
    proof = np.clip(np.round(rng.normal(78.0, 18.0, size=n_rows)), 0, 190)
    upc = rng.integers(10**11, 10**12, size=n_rows)
    age_years = np.clip(rng.poisson(1.6, size=n_rows), 0, 25)

    vendors = np.asarray([f"vendor_{v:03d}" for v in vendor_ids], dtype=object)
    categories = np.asarray([_CATEGORIES[c] for c in category_ids], dtype=object)
    names = np.asarray(
        [f"{_CATEGORIES[c]}_product_{i:05d}" for i, c in enumerate(category_ids)], dtype=object
    )
    descriptions = np.asarray(
        [f"{int(b)}ml pack of {int(p)}" for b, p in zip(bottle_size, pack)], dtype=object
    )

    return DataFrame([
        Column("item", item.astype(float)),
        Column("name", names),
        Column("description", descriptions),
        Column("vendor", vendors),
        Column("vendor_id", vendor_ids.astype(float)),
        Column("category_name", categories),
        Column("pack", pack.astype(float)),
        Column("inner_pack", inner_pack.astype(float)),
        Column("bottle_size", bottle_size.astype(float)),
        Column("liter_size", liter_size),
        Column("bottle_cost", bottle_cost),
        Column("bottle_retail", bottle_retail),
        Column("proof", proof.astype(float)),
        Column("upc", upc.astype(float)),
        Column("age_years", age_years.astype(float)),
        Column("list_date_year", rng.integers(1995, 2019, size=n_rows).astype(float)),
    ])


def load_sales(n_rows: int = 200_000, products: DataFrame | None = None, seed: int = 29) -> DataFrame:
    """Generate the Sales table.

    ``n_rows`` defaults to 200K (not the full 3M) so that examples and tests
    stay fast; pass ``FULL_SALES_ROWS`` for the paper-scale table.  Each sale
    references an ``item`` from the Products table (popular items follow a
    Zipf distribution, so the join is heavily skewed).
    """
    if n_rows <= 0:
        raise DatasetError(f"n_rows must be positive, got {n_rows}")
    products = products if products is not None else load_products(seed=seed)
    rng = np.random.default_rng(seed)

    n_products = products.num_rows
    product_positions = rng.zipf(1.25, size=n_rows) % n_products
    item = products["item"].to_float()[product_positions]
    pack = products["pack"].to_float()[product_positions]
    liter_size = products["liter_size"].to_float()[product_positions]
    retail = products["bottle_retail"].to_float()[product_positions]
    category = np.asarray(products["category_name"].tolist(), dtype=object)[product_positions]
    vendor = np.asarray(products["vendor"].tolist(), dtype=object)[product_positions]

    store_ids = rng.zipf(1.4, size=n_rows) % _STORE_COUNT
    county_ids = store_ids % _COUNTY_COUNT
    stores = np.asarray([f"store_{s:04d}" for s in store_ids], dtype=object)
    counties = np.asarray([f"county_{c:02d}" for c in county_ids], dtype=object)

    year = rng.integers(2012, 2019, size=n_rows)
    month = rng.integers(1, 13, size=n_rows)
    day = rng.integers(1, 29, size=n_rows)
    dates = np.asarray(
        [f"{y}-{m:02d}-{d:02d}" for y, m, d in zip(year, month, day)], dtype=object
    )

    bottle_quantity = np.clip(rng.zipf(1.9, size=n_rows), 1, 600).astype(float)
    quantity = bottle_quantity * pack
    total = np.round(bottle_quantity * retail, 2)
    volume_liters = np.round(bottle_quantity * liter_size, 3)
    sale_liter_size = liter_size * 1000.0

    return DataFrame([
        Column("sale_id", np.arange(n_rows).astype(float)),
        Column("item", item),
        Column("store", stores),
        Column("store_id", store_ids.astype(float)),
        Column("county", counties),
        Column("county_id", county_ids.astype(float)),
        Column("date", dates),
        Column("year", year.astype(float)),
        Column("month", month.astype(float)),
        Column("vendor", vendor),
        Column("category_name", category),
        Column("pack", pack),
        Column("liter_size", sale_liter_size),
        Column("bottle_quantity", bottle_quantity),
        Column("quantity", quantity),
        Column("total", total),
        Column("volume_liters", volume_liters),
    ])


def load_counties(seed: int = 31) -> DataFrame:
    """Generate the small Counties dimension table (used by join query 2)."""
    rng = np.random.default_rng(seed)
    county_ids = np.arange(_COUNTY_COUNT)
    counties = np.asarray([f"county_{c:02d}" for c in county_ids], dtype=object)
    population = np.round(rng.lognormal(10.2, 0.9, size=_COUNTY_COUNT), 0)
    region = np.asarray(
        [["north", "south", "east", "west"][c % 4] for c in county_ids], dtype=object
    )
    return DataFrame([
        Column("county", counties),
        Column("county_id", county_ids.astype(float)),
        Column("population", population.astype(float)),
        Column("region", region),
    ])


def load_stores(seed: int = 37) -> DataFrame:
    """Generate the small Stores dimension table (used by join query 3)."""
    rng = np.random.default_rng(seed)
    store_ids = np.arange(_STORE_COUNT)
    stores = np.asarray([f"store_{s:04d}" for s in store_ids], dtype=object)
    counties = np.asarray([f"county_{s % _COUNTY_COUNT:02d}" for s in store_ids], dtype=object)
    square_feet = np.round(rng.lognormal(7.6, 0.5, size=_STORE_COUNT), 0)
    return DataFrame([
        Column("store", stores),
        Column("store_id", store_ids.astype(float)),
        Column("county", counties),
        Column("square_feet", square_feet.astype(float)),
    ])


def load_products_sales_view(n_sales: int = 200_000, seed: int = 29,
                             n_products: int = FULL_PRODUCTS_ROWS) -> DataFrame:
    """The joined Products ⋈ Sales view with prefixed column names.

    The paper's Appendix-A queries reference the join view with column names
    like ``sales_total``, ``sales_pack``, ``products_bottle_size``; this
    helper materialises exactly that view.
    """
    products, sales = load_products_and_sales(n_sales=n_sales, seed=seed, n_products=n_products)
    prefixed_products = products.rename(
        {name: f"products_{name}" for name in products.column_names if name != "item"}
    )
    prefixed_sales = sales.rename(
        {name: f"sales_{name}" for name in sales.column_names if name != "item"}
    )
    return prefixed_sales.join(prefixed_products, on="item", how="inner")


def load_products_and_sales(n_sales: int = 200_000, seed: int = 29,
                            n_products: int = FULL_PRODUCTS_ROWS) -> Tuple[DataFrame, DataFrame]:
    """Both base tables, sharing one product catalogue."""
    products = load_products(n_rows=n_products, seed=seed)
    sales = load_sales(n_rows=n_sales, products=products, seed=seed)
    return products, sales
