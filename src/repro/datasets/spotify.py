"""Synthetic Spotify "Song Popularity" dataset.

The paper's Spotify dataset [20] has 174,389 rows and 20 columns mixing audio
features, song metadata, and a popularity score.  The Kaggle file is not
available offline, so this generator produces a synthetic dataset with the
same schema (every column referenced by workload queries 6–10 and 21–25
exists), the same scale, and — crucially for the evaluation — the same
*structural* properties:

* heavy skew in several columns (instrumentalness, speechiness, liveness are
  near-zero for most songs with a long right tail; the paper reports a top
  Fisher–Pearson coefficient of ~10),
* a many-to-one relationship year → decade (the running example's partition),
* correlations the running example surfaces: newer songs are more popular and
  louder, songs from the 1990s are comparatively quiet, recent songs are more
  danceable.
"""

from __future__ import annotations

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..errors import DatasetError

#: Row count of the real Kaggle dataset.
FULL_SPOTIFY_ROWS = 174_389

_KEY_NAMES = ["C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"]
_GENRES = [
    "pop", "rock", "hip hop", "electronic", "jazz", "classical", "country",
    "latin", "metal", "folk", "r&b", "reggae",
]
_ARTIST_COUNT = 4_000


def load_spotify(n_rows: int = FULL_SPOTIFY_ROWS, seed: int = 7) -> DataFrame:
    """Generate the synthetic Spotify dataframe.

    Parameters
    ----------
    n_rows:
        Number of songs; defaults to the real dataset's size.
    seed:
        Seed of the generator (datasets are fully deterministic given the seed).
    """
    if n_rows <= 0:
        raise DatasetError(f"n_rows must be positive, got {n_rows}")
    rng = np.random.default_rng(seed)

    # Release year: the bulk of the catalogue is older material — in the real
    # dataset songs from the 2010s are only ~3.5% of the rows (Figure 2a), and
    # that scarcity is what makes the running example's explanation work.
    year = 1920 + (101.0 * rng.beta(2.4, 1.9, size=n_rows))
    year = np.clip(np.floor(year), 1920, 2021).astype(int)
    decade = (year // 10) * 10
    age = 2021 - year

    # Popularity: a gentle upward trend over the years plus a marked boost for
    # songs from the 2010s onward.  This reproduces the running example's
    # structure: the popular subset (popularity > 65) is dominated by 2010s
    # songs even though they are a small share of the catalogue, while songs
    # from every other decade still appear in it.
    popularity = (
        46.0 + 0.06 * (year - 1920) + 16.0 * (decade >= 2010)
        + rng.normal(0.0, 10.0, size=n_rows)
    )
    popularity = np.clip(popularity, 0, 100)

    # Loudness (dB): louder over time ("loudness war"), with the 1990s sitting
    # below the later decades; danceability also trends up slightly.
    loudness = -14.0 + 0.09 * (year - 1960) + rng.normal(0.0, 2.5, size=n_rows)
    loudness = np.clip(loudness, -40.0, 0.0)
    danceability = np.clip(0.45 + 0.0022 * (year - 1960) + rng.normal(0.0, 0.12, size=n_rows), 0, 1)
    energy = np.clip(0.35 + 0.004 * (year - 1960) + rng.normal(0.0, 0.18, size=n_rows), 0, 1)
    valence = np.clip(rng.beta(2.2, 2.0, size=n_rows), 0, 1)
    acousticness = np.clip(1.0 - energy + rng.normal(0.0, 0.15, size=n_rows), 0, 1)

    # Heavily skewed audio features (long right tails near zero).
    instrumentalness = np.where(
        rng.random(n_rows) < 0.82, rng.beta(0.4, 18.0, size=n_rows), rng.beta(4.0, 1.5, size=n_rows)
    )
    speechiness = rng.beta(0.8, 14.0, size=n_rows)
    liveness = rng.beta(1.2, 9.0, size=n_rows)

    duration_minutes = np.clip(rng.lognormal(mean=1.25, sigma=0.28, size=n_rows), 0.5, 20.0)
    tempo = np.clip(rng.normal(119.0, 29.0, size=n_rows), 40.0, 230.0)
    key = rng.integers(0, 12, size=n_rows)
    mode = (rng.random(n_rows) < 0.64).astype(int)
    explicit = (rng.random(n_rows) < 0.08 + 0.15 * (year >= 2000)).astype(int)

    artist_ids = rng.zipf(1.6, size=n_rows) % _ARTIST_COUNT
    artist_popularity = np.clip(
        35 + 40 * np.exp(-artist_ids / 400.0) + rng.normal(0, 8, size=n_rows), 0, 100
    )

    decade_labels = np.asarray([f"{d}s" for d in decade], dtype=object)
    key_names = np.asarray([_KEY_NAMES[k] for k in key], dtype=object)
    genres = np.asarray([_GENRES[g % len(_GENRES)] for g in (artist_ids % len(_GENRES))], dtype=object)
    artists = np.asarray([f"artist_{a:04d}" for a in artist_ids], dtype=object)
    names = np.asarray([f"song_{i:06d}" for i in range(n_rows)], dtype=object)

    return DataFrame([
        Column("name", names),
        Column("main_artist", artists),
        Column("genre", genres),
        Column("year", year.astype(float)),
        Column("decade", decade_labels),
        Column("popularity", np.round(popularity).astype(float)),
        Column("artist_popularity", np.round(artist_popularity).astype(float)),
        Column("danceability", danceability),
        Column("energy", energy),
        Column("loudness", loudness),
        Column("acousticness", acousticness),
        Column("instrumentalness", instrumentalness),
        Column("speechiness", speechiness),
        Column("liveness", liveness),
        Column("valence", valence),
        Column("tempo", tempo),
        Column("duration_minutes", duration_minutes),
        Column("key", key_names),
        Column("mode", mode.astype(float)),
        Column("explicit", explicit.astype(float)),
    ])
