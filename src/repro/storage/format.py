"""The on-disk columnar dataset format.

A *dataset* is a directory::

    <name>/
        manifest.json      schema + chunk geometry + footer statistics +
                           persisted fingerprints (versioned, magic-tagged)
        c0.bin, c1.bin …   one binary buffer per column: a 16-byte header
                           (8-byte magic + little-endian uint32 version +
                           4 reserved bytes) followed by the raw values

Columns are stored in one of two encodings:

* ``raw`` — numeric / boolean columns: the values as one contiguous
  little-endian buffer in their original dtype (float64/int64/bool).  The
  buffer is memory-mappable: opening the dataset maps it read-only and no
  byte is read until a computation touches it.
* ``dict`` — categorical (object) columns: ``int64`` dictionary codes in
  the binary file (``-1`` = missing) plus the dictionary itself in the
  manifest as UTF-8 JSON.  Dictionary entries are *typed* (``["s", …]`` /
  ``["i", …]`` / ``["f", …]`` / ``["b", …]``) so non-string values survive
  the round trip exactly; non-finite floats are spelled out ("nan",
  "inf", "-inf").  When the dictionary happens to be the column's sorted
  factorization (every value a string — the common case), the reader seeds
  :meth:`Column.factorize` straight from the persisted codes.

Rows are split into fixed-size *chunks* (:data:`DEFAULT_CHUNK_ROWS`); the
manifest carries per-chunk footer statistics — row/null counts, a distinct
estimate, min/max (values for ``raw`` columns, dictionary codes for
``dict`` columns) and a blake2b fingerprint of the chunk's bytes — which
:mod:`repro.storage.scan` uses to prune whole chunks from filter
evaluation.  Each column additionally records the full
:meth:`Column.fingerprint` computed at write time; because the mapped
buffers are read-only, the reader hands that persisted fingerprint back
without ever re-hashing the values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import StorageError

#: Magic tag of every binary column file (8 bytes).
MAGIC = b"RPRDSET1"

#: Version of the format written by this code.
FORMAT_VERSION = 1

#: Size of the binary file header: magic (8) + version (4, LE) + reserved (4).
HEADER_SIZE = 16

#: Default number of rows per chunk.
DEFAULT_CHUNK_ROWS = 65_536

#: Column encodings.
ENCODING_RAW = "raw"
ENCODING_DICT = "dict"

#: File name of the JSON manifest inside a dataset directory.
MANIFEST_NAME = "manifest.json"

#: dtype of the dictionary codes of a ``dict``-encoded column.
CODES_DTYPE = "<i8"


def binary_header(version: int = FORMAT_VERSION) -> bytes:
    """The 16-byte header prefixed to every binary column file."""
    return MAGIC + int(version).to_bytes(4, "little") + b"\x00\x00\x00\x00"


def check_binary_header(header: bytes, path) -> int:
    """Validate a binary file header; returns the version it declares."""
    if len(header) < HEADER_SIZE or header[:8] != MAGIC:
        raise StorageError(f"{path} is not a repro.storage column file (bad magic)")
    version = int.from_bytes(header[8:12], "little")
    if version > FORMAT_VERSION:
        raise StorageError(
            f"{path} uses format version {version}, this reader supports <= {FORMAT_VERSION}"
        )
    return version


def chunk_ranges(num_rows: int, chunk_rows: int) -> List[Tuple[int, int]]:
    """The ``[start, stop)`` row ranges of every chunk."""
    if chunk_rows < 1:
        raise StorageError(f"chunk_rows must be positive, got {chunk_rows}")
    return [
        (start, min(start + chunk_rows, num_rows))
        for start in range(0, num_rows, chunk_rows)
    ]


# ------------------------------------------------------------- scalar coding
def encode_scalar(value: Any) -> Optional[list]:
    """Encode one dictionary/stat value as a JSON-safe typed pair."""
    if value is None:
        return None
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        if math.isnan(value):
            return ["f", "nan"]
        if math.isinf(value):
            return ["f", "inf" if value > 0 else "-inf"]
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    raise StorageError(f"cannot encode dictionary value of type {type(value).__name__}")


def decode_scalar(encoded: Optional[list]) -> Any:
    """Inverse of :func:`encode_scalar`."""
    if encoded is None:
        return None
    tag, payload = encoded
    if tag == "s":
        return str(payload)
    if tag == "i":
        return int(payload)
    if tag == "f":
        return float(payload)
    if tag == "b":
        return bool(payload)
    raise StorageError(f"unknown dictionary value tag {tag!r}")


# ----------------------------------------------------------------- manifest
@dataclass
class ChunkStats:
    """Footer statistics of one chunk of one column."""

    rows: int
    nulls: int
    distinct: int
    #: Min/max of the present values (raw) or of the dictionary codes (dict);
    #: ``None`` when the chunk holds no present value.
    min: Any = None
    max: Any = None
    #: blake2b hex digest of the chunk's bytes in the binary file.
    fingerprint: str = ""

    def to_json(self) -> dict:
        return {
            "rows": self.rows, "nulls": self.nulls, "distinct": self.distinct,
            "min": encode_scalar(self.min), "max": encode_scalar(self.max),
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ChunkStats":
        return cls(
            rows=int(payload["rows"]), nulls=int(payload["nulls"]),
            distinct=int(payload["distinct"]),
            min=decode_scalar(payload.get("min")),
            max=decode_scalar(payload.get("max")),
            fingerprint=str(payload.get("fingerprint", "")),
        )


@dataclass
class ColumnMeta:
    """Manifest entry describing one stored column."""

    name: str
    kind: str
    encoding: str
    #: numpy dtype string of the stored buffer ("<f8", "<i8", "|b1", …);
    #: for ``dict`` encoding this is the codes dtype.
    dtype: str
    file: str
    #: Persisted :meth:`Column.fingerprint` of the whole column.
    fingerprint: str
    #: Dictionary of a ``dict``-encoded column (typed scalars, code order).
    dictionary: Optional[List[Any]] = None
    #: True when the dictionary equals ``Column.factorize()``'s uniques
    #: (all strings, sorted) so the reader can seed the factorization cache.
    dictionary_is_factorization: bool = False
    chunks: List[ChunkStats] = field(default_factory=list)

    def to_json(self) -> dict:
        payload = {
            "name": self.name, "kind": self.kind, "encoding": self.encoding,
            "dtype": self.dtype, "file": self.file, "fingerprint": self.fingerprint,
            "chunks": [chunk.to_json() for chunk in self.chunks],
        }
        if self.encoding == ENCODING_DICT:
            payload["dictionary"] = [encode_scalar(v) for v in self.dictionary or []]
            payload["dictionary_is_factorization"] = self.dictionary_is_factorization
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ColumnMeta":
        dictionary = None
        if payload.get("encoding") == ENCODING_DICT:
            dictionary = [decode_scalar(v) for v in payload.get("dictionary", [])]
        return cls(
            name=str(payload["name"]), kind=str(payload["kind"]),
            encoding=str(payload["encoding"]), dtype=str(payload["dtype"]),
            file=str(payload["file"]), fingerprint=str(payload["fingerprint"]),
            dictionary=dictionary,
            dictionary_is_factorization=bool(payload.get("dictionary_is_factorization", False)),
            chunks=[ChunkStats.from_json(chunk) for chunk in payload.get("chunks", [])],
        )


@dataclass
class DatasetManifest:
    """The JSON manifest of one dataset directory."""

    num_rows: int
    chunk_rows: int
    #: Persisted :meth:`DataFrame.fingerprint` of the whole frame.
    fingerprint: str
    columns: List[ColumnMeta] = field(default_factory=list)
    version: int = FORMAT_VERSION

    def to_json(self) -> dict:
        return {
            "magic": MAGIC.decode("ascii"),
            "version": self.version,
            "num_rows": self.num_rows,
            "chunk_rows": self.chunk_rows,
            "fingerprint": self.fingerprint,
            "columns": [column.to_json() for column in self.columns],
        }

    @classmethod
    def from_json(cls, payload: dict, path) -> "DatasetManifest":
        if payload.get("magic") != MAGIC.decode("ascii"):
            raise StorageError(f"{path} is not a repro.storage manifest (bad magic)")
        version = int(payload.get("version", 0))
        if version > FORMAT_VERSION:
            raise StorageError(
                f"{path} uses format version {version}, this reader supports <= {FORMAT_VERSION}"
            )
        return cls(
            num_rows=int(payload["num_rows"]),
            chunk_rows=int(payload["chunk_rows"]),
            fingerprint=str(payload["fingerprint"]),
            columns=[ColumnMeta.from_json(column) for column in payload.get("columns", [])],
            version=version,
        )

    def column(self, name: str) -> ColumnMeta:
        for meta in self.columns:
            if meta.name == name:
                return meta
        raise StorageError(f"dataset has no column {name!r}")

    def chunk_ranges(self) -> List[Tuple[int, int]]:
        return chunk_ranges(self.num_rows, self.chunk_rows)

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_ranges())


#: Per-column metadata index type used by readers.
ColumnIndex = Dict[str, ColumnMeta]
