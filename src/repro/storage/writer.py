"""Writing dataframes into the on-disk columnar dataset format.

:func:`write_dataset` lays a :class:`~repro.dataframe.frame.DataFrame`
out as a dataset directory (see :mod:`repro.storage.format`): numeric and
boolean columns as raw little-endian buffers, categorical columns as
``int64`` dictionary codes plus a typed UTF-8 dictionary in the manifest,
per-chunk footer statistics, and the content fingerprints — per chunk, per
column, and for the whole frame — that make warm re-opens and warm
re-fingerprints free.

:func:`csv_to_dataset` is the one-shot CSV → dataset converter.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..dataframe.io import read_csv
from ..errors import StorageError
from .format import (
    CODES_DTYPE,
    DEFAULT_CHUNK_ROWS,
    ENCODING_DICT,
    ENCODING_RAW,
    MANIFEST_NAME,
    ChunkStats,
    ColumnMeta,
    DatasetManifest,
    binary_header,
    chunk_ranges,
)


def write_dataset(frame: DataFrame, path: str | Path,
                  chunk_rows: int = DEFAULT_CHUNK_ROWS,
                  overwrite: bool = False) -> Path:
    """Write ``frame`` as a dataset directory at ``path`` and return it.

    The write is atomic at the directory level: everything is staged into a
    sibling temporary directory first and moved into place last, so a
    crashed write never leaves a half-readable dataset behind.  The staging
    directory is unique per writer (pid + random suffix), so even two
    unlocked writers racing on one path can never interleave files — each
    completes its own staging and the last rename wins whole.
    """
    path = Path(path)
    if path.exists():
        if not overwrite:
            raise StorageError(f"dataset directory already exists: {path}")
    ranges = chunk_ranges(frame.num_rows, chunk_rows)

    _sweep_stale_staging(path)
    staging = path.parent / f".{path.name}.staging-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    staging.mkdir(parents=True)
    try:
        columns: List[ColumnMeta] = []
        for index, column in enumerate(frame.columns()):
            file_name = f"c{index}.bin"
            meta, buffer = _encode_column(column, file_name, ranges)
            _write_buffer(staging / file_name, buffer)
            columns.append(meta)
        manifest = DatasetManifest(
            num_rows=frame.num_rows, chunk_rows=chunk_rows,
            fingerprint=frame.fingerprint(), columns=columns,
        )
        with (staging / MANIFEST_NAME).open("w", encoding="utf-8") as handle:
            json.dump(manifest.to_json(), handle)
        if path.exists():
            shutil.rmtree(path)
        staging.replace(path)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return path


def csv_to_dataset(csv_path: str | Path, dataset_path: str | Path,
                   chunk_rows: int = DEFAULT_CHUNK_ROWS,
                   overwrite: bool = False, **read_csv_kwargs) -> Path:
    """One-shot CSV → columnar dataset conversion.

    Loads the CSV through the vectorised :func:`repro.dataframe.read_csv`
    (keyword arguments — ``delimiter``, ``numeric_columns``, ``max_rows`` —
    pass straight through) and writes the result with :func:`write_dataset`.
    """
    frame = read_csv(csv_path, **read_csv_kwargs)
    return write_dataset(frame, dataset_path, chunk_rows=chunk_rows, overwrite=overwrite)


#: A staging directory older than this is an orphan of a hard-crashed
#: writer (live writes finish in seconds-to-minutes) and is reclaimed by
#: the next write of the same dataset path.
STAGING_ORPHAN_AGE = 3600.0


def _sweep_stale_staging(path: Path) -> None:
    """Reclaim orphaned staging directories of ``path``.

    Staging names are unique per writer, so a crashed (SIGKILLed) writer's
    ``except`` cleanup never ran and its full staged copy would otherwise
    leak forever.  Only directories older than :data:`STAGING_ORPHAN_AGE`
    are removed — a *live* concurrent writer's staging is never touched.
    """
    now = time.time()
    for orphan in path.parent.glob(f".{path.name}.staging*"):
        try:
            if now - orphan.stat().st_mtime > STAGING_ORPHAN_AGE:
                shutil.rmtree(orphan, ignore_errors=True)
        except OSError:
            continue


# ------------------------------------------------------------------ internals
def _write_buffer(path: Path, array: np.ndarray) -> None:
    with path.open("wb") as handle:
        handle.write(binary_header())
        handle.write(np.ascontiguousarray(array).tobytes())


def _encode_column(column: Column, file_name: str,
                   ranges: Sequence[Tuple[int, int]]) -> Tuple[ColumnMeta, np.ndarray]:
    values = column.values
    if values.dtype.kind in "OUS":
        return _encode_dict_column(column, file_name, ranges)
    return _encode_raw_column(column, file_name, ranges)


def _encode_raw_column(column: Column, file_name: str,
                       ranges: Sequence[Tuple[int, int]]) -> Tuple[ColumnMeta, np.ndarray]:
    array = np.ascontiguousarray(column.values)
    if array.dtype.byteorder == ">":
        array = array.astype(array.dtype.newbyteorder("<"))
    is_float = array.dtype.kind == "f"
    chunks = []
    for start, stop in ranges:
        piece = array[start:stop]
        if is_float:
            null_mask = np.isnan(piece)
            present = piece[~null_mask]
            nulls = int(null_mask.sum())
        else:
            present = piece
            nulls = 0
        chunks.append(ChunkStats(
            rows=stop - start, nulls=nulls,
            distinct=int(np.unique(present).size),
            min=present.min().item() if present.size else None,
            max=present.max().item() if present.size else None,
            fingerprint=_chunk_digest(piece.tobytes()),
        ))
    meta = ColumnMeta(
        name=column.name, kind=column.kind, encoding=ENCODING_RAW,
        dtype=array.dtype.str, file=file_name,
        fingerprint=column.fingerprint(), chunks=chunks,
    )
    return meta, array


def _encode_dict_column(column: Column, file_name: str,
                        ranges: Sequence[Tuple[int, int]]) -> Tuple[ColumnMeta, np.ndarray]:
    codes, dictionary, is_factorization = _dictionary_encode(column)
    chunks = []
    for start, stop in ranges:
        piece = codes[start:stop]
        present = piece[piece >= 0]
        chunks.append(ChunkStats(
            rows=stop - start, nulls=int((piece < 0).sum()),
            distinct=int(np.unique(present).size),
            min=int(present.min()) if present.size else None,
            max=int(present.max()) if present.size else None,
            fingerprint=_chunk_digest(piece.tobytes()),
        ))
    meta = ColumnMeta(
        name=column.name, kind=column.kind, encoding=ENCODING_DICT,
        dtype=CODES_DTYPE, file=file_name, fingerprint=column.fingerprint(),
        dictionary=dictionary, dictionary_is_factorization=is_factorization,
        chunks=chunks,
    )
    return meta, codes


def _dictionary_encode(column: Column) -> Tuple[np.ndarray, List, bool]:
    """Codes + dictionary of a categorical column, preserving exact values.

    The fast path reuses :meth:`Column.factorize` — faithful whenever every
    present value is a string (the factorization renders values through
    ``str()``, which is the identity there) and self-describing for the
    reader (the dictionary IS the sorted factorization).  Mixed-type object
    columns fall back to an order-preserving typed dictionary so that e.g.
    ``5`` and ``"5"`` — which factorize to the same string — keep their
    distinct codes and exact types; so do strings with trailing NULs, which
    the factorization's fixed-width unicode rendering would silently strip.
    """
    values = column.values
    null = column.null_mask()
    all_strings = True
    for value in values[~null]:
        if not isinstance(value, str) or value.endswith("\x00"):
            all_strings = False
            break
    if all_strings:
        codes, uniques = column.factorize()
        return np.ascontiguousarray(codes, dtype=np.dtype(CODES_DTYPE)), list(uniques), True

    mapping = {}
    dictionary: List = []
    codes = np.full(len(column), -1, dtype=np.dtype(CODES_DTYPE))
    for index, value in enumerate(values):
        if null[index]:
            continue
        # Keys are (type, value) so 1, 1.0, True and "1" keep distinct
        # codes; floats key by repr so NaN (which is != itself) still
        # deduplicates.
        key = (type(value).__name__, repr(value) if isinstance(value, float) else value)
        code = mapping.get(key)
        if code is None:
            code = len(dictionary)
            mapping[key] = code
            dictionary.append(value)
        codes[index] = code
    return codes, dictionary, False


def _chunk_digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()
