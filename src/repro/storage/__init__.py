"""Chunked columnar dataset storage with mmap-backed frames.

The subsystem between raw files and the serving layer::

    from repro.storage import write_dataset, read_dataset, DatasetStore

    write_dataset(frame, "data/spotify")          # chunked columnar layout
    frame = read_dataset("data/spotify")          # mmap-backed, lazy, read-only

    store = DatasetStore("data")                  # named datasets
    store.put("spotify", frame)
    warm = store.open("spotify")                  # shared buffers per process

Highlights:

* **Format** (:mod:`~repro.storage.format`) — fixed-size row chunks, raw
  little-endian numeric buffers, dictionary-encoded categoricals, per-chunk
  footer statistics (min/max/nulls/distinct) and blake2b fingerprints, a
  versioned JSON manifest.
* **Mmap frames** (:mod:`~repro.storage.mmap`) — numeric buffers map
  read-only and categoricals materialise lazily; read-only buffers make the
  persisted per-column fingerprints trustworthy, so
  ``Column.fingerprint()`` on a stored column never re-hashes the values.
* **Scan pushdown** (:mod:`~repro.storage.scan`) — filters prune whole
  chunks via the footer statistics before touching data, bit-identically.
* **Store** (:mod:`~repro.storage.store`) — named datasets served as
  shared mmap frames; the registry and the explanation service build on it.
  ``put`` is safe under concurrent writers: a ``.lock`` file taken with
  ``O_CREAT|O_EXCL`` (with stale-lock takeover) serializes them.
* **Descriptors** (:class:`~repro.storage.reader.FrameDescriptor`) — tiny
  picklable handles (path + manifest version + fingerprint + columns) that
  other *processes* resolve back into mmap frames over the same pages; the
  process-pool contribution backend ships these instead of data.
"""

from .format import DEFAULT_CHUNK_ROWS, FORMAT_VERSION, DatasetManifest
from .mmap import map_buffer
from .reader import (
    Dataset,
    FrameDescriptor,
    frame_from_descriptor,
    open_dataset,
    read_dataset,
    shared_dataset,
)
from .scan import DatasetScan, ScanStats
from .store import DatasetStore
from .structures import StructureStore, structure_store_root
from .writer import csv_to_dataset, write_dataset

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "FORMAT_VERSION",
    "Dataset",
    "DatasetManifest",
    "DatasetScan",
    "DatasetStore",
    "FrameDescriptor",
    "ScanStats",
    "StructureStore",
    "csv_to_dataset",
    "frame_from_descriptor",
    "map_buffer",
    "open_dataset",
    "read_dataset",
    "shared_dataset",
    "structure_store_root",
    "write_dataset",
]
