"""Pool-shared spill store for worker-built intervention structures.

The process backend's workers each warm a private
:class:`~repro.core.backends.process._WorkerStructureCache` — four workers
grouping the same stored frame build the same group-by structure four
times, and a pool replaced after a crash rebuilds everything from nothing.
:class:`StructureStore` promotes those structures to a *pool-shared tier*:
a content-addressed directory of pickled structures, keyed exactly like
the per-worker LRU (frame fingerprints + the operation's declarative
signature), so the first worker to build a structure publishes it and
every other worker — including the workers of a post-crash replacement
pool — loads it instead of rebuilding.

The store is deliberately primitive, in the way that makes it safe between
unsynchronised processes:

* **Content-addressed filenames.**  The key is hashed to the filename, so
  equal keys collide on purpose and different keys never do.  Keys embed
  content fingerprints, so a rewritten dataset keys fresh entries — stale
  reuse is structurally impossible, exactly as in the L1 cache.
* **Atomic publication.**  A structure is pickled to a private temp file
  and ``os.replace``d into place; readers see either nothing or a complete
  entry.  Two workers racing to publish the same key both write the same
  content, and the loser's replace is a harmless overwrite.
* **Corruption is a miss.**  A half-written or unreadable entry is
  unlinked and reported as a miss; the caller rebuilds and republishes.
* **Mtime-LRU pruning.**  Reads freshen the entry's mtime; beyond the byte
  budget (``REPRO_STRUCTURE_BUDGET_BYTES``) the stalest entries are
  unlinked after each publication.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import shutil
import tempfile
import threading
import uuid
from pathlib import Path
from typing import Optional, Tuple

#: Default byte budget of one structure-store directory (256 MiB).
DEFAULT_STRUCTURE_BUDGET_BYTES = 256 * 1024 * 1024

_ROOT_LOCK = threading.Lock()
_ROOT: Optional[Path] = None


def structure_store_root() -> Path:
    """The process-lifetime root directory of the shared structure tier.

    ``REPRO_STRUCTURE_DIR`` overrides (shared across parent processes);
    otherwise a temp directory is created once per parent process and
    removed at exit.  Living on the *parent* is what lets a post-crash
    replacement pool reuse the structures its dead predecessor published.
    """
    override = os.environ.get("REPRO_STRUCTURE_DIR")
    if override:
        root = Path(override)
        root.mkdir(parents=True, exist_ok=True)
        return root
    global _ROOT
    with _ROOT_LOCK:
        if _ROOT is None:
            _ROOT = Path(tempfile.mkdtemp(prefix="repro-structures-"))
            atexit.register(shutil.rmtree, str(_ROOT), ignore_errors=True)
        return _ROOT


class StructureStore:
    """A content-addressed directory of pickled intervention structures."""

    def __init__(self, root, budget_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if budget_bytes is None:
            budget_bytes = int(os.environ.get(
                "REPRO_STRUCTURE_BUDGET_BYTES",
                str(DEFAULT_STRUCTURE_BUDGET_BYTES),
            ))
        self.budget_bytes = budget_bytes

    def _path(self, key: Tuple) -> Path:
        digest = hashlib.blake2b(repr(key).encode("utf-8"),
                                 digest_size=16).hexdigest()
        return self.root / f"{digest}.pkl"

    def get(self, key: Tuple) -> Tuple[bool, object]:
        """``(found, value)`` — the flag disambiguates a stored ``None``.

        A legitimately-``None`` structure (a row mask the operation cannot
        provide) is still worth sharing: it saves every other worker the
        attempt.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except Exception:
            # Half-written, corrupt, or unpicklable here: drop it so the
            # next publisher replaces it with a clean entry.
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        try:
            os.utime(path)  # freshen for the mtime-LRU pruning
        except OSError:
            pass
        return True, value

    def put(self, key: Tuple, value: object) -> bool:
        """Publish a structure; returns False when it cannot be pickled."""
        path = self._path(key)
        tmp = path.with_name(f".{os.getpid()}-{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.prune()
        return True

    def prune(self) -> None:
        """Unlink stalest entries beyond the byte budget (best-effort)."""
        if not self.budget_bytes:
            return
        try:
            entries = []
            total = 0
            for entry in self.root.iterdir():
                if entry.suffix != ".pkl":
                    continue
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, entry))
                total += stat.st_size
            if total <= self.budget_bytes:
                return
            entries.sort()
            for _, size, entry in entries:
                if total <= self.budget_bytes:
                    break
                try:
                    entry.unlink()
                    total -= size
                except OSError:
                    pass
        except OSError:
            pass

    def __len__(self) -> int:
        try:
            return sum(1 for entry in self.root.iterdir()
                       if entry.suffix == ".pkl")
        except OSError:
            return 0
