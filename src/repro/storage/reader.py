"""Opening on-disk datasets as mmap-backed dataframes.

:class:`Dataset` is one opened dataset directory: the parsed manifest, one
read-only memory-mapped buffer per column (mapped lazily, shared by every
frame served), the shared :class:`~repro.dataframe.column.Column` objects,
and the chunk-statistics scan.  :meth:`Dataset.frame` hands out dataframes
that all view the same physical buffers — opening a dataset twice, or
serving it to forty tenants, costs one copy of the data per process (and,
thanks to the page cache, one per machine).

Columns carry their persisted fingerprints (see
:meth:`~repro.dataframe.column.Column.fingerprint`), so warm explains over
a stored dataset never re-hash a stored column, and dictionary-encoded
columns whose dictionary is their factorization get a pre-seeded
:meth:`~repro.dataframe.column.Column.factorize` cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..errors import StorageError
from .format import MANIFEST_NAME, ColumnMeta, DatasetManifest
from .mmap import map_buffer, storage_column
from .scan import DatasetScan


class Dataset:
    """One opened dataset directory (mmap-backed, shareable, thread-safe)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(f"no dataset at {self.path} (missing {MANIFEST_NAME})")
        with manifest_path.open("r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise StorageError(f"corrupt manifest at {manifest_path}: {error}") from None
        self.manifest = DatasetManifest.from_json(payload, manifest_path)
        self._buffers: Dict[str, np.ndarray] = {}
        self._columns: Dict[str, Column] = {}
        # Re-entrant: column() maps its buffer while holding the lock.
        self._lock = threading.RLock()
        self.scan = DatasetScan(self)

    # ------------------------------------------------------------------ public
    @property
    def num_rows(self) -> int:
        return self.manifest.num_rows

    @property
    def column_names(self) -> List[str]:
        return [meta.name for meta in self.manifest.columns]

    @property
    def fingerprint(self) -> str:
        """The frame fingerprint persisted at write time."""
        return self.manifest.fingerprint

    def frame(self) -> DataFrame:
        """A dataframe over the shared mapped buffers, scan attached.

        Every call returns a fresh :class:`DataFrame` (frames are cheap
        shells) over the *same* column objects, so structure caches
        (argsorts, factorizations) accumulated by one consumer are shared
        by all.
        """
        frame = DataFrame([self.column(name) for name in self.column_names])
        return frame.attach_scan(self.scan)

    def column(self, name: str) -> Column:
        """The shared full-length column ``name`` (mapped on first request)."""
        column = self._columns.get(name)
        if column is None:
            with self._lock:
                column = self._columns.get(name)
                if column is None:
                    meta = self.manifest.column(name)
                    column = storage_column(meta, self._buffer(meta))
                    self._columns[name] = column
        return column

    def chunk_column(self, name: str, chunk_index: int) -> Column:
        """A column over one chunk's rows only (for pruned scans).

        Chunk columns carry no persisted fingerprint: the manifest's
        per-chunk digests hash raw buffer bytes — a different domain from
        :meth:`Column.fingerprint`, which frames name/kind/dictionary — so
        handing them out would alias content-different columns.
        """
        meta = self.manifest.column(name)
        start, stop = self.manifest.chunk_ranges()[chunk_index]
        return storage_column(meta, self._buffer(meta), start, stop)

    def column_meta(self, name: str) -> Optional[ColumnMeta]:
        """Manifest entry of ``name``, or ``None`` when absent."""
        for meta in self.manifest.columns:
            if meta.name == name:
                return meta
        return None

    def chunk_ranges(self) -> List[Tuple[int, int]]:
        return self.manifest.chunk_ranges()

    def verify(self) -> None:
        """Re-hash every chunk against its persisted fingerprint.

        Raises :class:`StorageError` on the first mismatch — the integrity
        check for operators who suspect on-disk corruption.  Reads every
        byte; not part of any hot path.
        """
        ranges = self.chunk_ranges()
        for meta in self.manifest.columns:
            buffer = self._buffer(meta)
            for index, (start, stop) in enumerate(ranges):
                recorded = meta.chunks[index].fingerprint
                actual = hashlib.blake2b(
                    np.ascontiguousarray(buffer[start:stop]).tobytes(), digest_size=16
                ).hexdigest()
                if recorded and recorded != actual:
                    raise StorageError(
                        f"chunk {index} of column {meta.name!r} does not match its "
                        f"persisted fingerprint (dataset {self.path})"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Dataset({str(self.path)!r}, rows={self.num_rows}, "
                f"columns={len(self.manifest.columns)}, "
                f"chunks={self.manifest.num_chunks})")

    # ---------------------------------------------------------------- internals
    def _buffer(self, meta: ColumnMeta) -> np.ndarray:
        buffer = self._buffers.get(meta.name)
        if buffer is None:
            with self._lock:
                buffer = self._buffers.get(meta.name)
                if buffer is None:
                    buffer = map_buffer(self.path / meta.file, meta.dtype, self.num_rows)
                    self._buffers[meta.name] = buffer
        return buffer


def open_dataset(path: str | Path) -> Dataset:
    """Open a dataset directory; see :class:`Dataset`."""
    return Dataset(path)


def read_dataset(path: str | Path) -> DataFrame:
    """Open a dataset and return its mmap-backed dataframe in one call."""
    return open_dataset(path).frame()
