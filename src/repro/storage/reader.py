"""Opening on-disk datasets as mmap-backed dataframes.

:class:`Dataset` is one opened dataset directory: the parsed manifest, one
read-only memory-mapped buffer per column (mapped lazily, shared by every
frame served), the shared :class:`~repro.dataframe.column.Column` objects,
and the chunk-statistics scan.  :meth:`Dataset.frame` hands out dataframes
that all view the same physical buffers — opening a dataset twice, or
serving it to forty tenants, costs one copy of the data per process (and,
thanks to the page cache, one per machine).

Columns carry their persisted fingerprints (see
:meth:`~repro.dataframe.column.Column.fingerprint`), so warm explains over
a stored dataset never re-hash a stored column, and dictionary-encoded
columns whose dictionary is their factorization get a pre-seeded
:meth:`~repro.dataframe.column.Column.factorize` cache.

:class:`FrameDescriptor` is the *process-crossing* handle of a stored
frame: a tiny picklable value (store path + manifest version + frame
fingerprint + column subset) that another process turns back into an
mmap-backed frame with :func:`frame_from_descriptor` — the kernel pages
are shared, so shipping a descriptor to a worker costs bytes, not a copy
of the data.  :func:`shared_dataset` backs that with one per-process
:class:`Dataset` handle per path, so every descriptor of one dataset
resolves to the same buffers and column structure caches.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..errors import StorageError
from .format import MANIFEST_NAME, ColumnMeta, DatasetManifest
from .mmap import map_buffer, storage_column
from .scan import DatasetScan


@dataclass(frozen=True)
class FrameDescriptor:
    """A cheap, picklable handle to (a column subset of) a stored frame.

    Carries everything a worker process needs to re-open the same data —
    and nothing else: the dataset directory, the manifest format version it
    was described under, the persisted whole-frame fingerprint (so a
    descriptor can never silently resolve against different content), and
    the column names, in frame order.
    """

    path: str
    version: int
    fingerprint: str
    columns: Tuple[str, ...]


class Dataset:
    """One opened dataset directory (mmap-backed, shareable, thread-safe)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(f"no dataset at {self.path} (missing {MANIFEST_NAME})")
        with manifest_path.open("r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise StorageError(f"corrupt manifest at {manifest_path}: {error}") from None
        self.manifest = DatasetManifest.from_json(payload, manifest_path)
        self._buffers: Dict[str, np.ndarray] = {}
        self._columns: Dict[str, Column] = {}
        # Re-entrant: column() maps its buffer while holding the lock.
        self._lock = threading.RLock()
        self.scan = DatasetScan(self)

    # ------------------------------------------------------------------ public
    @property
    def num_rows(self) -> int:
        return self.manifest.num_rows

    @property
    def column_names(self) -> List[str]:
        return [meta.name for meta in self.manifest.columns]

    @property
    def fingerprint(self) -> str:
        """The frame fingerprint persisted at write time."""
        return self.manifest.fingerprint

    def frame(self) -> DataFrame:
        """A dataframe over the shared mapped buffers, scan attached.

        Every call returns a fresh :class:`DataFrame` (frames are cheap
        shells) over the *same* column objects, so structure caches
        (argsorts, factorizations) accumulated by one consumer are shared
        by all.
        """
        frame = DataFrame([self.column(name) for name in self.column_names])
        return frame.attach_scan(self.scan)

    def descriptor(self, columns: Optional[Sequence[str]] = None) -> FrameDescriptor:
        """The picklable :class:`FrameDescriptor` of (a subset of) this dataset."""
        names = tuple(columns) if columns is not None else tuple(self.column_names)
        for name in names:
            self.manifest.column(name)  # raises StorageError for unknown names
        return FrameDescriptor(
            path=str(self.path.resolve()), version=self.manifest.version,
            fingerprint=self.fingerprint, columns=names,
        )

    def column(self, name: str) -> Column:
        """The shared full-length column ``name`` (mapped on first request)."""
        column = self._columns.get(name)
        if column is None:
            with self._lock:
                column = self._columns.get(name)
                if column is None:
                    meta = self.manifest.column(name)
                    column = storage_column(meta, self._buffer(meta))
                    self._columns[name] = column
        return column

    def chunk_column(self, name: str, chunk_index: int) -> Column:
        """A column over one chunk's rows only (for pruned scans).

        Chunk columns carry no persisted fingerprint: the manifest's
        per-chunk digests hash raw buffer bytes — a different domain from
        :meth:`Column.fingerprint`, which frames name/kind/dictionary — so
        handing them out would alias content-different columns.
        """
        meta = self.manifest.column(name)
        start, stop = self.manifest.chunk_ranges()[chunk_index]
        return storage_column(meta, self._buffer(meta), start, stop)

    def column_meta(self, name: str) -> Optional[ColumnMeta]:
        """Manifest entry of ``name``, or ``None`` when absent."""
        for meta in self.manifest.columns:
            if meta.name == name:
                return meta
        return None

    def chunk_ranges(self) -> List[Tuple[int, int]]:
        return self.manifest.chunk_ranges()

    def verify(self) -> None:
        """Re-hash every chunk against its persisted fingerprint.

        Raises :class:`StorageError` on the first mismatch — the integrity
        check for operators who suspect on-disk corruption.  Reads every
        byte; not part of any hot path.
        """
        ranges = self.chunk_ranges()
        for meta in self.manifest.columns:
            buffer = self._buffer(meta)
            for index, (start, stop) in enumerate(ranges):
                recorded = meta.chunks[index].fingerprint
                actual = hashlib.blake2b(
                    np.ascontiguousarray(buffer[start:stop]).tobytes(), digest_size=16
                ).hexdigest()
                if recorded and recorded != actual:
                    raise StorageError(
                        f"chunk {index} of column {meta.name!r} does not match its "
                        f"persisted fingerprint (dataset {self.path})"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Dataset({str(self.path)!r}, rows={self.num_rows}, "
                f"columns={len(self.manifest.columns)}, "
                f"chunks={self.manifest.num_chunks})")

    # ---------------------------------------------------------------- internals
    def _buffer(self, meta: ColumnMeta) -> np.ndarray:
        buffer = self._buffers.get(meta.name)
        if buffer is None:
            with self._lock:
                buffer = self._buffers.get(meta.name)
                if buffer is None:
                    buffer = map_buffer(self.path / meta.file, meta.dtype, self.num_rows)
                    self._buffers[meta.name] = buffer
        return buffer


def open_dataset(path: str | Path) -> Dataset:
    """Open a dataset directory; see :class:`Dataset`."""
    return Dataset(path)


def read_dataset(path: str | Path) -> DataFrame:
    """Open a dataset and return its mmap-backed dataframe in one call."""
    return open_dataset(path).frame()


# ------------------------------------------------------- descriptor resolution
#: Process-wide cache of descriptor-opened datasets: one Dataset handle (and
#: therefore one set of mapped buffers and shared columns) per path, however
#: many descriptors of it arrive.  Bounded so a long-lived worker that sees
#: many distinct spilled datasets does not accumulate handles forever —
#: evicted handles merely cost a re-open on next use.
_SHARED_DATASETS: "OrderedDict[str, Dataset]" = OrderedDict()
_SHARED_DATASETS_CAP = 32
_SHARED_LOCK = threading.Lock()


def _reinit_shared_lock() -> None:
    """Give a forked child a fresh lock (a thread of the parent may have
    held the old one at fork time, which would deadlock the child)."""
    global _SHARED_LOCK
    _SHARED_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_shared_lock)


def shared_dataset(path: str | Path) -> Dataset:
    """The per-process shared :class:`Dataset` handle of ``path``."""
    key = str(Path(path).resolve())
    with _SHARED_LOCK:
        dataset = _SHARED_DATASETS.get(key)
        if dataset is not None:
            _SHARED_DATASETS.move_to_end(key)
            return dataset
    dataset = Dataset(key)
    with _SHARED_LOCK:
        existing = _SHARED_DATASETS.get(key)
        if existing is not None:
            return existing
        _SHARED_DATASETS[key] = dataset
        while len(_SHARED_DATASETS) > _SHARED_DATASETS_CAP:
            _SHARED_DATASETS.popitem(last=False)
    return dataset


def clear_shared_datasets() -> None:
    """Drop every shared dataset handle (tests; buffers unmap with the GC)."""
    with _SHARED_LOCK:
        _SHARED_DATASETS.clear()


def frame_descriptor(frame: DataFrame, scan) -> Optional[FrameDescriptor]:
    """The descriptor of a frame served by a :class:`DatasetScan`, if sound.

    ``None`` unless every column of the frame *is* (by identity) the scanned
    dataset's shared column — a frame that merely carries a scan but swapped
    or derived columns would otherwise describe content it does not hold.
    """
    dataset = getattr(scan, "_dataset", None)
    if not isinstance(dataset, Dataset):
        return None
    names = tuple(frame.column_names)
    for name in names:
        if dataset.column_meta(name) is None or frame[name] is not dataset.column(name):
            return None
    return dataset.descriptor(names)


def _evict_shared_dataset(path: str) -> None:
    with _SHARED_LOCK:
        _SHARED_DATASETS.pop(path, None)


def frame_from_descriptor(descriptor: FrameDescriptor) -> DataFrame:
    """Resolve a :class:`FrameDescriptor` into an mmap-backed frame.

    The dataset is opened through :func:`shared_dataset` (one handle per
    process) and validated against the descriptor's pinned manifest version
    and frame fingerprint, so a descriptor can never silently serve content
    other than what it was minted for.  A cached handle that fails the
    check may simply predate a rewrite of the dataset: it is evicted and
    the directory re-opened once before the mismatch is declared real —
    otherwise one rewrite would poison every future descriptor of that
    path for the life of the process.  The returned frame carries the
    persisted column fingerprints and the chunk-statistics scan — a worker
    re-opening a stored frame re-hashes nothing.
    """
    dataset = shared_dataset(descriptor.path)
    if (dataset.manifest.version != descriptor.version
            or dataset.fingerprint != descriptor.fingerprint):
        _evict_shared_dataset(str(Path(descriptor.path).resolve()))
        dataset = shared_dataset(descriptor.path)
    if dataset.manifest.version != descriptor.version:
        raise StorageError(
            f"descriptor pins manifest version {descriptor.version}, dataset at "
            f"{descriptor.path} has version {dataset.manifest.version}"
        )
    if dataset.fingerprint != descriptor.fingerprint:
        raise StorageError(
            f"descriptor fingerprint does not match the dataset at {descriptor.path}; "
            "the dataset was rewritten since the descriptor was minted"
        )
    frame = DataFrame([dataset.column(name) for name in descriptor.columns])
    return frame.attach_scan(dataset.scan)
