"""A named, directory-backed store of columnar datasets.

:class:`DatasetStore` gives datasets *names*: ``store.put(name, frame)``
persists a dataframe under ``<root>/<name>/`` in the columnar format and
``store.open(name)`` serves it back as an mmap-backed frame.  Opened
datasets are cached per store instance, so every frame handed out for one
name shares the same mapped buffers and column objects — one physical copy
per process no matter how many tenants, sessions, or threads hold it.

This is the process-crossing half of the serving story: a service restarts
warm by re-opening named datasets instead of re-ingesting CSVs, and
multiple replicas on one machine share the page cache.
"""

from __future__ import annotations

import re
import shutil
import threading
from pathlib import Path
from typing import Dict, List

from ..dataframe.frame import DataFrame
from ..errors import StorageError
from .format import DEFAULT_CHUNK_ROWS, MANIFEST_NAME
from .reader import Dataset
from .writer import write_dataset

#: Dataset names must be usable as directory names everywhere.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class DatasetStore:
    """Named datasets under one root directory (thread-safe)."""

    def __init__(self, root: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.chunk_rows = chunk_rows
        self._datasets: Dict[str, Dataset] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ public
    def put(self, name: str, frame: DataFrame, overwrite: bool = True) -> Dataset:
        """Persist ``frame`` under ``name``; returns the opened dataset."""
        path = self._path(name)
        write_dataset(frame, path, chunk_rows=self.chunk_rows, overwrite=overwrite)
        with self._lock:
            dataset = Dataset(path)
            self._datasets[name] = dataset
        return dataset

    def open(self, name: str) -> DataFrame:
        """The mmap-backed frame of dataset ``name`` (shared buffers)."""
        return self.dataset(name).frame()

    def dataset(self, name: str) -> Dataset:
        """The opened (cached) :class:`Dataset` handle of ``name``."""
        dataset = self._datasets.get(name)
        if dataset is None:
            with self._lock:
                dataset = self._datasets.get(name)
                if dataset is None:
                    path = self._path(name)
                    if not (path / MANIFEST_NAME).exists():
                        raise StorageError(
                            f"dataset {name!r} not found in store {self.root}"
                        )
                    dataset = Dataset(path)
                    self._datasets[name] = dataset
        return dataset

    def contains(self, name: str) -> bool:
        """True when ``name`` is stored (or already opened)."""
        if name in self._datasets:
            return True
        try:
            path = self._path(name)
        except StorageError:
            return False
        return (path / MANIFEST_NAME).exists()

    def __contains__(self, name: str) -> bool:
        return self.contains(name)

    def names(self) -> List[str]:
        """Names of every stored dataset (sorted)."""
        found = {
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / MANIFEST_NAME).exists()
        }
        return sorted(found | set(self._datasets))

    def delete(self, name: str) -> bool:
        """Drop dataset ``name``; returns whether anything was removed.

        Frames already handed out keep working — their buffers stay mapped
        until the last reference dies (POSIX unlink semantics).
        """
        path = self._path(name)
        with self._lock:
            existed = self._datasets.pop(name, None) is not None
        if path.exists():
            shutil.rmtree(path)
            existed = True
        return existed

    def close(self) -> None:
        """Drop every cached dataset handle (buffers unmap with the GC)."""
        with self._lock:
            self._datasets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatasetStore({str(self.root)!r}, datasets={len(self.names())})"

    # ---------------------------------------------------------------- internals
    def _path(self, name: str) -> Path:
        if not _NAME_PATTERN.match(name or ""):
            raise StorageError(
                f"invalid dataset name {name!r}; use letters, digits, '.', '_', '-'"
            )
        return self.root / name
