"""A named, directory-backed store of columnar datasets.

:class:`DatasetStore` gives datasets *names*: ``store.put(name, frame)``
persists a dataframe under ``<root>/<name>/`` in the columnar format and
``store.open(name)`` serves it back as an mmap-backed frame.  Opened
datasets are cached per store instance, so every frame handed out for one
name shares the same mapped buffers and column objects — one physical copy
per process no matter how many tenants, sessions, or threads hold it.

This is the process-crossing half of the serving story: a service restarts
warm by re-opening named datasets instead of re-ingesting CSVs, and
multiple replicas on one machine share the page cache.

Writes are serialized per dataset name with a directory lock
(:class:`_DirectoryLock`): each writer stages into its own unique
directory (so interleaved files are impossible even unlocked), but two
concurrent overwriters of the *same* name still race on the final
rmtree-then-rename of the destination — the lock makes ``put`` safe from
any number of threads or processes, and makes the put-then-open read
consistent.  Locks left behind by a crashed writer are taken over once
their owner is provably dead (or the lock outlives ``stale_after``).
"""

from __future__ import annotations

import os
import re
import shutil
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..dataframe.frame import DataFrame
from ..errors import StorageError
from ..obs.trace import current_tracer
from .format import DEFAULT_CHUNK_ROWS, MANIFEST_NAME
from .reader import Dataset
from .writer import write_dataset

#: Dataset names must be usable as directory names everywhere.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: How long ``put`` waits for a competing writer before giving up.
DEFAULT_LOCK_TIMEOUT = 30.0

#: Age beyond which a lock whose owner cannot be verified counts as stale.
DEFAULT_LOCK_STALE_AFTER = 60.0


class _DirectoryLock:
    """An ``O_CREAT|O_EXCL`` lock file with stale-lock takeover.

    The lock file records ``pid owner-token timestamp``.  Contenders poll:
    a lock whose recorded pid is provably dead — or, when the owner cannot
    be verified (unreadable file, foreign-host pid), one older than
    ``stale_after`` — is *taken over*.  Takeover renames the lock to a
    unique doomed name first and unlinks that: the rename can only succeed
    for one contender, so two breakers can never each unlink a fresh lock
    the other just created (the classic unlink/recreate race).

    A held lock is kept fresh by a heartbeat thread that re-stamps the
    timestamp every ``stale_after / 4`` seconds, so a *live* writer is
    never stolen from however long its write takes; ``stale_after`` only
    reaps owners that stopped making progress (crashed, frozen, or
    SIGSTOPped long enough to miss their heartbeats).

    Release verifies the recorded owner token (inodes get reused too
    eagerly to discriminate) before unlinking, so a writer whose lock was
    stolen while it was stuck does not remove the thief's lock.  The
    verify-then-unlink pair is not atomic — a steal landing in the
    microseconds between them can still lose its fresh lock — but reaching
    that window at all requires the owner to have missed heartbeats for
    ``stale_after`` first; plain ``O_CREAT|O_EXCL`` files offer nothing
    stronger.
    """

    def __init__(self, path: Path, timeout: float = DEFAULT_LOCK_TIMEOUT,
                 stale_after: float = DEFAULT_LOCK_STALE_AFTER,
                 poll_interval: float = 0.01) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self._token = uuid.uuid4().hex
        self._heartbeat_stop: Optional[threading.Event] = None
        self._heartbeat_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ public
    def acquire(self) -> None:
        started = time.monotonic()
        deadline = started + self.timeout
        contended = False
        while True:
            try:
                descriptor = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                contended = True
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise StorageError(
                        f"timed out after {self.timeout:.0f}s waiting for the "
                        f"writer lock {self.path}"
                    ) from None
                time.sleep(self.poll_interval)
                continue
            try:
                os.write(descriptor, f"{os.getpid()} {self._token} {time.time():.3f}\n".encode())
            finally:
                os.close(descriptor)
            if contended:
                # Only contended acquisitions are interesting: an instant
                # O_CREAT|O_EXCL success is the overwhelmingly common case.
                current_tracer().event(
                    "lock.wait", labels={"lock": self.path.name},
                    seconds=time.monotonic() - started,
                )
            self._start_heartbeat()
            return

    def release(self) -> None:
        self._stop_heartbeat()
        try:
            _, token, _ = self._read()
        except OSError:
            return
        if token == self._token:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "_DirectoryLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # ---------------------------------------------------------------- internals
    def _start_heartbeat(self) -> None:
        interval = min(self.stale_after / 4.0, 15.0)
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                self._refresh_stamp()

        thread = threading.Thread(target=beat, name="dataset-lock-heartbeat",
                                  daemon=True)
        self._heartbeat_stop = stop
        self._heartbeat_thread = thread
        thread.start()

    def _stop_heartbeat(self) -> None:
        if self._heartbeat_stop is not None:
            self._heartbeat_stop.set()
            self._heartbeat_thread.join()
            self._heartbeat_stop = None
            self._heartbeat_thread = None

    def _refresh_stamp(self) -> None:
        """Re-stamp the lock while it is still ours.

        Token check and rewrite share one open handle, so a takeover can
        never be clobbered: whatever file the ``"r+"`` open resolved —
        ours, or a thief's fresh lock — is the file the token is read
        from, and a mismatch means no write.  ``"r+"`` never creates: a
        vanished lock stays gone rather than being resurrected by its old
        owner's heartbeat, and writing to a file a takeover renamed away
        mid-refresh lands on the doomed orphan, not on the live lock.  A
        contender reading mid-rewrite sees a half-written file, which the
        stale logic treats as unverifiable and judges by age — freshly
        written, so never stolen.
        """
        try:
            with self.path.open("r+") as handle:
                raw = handle.read().split()
                token = raw[1] if len(raw) > 1 else None
                if token != self._token:
                    return
                handle.seek(0)
                handle.write(f"{os.getpid()} {self._token} {time.time():.3f}\n")
                handle.truncate()
        except OSError:
            pass

    def _read(self):
        raw = self.path.read_text().split()
        pid = int(raw[0]) if raw and raw[0].isdigit() else None
        token = raw[1] if len(raw) > 1 else None
        stamped = None
        if len(raw) > 2:
            try:
                stamped = float(raw[2])
            except ValueError:
                stamped = None
        return pid, token, stamped

    def _break_if_stale(self) -> None:
        try:
            pid, _, stamped = self._read()
        except (OSError, ValueError):
            # Vanished (the owner released it) or half-written: age decides.
            pid = None
            stamped = None
        if pid is not None and _pid_alive(pid):
            # A live local owner only loses the lock after stale_after — a
            # wedged writer must not block every future put forever, and the
            # worst case of breaking a merely-slow one is a re-raced staging
            # write, never a torn dataset (the final rename stays atomic).
            if stamped is None or time.time() - stamped < self.stale_after:
                return
        elif pid is None:
            age = self._age()
            if age is None or age < self.stale_after:
                return
        doomed = self.path.with_name(
            f"{self.path.name}.stale-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(self.path, doomed)
        except OSError:
            return  # someone else won the takeover (or the owner released)
        try:
            os.unlink(doomed)
        except OSError:
            pass

    def _age(self) -> Optional[float]:
        try:
            return time.time() - self.path.stat().st_mtime
        except OSError:
            return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return True  # cannot verify: treat as alive, let age decide
    return True


class DatasetStore:
    """Named datasets under one root directory (thread-safe)."""

    def __init__(self, root: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.chunk_rows = chunk_rows
        self._datasets: Dict[str, Dataset] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ public
    def put(self, name: str, frame: DataFrame, overwrite: bool = True,
            lock_timeout: float = DEFAULT_LOCK_TIMEOUT) -> Dataset:
        """Persist ``frame`` under ``name``; returns the opened dataset.

        Safe under concurrent writers (threads *and* processes): writers of
        the same name serialize on a ``.<name>.lock`` file next to the
        dataset directory; see :class:`_DirectoryLock`.  ``lock_timeout``
        bounds the wait for a competing writer.
        """
        path = self._path(name)
        with _DirectoryLock(self.root / f".{name}.lock", timeout=lock_timeout):
            write_dataset(frame, path, chunk_rows=self.chunk_rows, overwrite=overwrite)
            # Open AND publish while still holding the lock: a competing
            # writer's overwrite must race neither our read of the manifest
            # we just wrote nor the cache update — a preempted loser could
            # otherwise overwrite the winner's cached handle with a stale
            # one whose files are already deleted.
            dataset = Dataset(path)
            with self._lock:
                self._datasets[name] = dataset
        return dataset

    def open(self, name: str) -> DataFrame:
        """The mmap-backed frame of dataset ``name`` (shared buffers)."""
        return self.dataset(name).frame()

    def dataset(self, name: str) -> Dataset:
        """The opened (cached) :class:`Dataset` handle of ``name``."""
        dataset = self._datasets.get(name)
        if dataset is None:
            with self._lock:
                dataset = self._datasets.get(name)
                if dataset is None:
                    path = self._path(name)
                    if not (path / MANIFEST_NAME).exists():
                        raise StorageError(
                            f"dataset {name!r} not found in store {self.root}"
                        )
                    dataset = Dataset(path)
                    self._datasets[name] = dataset
        return dataset

    def contains(self, name: str) -> bool:
        """True when ``name`` is stored (or already opened)."""
        if name in self._datasets:
            return True
        try:
            path = self._path(name)
        except StorageError:
            return False
        return (path / MANIFEST_NAME).exists()

    def __contains__(self, name: str) -> bool:
        return self.contains(name)

    def names(self) -> List[str]:
        """Names of every stored dataset (sorted)."""
        found = {
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / MANIFEST_NAME).exists()
        }
        return sorted(found | set(self._datasets))

    def version_tokens(self) -> List[Tuple[str, object, str]]:
        """Fresh ``(name, manifest version, fingerprint)`` of every dataset.

        Read from disk, bypassing the handle cache: the point is to
        observe *other* processes' rewrites, which a cached handle never
        would.  This is the epoch-key source of the replica fleet's shared
        cache tier — any rewrite of any dataset changes its token here,
        which invalidates the fleet's shared cache entries.  Datasets
        mid-rewrite (manifest briefly absent) are skipped; the next read
        sees the final token.
        """
        tokens: List[Tuple[str, object, str]] = []
        for name in self.names():
            try:
                dataset = Dataset(self._path(name))
            except StorageError:
                continue
            tokens.append((name, dataset.manifest.version, dataset.fingerprint))
        return tokens

    def delete(self, name: str) -> bool:
        """Drop dataset ``name``; returns whether anything was removed.

        Frames already handed out keep working — their buffers stay mapped
        until the last reference dies (POSIX unlink semantics).
        """
        path = self._path(name)
        with self._lock:
            existed = self._datasets.pop(name, None) is not None
        if path.exists():
            shutil.rmtree(path)
            existed = True
        return existed

    def close(self) -> None:
        """Drop every cached dataset handle (buffers unmap with the GC)."""
        with self._lock:
            self._datasets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatasetStore({str(self.root)!r}, datasets={len(self.names())})"

    # ---------------------------------------------------------------- internals
    def _path(self, name: str) -> Path:
        if not _NAME_PATTERN.match(name or ""):
            raise StorageError(
                f"invalid dataset name {name!r}; use letters, digits, '.', '_', '-'"
            )
        return self.root / name
