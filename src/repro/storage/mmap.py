"""Memory-mapped, read-only column buffers.

The read side of the storage format: every binary column file is mapped
read-only exactly once per :class:`~repro.storage.reader.Dataset` (the
operating system shares the pages across every frame, tenant, and thread
in the process), and :func:`storage_column` turns a mapped buffer into a
:class:`~repro.dataframe.column.Column`:

* ``raw`` columns wrap the mmap slice directly — zero copies, no page is
  faulted in until a computation touches it;
* ``dict`` columns materialise lazily: the first ``.values`` access decodes
  the mapped codes through the dictionary into an object array which is
  immediately frozen (``writeable = False``).

Read-only buffers are the dirty-tracking story behind persisted
fingerprints: an in-place write to a mapped or materialised buffer raises,
so the content provably matches what the writer hashed, and
``Column.fingerprint()`` can return the persisted digest without touching
a single page.  Mutation-hungry callers get a writable copy via
``column.copy()`` — a plain in-memory column whose edits never leak back.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

import numpy as np

from ..dataframe.column import Column
from ..errors import StorageError
from .format import (
    ENCODING_DICT,
    ENCODING_RAW,
    HEADER_SIZE,
    ChunkStats,
    ColumnMeta,
    check_binary_header,
)


def map_buffer(path: Path, dtype: str, length: int) -> np.ndarray:
    """Map one binary column file read-only; returns a 1-D array view.

    The 16-byte header is validated eagerly (it is one page anyway); the
    value region is exposed as a read-only ``np.memmap`` starting at the
    header boundary.  Zero-length columns return an ordinary empty array —
    there is nothing to map.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"column file missing: {path}")
    with path.open("rb") as handle:
        check_binary_header(handle.read(HEADER_SIZE), path)
    resolved = np.dtype(dtype)
    if length == 0:
        empty = np.empty(0, dtype=resolved)
        empty.flags.writeable = False
        return empty
    expected = HEADER_SIZE + length * resolved.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise StorageError(
            f"{path} holds {actual} bytes, manifest expects {expected} "
            f"({length} x {resolved.itemsize} + {HEADER_SIZE}-byte header)"
        )
    return np.memmap(path, dtype=resolved, mode="r", offset=HEADER_SIZE, shape=(length,))


def decode_dictionary_values(codes: np.ndarray, dictionary: List) -> np.ndarray:
    """Materialise dictionary codes into a frozen object array.

    Vectorised: the dictionary (plus a trailing ``None`` slot for missing
    codes) is turned into an object array and fancy-indexed by the codes.
    The result is frozen so edits cannot invalidate persisted fingerprints.
    """
    lookup = np.empty(len(dictionary) + 1, dtype=object)
    for index, value in enumerate(dictionary):
        lookup[index] = value
    lookup[len(dictionary)] = None
    safe_codes = np.where(codes >= 0, codes, len(dictionary))
    values = lookup[safe_codes]
    values.flags.writeable = False
    return values


def storage_column(meta: ColumnMeta, buffer: np.ndarray,
                   start: int = 0, stop: Optional[int] = None,
                   fingerprint: Optional[str] = None) -> Column:
    """Build the column for ``meta`` over (a slice of) its mapped buffer.

    With the default full range the column carries ``meta.fingerprint`` as
    its persisted fingerprint; sliced (chunk) columns carry none unless one
    is passed explicitly — a slice is different content from the column
    that was hashed at write time.
    """
    stop = len(buffer) if stop is None else stop
    length = stop - start
    full = start == 0 and stop == len(buffer)
    if fingerprint is None and full:
        fingerprint = meta.fingerprint

    if meta.encoding == ENCODING_RAW:
        return Column.from_storage(
            meta.name, meta.kind, length,
            values=buffer[start:stop], fingerprint=fingerprint,
        )
    if meta.encoding != ENCODING_DICT:
        raise StorageError(f"unknown column encoding {meta.encoding!r}")

    codes = buffer[start:stop]
    dictionary = meta.dictionary or []
    factorized = None
    if full and meta.dictionary_is_factorization:
        # The persisted codes ARE Column.factorize()'s codes: seed the cache
        # so warm group-bys/value-counts skip the O(n log n) recomputation.
        factorized = (np.asarray(codes), list(dictionary))

    def load() -> np.ndarray:
        return decode_dictionary_values(np.asarray(codes), dictionary)

    return Column.from_storage(
        meta.name, meta.kind, length,
        loader=load, fingerprint=fingerprint, factorized=factorized,
    )


def chunk_stats_of(meta: ColumnMeta, chunk_index: int) -> ChunkStats:
    """The footer statistics of one chunk of one column."""
    try:
        return meta.chunks[chunk_index]
    except IndexError:
        raise StorageError(
            f"column {meta.name!r} has no chunk {chunk_index} "
            f"({len(meta.chunks)} chunks recorded)"
        ) from None
