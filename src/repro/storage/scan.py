"""Scan pushdown: pruning chunks with persisted footer statistics.

:class:`DatasetScan` answers predicate masks over a stored dataset.  For
every chunk it first decides — from the manifest's per-chunk statistics
alone, without touching the data — whether *any* row of the chunk can
satisfy the predicate.  Chunks that provably cannot match are skipped:
their mask region is ``False`` without a byte of theirs being faulted in
or an element evaluated.  The remaining chunks are evaluated exactly, so
the produced mask is bit-identical to ``predicate.mask(frame)``.

Soundness rules:

* Pruning decisions are *conservative*: a leaf that cannot be analysed
  answers "may match".  Only row-local predicates (``Comparison``,
  ``IsIn``, ``Between``, ``IsNull`` and their ``And``/``Or``/``Not``
  combinations) are evaluated chunk-wise at all — anything positional
  (:class:`~repro.dataframe.predicates.RowIndexPredicate`) or unknown
  makes the scan fall back to one whole-frame evaluation.
* Chunk evaluation reads the *dataset's* columns; if the frame being
  filtered does not hold those exact column objects (someone attached the
  scan to an unrelated frame), the scan falls back as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from ..dataframe.frame import DataFrame
from ..obs.trace import current_tracer
from ..dataframe.predicates import (
    And,
    Between,
    Comparison,
    IsIn,
    IsNull,
    Not,
    Or,
    Predicate,
)
from .format import ENCODING_DICT, ChunkStats, ColumnMeta


@dataclass
class ScanStats:
    """Counters of the pushdown's effect (observability + tests)."""

    masks: int = 0
    masks_fallback: int = 0
    chunks_scanned: int = 0
    chunks_pruned: int = 0

    def as_dict(self) -> dict:
        return {
            "masks": self.masks, "masks_fallback": self.masks_fallback,
            "chunks_scanned": self.chunks_scanned, "chunks_pruned": self.chunks_pruned,
        }


class DatasetScan:
    """Chunk-statistics predicate pushdown over one opened dataset."""

    def __init__(self, dataset) -> None:
        self._dataset = dataset
        self.stats = ScanStats()

    # ------------------------------------------------------------------ public
    def mask(self, frame: DataFrame, predicate: Predicate) -> np.ndarray:
        """``predicate.mask(frame)``, bit for bit, with chunk pruning."""
        self.stats.masks += 1
        tracer = current_tracer()
        dataset = self._dataset
        decisions = self._chunk_decisions(frame, predicate)
        if decisions is None:
            self.stats.masks_fallback += 1
            if tracer.enabled:
                tracer.event("scan.mask", labels={"outcome": "fallback"})
            return np.asarray(predicate.mask(frame), dtype=bool)

        ranges = dataset.chunk_ranges()
        kept = sum(decisions)
        self.stats.chunks_scanned += kept
        self.stats.chunks_pruned += len(decisions) - kept
        if tracer.enabled:
            tracer.event(
                "scan.mask",
                labels={"outcome": "pruned" if kept < len(decisions) else "full"},
                chunks_scanned=kept, chunks_pruned=len(decisions) - kept,
            )
        if kept == len(decisions) and kept:
            # Nothing prunable: one whole-frame evaluation beats per-chunk
            # slicing (and reuses the shared columns' cached materialisation).
            return np.asarray(predicate.mask(frame), dtype=bool)
        mask = np.zeros(dataset.num_rows, dtype=bool)
        if kept == 0:
            return mask
        names = sorted(_row_local_columns(predicate))
        for index, may_match in enumerate(decisions):
            if not may_match:
                continue
            start, stop = ranges[index]
            chunk_frame = DataFrame([
                dataset.chunk_column(name, index) for name in names
            ])
            mask[start:stop] = np.asarray(predicate.mask(chunk_frame), dtype=bool)
        return mask

    def filter(self, predicate: Predicate) -> DataFrame:
        """The dataset's rows satisfying ``predicate`` (pruned scan)."""
        frame = self._dataset.frame()
        return frame.mask(self.mask(frame, predicate))

    # ---------------------------------------------------------------- internals
    def _chunk_decisions(self, frame: DataFrame,
                         predicate: Predicate) -> Optional[List[bool]]:
        """Per-chunk may-match decisions, or ``None`` to force a fallback."""
        dataset = self._dataset
        if frame.num_rows != dataset.num_rows:
            return None
        names = _row_local_columns(predicate)
        if names is None:
            return None
        for name in names:
            meta = dataset.column_meta(name)
            if meta is None or name not in frame:
                return None
            # Chunk evaluation reads the dataset's buffers; it is only a
            # faithful stand-in when the frame serves those same columns.
            if frame[name] is not dataset.column(name):
                return None
        num_chunks = dataset.manifest.num_chunks
        try:
            return [
                _may_match(predicate, dataset, index) for index in range(num_chunks)
            ]
        except _Unanalysable:
            return None


class _Unanalysable(Exception):
    """Raised when a leaf cannot be analysed soundly (forces a fallback)."""


def _row_local_columns(predicate: Predicate) -> Optional[Set[str]]:
    """Columns referenced by a row-local predicate tree; None when not row-local.

    Row-local means each row's verdict depends only on that row's values —
    the property that makes chunk-wise evaluation equal whole-frame
    evaluation.  ``RowIndexPredicate`` (positional) and unknown predicate
    classes are not row-local.
    """
    if isinstance(predicate, (Comparison, Between, IsNull)):
        return {predicate.column}
    if isinstance(predicate, IsIn):
        return {predicate.column}
    if isinstance(predicate, (And, Or)):
        names: Set[str] = set()
        for child in predicate.predicates:
            child_names = _row_local_columns(child)
            if child_names is None:
                return None
            names |= child_names
        return names
    if isinstance(predicate, Not):
        return _row_local_columns(predicate.predicate)
    return None


# --------------------------------------------------------- may-match analysis
def _may_match(predicate: Predicate, dataset, chunk_index: int) -> bool:
    """Conservative: False only when *no* row of the chunk can match."""
    if isinstance(predicate, And):
        return all(_may_match(child, dataset, chunk_index) for child in predicate.predicates)
    if isinstance(predicate, Or):
        return any(_may_match(child, dataset, chunk_index) for child in predicate.predicates)
    if isinstance(predicate, Not):
        # Refuting "not p" needs must-match analysis, which the stats do not
        # carry; never prune through a negation.
        return True
    if isinstance(predicate, Comparison):
        return _comparison_may_match(predicate, dataset, chunk_index)
    if isinstance(predicate, Between):
        return _between_may_match(predicate, dataset, chunk_index)
    if isinstance(predicate, IsNull):
        meta = dataset.column_meta(predicate.column)
        return _stats(meta, chunk_index).nulls > 0
    if isinstance(predicate, IsIn):
        return _isin_may_match(predicate, dataset, chunk_index)
    return True


def _stats(meta: ColumnMeta, chunk_index: int) -> ChunkStats:
    return meta.chunks[chunk_index]


def _comparison_may_match(predicate: Comparison, dataset, chunk_index: int) -> bool:
    meta = dataset.column_meta(predicate.column)
    stats = _stats(meta, chunk_index)
    if stats.rows == 0:
        return False
    if meta.encoding == ENCODING_DICT:
        return _dict_comparison_may_match(predicate, meta, stats)

    # Raw columns: stats carry value min/max of the present (non-NaN) rows.
    # NaN rows never satisfy a float comparison except "!=", which they
    # always satisfy.
    op = predicate.op
    try:
        value = float(predicate.value)
    except (TypeError, ValueError):
        raise _Unanalysable from None
    present = stats.rows - stats.nulls
    if op == "!=":
        if stats.nulls > 0:
            return True
        return present > 0 and not (stats.min == value == stats.max)
    if present == 0 or stats.min is None:
        return False
    low, high = float(stats.min), float(stats.max)
    if math.isnan(value):
        return False  # NaN compares False to everything under ==, <, >, …
    if op == "==":
        return low <= value <= high
    if op == ">":
        return high > value
    if op == ">=":
        return high >= value
    if op == "<":
        return low < value
    return low <= value  # "<="


def _dict_comparison_may_match(predicate: Comparison, meta: ColumnMeta,
                               stats: ChunkStats) -> bool:
    if predicate.op not in ("==", "!="):
        # Ordering comparisons on a categorical column fail at evaluation
        # time; surface the identical error through the fallback path.
        raise _Unanalysable
    value = predicate.value
    candidates = _candidate_codes(meta, [value])
    if predicate.op == "==":
        if value is None and stats.nulls > 0:
            return True  # elementwise object equality: None == None is True
        return _any_code_in_range(candidates, stats)
    # "!=": only a chunk uniformly equal to the value cannot match.
    if value is None:
        return stats.nulls < stats.rows
    uniform = (
        stats.nulls == 0 and stats.min is not None
        and stats.min == stats.max and stats.min in candidates
    )
    return not uniform


def _between_may_match(predicate: Between, dataset, chunk_index: int) -> bool:
    meta = dataset.column_meta(predicate.column)
    if meta.encoding == ENCODING_DICT:
        raise _Unanalysable  # to_float() raises; fall back for the real error
    stats = _stats(meta, chunk_index)
    present = stats.rows - stats.nulls
    if present == 0 or stats.min is None:
        return False
    low, high = float(stats.min), float(stats.max)
    if high < predicate.low:
        return False
    if predicate.inclusive_high:
        return low <= predicate.high
    return low < predicate.high


def _isin_may_match(predicate: IsIn, dataset, chunk_index: int) -> bool:
    meta = dataset.column_meta(predicate.column)
    stats = _stats(meta, chunk_index)
    if stats.rows == 0:
        return False
    values = list(predicate.values)
    if any(value is None for value in values) and stats.nulls > 0:
        return True
    if meta.encoding == ENCODING_DICT:
        return _any_code_in_range(_candidate_codes(meta, values), stats)
    # Raw columns: IsIn compares python values by equality; only finite
    # numeric candidates can be bounded by min/max, anything else keeps the
    # chunk conservatively.
    present = stats.rows - stats.nulls
    if present == 0 or stats.min is None:
        return False
    low, high = float(stats.min), float(stats.max)
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            candidate = float(value)
        elif isinstance(value, (int, float)):
            candidate = float(value)
            if math.isnan(candidate):
                continue  # tolist() floats never equal NaN under ==
        else:
            return True  # non-numeric candidate: cannot bound, keep the chunk
        if low <= candidate <= high:
            return True
    return False


def _candidate_codes(meta: ColumnMeta, values) -> Set[int]:
    """Dictionary codes whose value equals any of ``values`` (python ==)."""
    return {
        code
        for code, entry in enumerate(meta.dictionary or [])
        if any(entry == value for value in values if value is not None)
    }


def _any_code_in_range(candidates: Set[int], stats: ChunkStats) -> bool:
    if not candidates or stats.min is None:
        return False
    return any(stats.min <= code <= stats.max for code in candidates)
