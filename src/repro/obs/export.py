"""OTLP-shaped telemetry export: spans and metrics leave the process.

The tracing and metrics layers are deliberately in-process (PR 7); this
module is the wire tier on top of them.  Two exporters share one engine,
:class:`BatchExporter` — a bounded queue drained by a daemon thread that
batch-flushes to a pluggable *sink* with retry and exponential backoff:

* :class:`SpanExporter` converts finished :class:`~repro.obs.trace.Trace`
  objects to OTLP/JSON ``resourceSpans`` payloads.  Install it as a trace
  consumer (:func:`install_span_exporter`) and every owned traced request
  ships automatically.
* :class:`MetricsExporter` snapshots one or more
  :class:`~repro.obs.metrics.MetricsRegistry` instances into OTLP/JSON
  ``resourceMetrics`` payloads on demand (:meth:`MetricsExporter.push`) or
  on a fixed period (:meth:`MetricsExporter.start_periodic`).

The cardinal rule is **the explain path never blocks**: ``submit`` appends
to a bounded deque under a condition variable and returns immediately; when
the queue is full (a stalled sink) the item is *dropped and counted*, never
waited on.  Delivery failures retry ``retry_max`` times with exponential
backoff (``backoff_base_s * 2^attempt``, capped) and then drop the batch.
Drops, retries, exports and queue depth surface as ``repro_export_*``
series on the global :data:`~repro.obs.metrics.REGISTRY` so the scrape
endpoint reports the exporter's own health.

Sinks are anything callable with one JSON-able payload argument;
:func:`resolve_sink` turns a spec string into one:

* ``/path/to/file.jsonl`` → :class:`FileSink` (one payload per line),
* ``http(s)://host/v1/traces`` → :class:`HTTPSink` (POST, JSON body),
* a callable → itself.

Setting ``REPRO_OTLP_SINK`` wires the whole thing up with zero code: the
trace layer lazily calls :func:`ensure_env_exporter` when the first traced
request finishes (see :func:`repro.obs.trace._notify_consumers`).

:class:`TraceRing` — the bounded ring of recent finished traces behind the
``/traces`` endpoint — lives here too, as the third standard consumer.

Stdlib only; OTLP shapes follow the OTLP/HTTP JSON encoding (hex ids,
nanosecond epoch timestamps, ``AnyValue``-wrapped attributes) closely
enough for standard collectors to ingest.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .metrics import REGISTRY, MetricsRegistry
from .trace import Trace, add_trace_consumer, remove_trace_consumer

__all__ = [
    "BatchExporter",
    "SpanExporter",
    "MetricsExporter",
    "FileSink",
    "HTTPSink",
    "TraceRing",
    "resolve_sink",
    "trace_to_otlp",
    "spans_payload",
    "metrics_to_otlp",
    "metrics_payload",
    "install_span_exporter",
    "uninstall_span_exporter",
    "ensure_env_exporter",
    "OTLP_SINK_ENV",
]

# ------------------------------------------------------------------ env knobs
OTLP_SINK_ENV = "REPRO_OTLP_SINK"
QUEUE_ENV = "REPRO_OTLP_QUEUE"
BATCH_ENV = "REPRO_OTLP_BATCH"
FLUSH_ENV = "REPRO_OTLP_FLUSH_S"
RETRY_ENV = "REPRO_OTLP_RETRIES"
BACKOFF_ENV = "REPRO_OTLP_BACKOFF_S"

DEFAULT_QUEUE_MAX = 256
DEFAULT_BATCH_MAX = 32
DEFAULT_FLUSH_INTERVAL_S = 0.2
DEFAULT_RETRY_MAX = 3
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0

#: The trace-consumer key the REPRO_OTLP_SINK auto-exporter installs under.
ENV_CONSUMER_KEY = "otlp-env"

_RESOURCE = {"service.name": "repro-fedex", "telemetry.sdk.name": "repro.obs"}


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


# ----------------------------------------------------------------- OTLP shapes
def _any_value(value) -> dict:
    """A python value as an OTLP ``AnyValue``."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attributes(attrs: dict) -> List[dict]:
    return [{"key": str(key), "value": _any_value(value)}
            for key, value in attrs.items()]


def _hex_span_id(span_id: int) -> str:
    return f"{span_id & ((1 << 64) - 1):016x}"


def _hex_trace_id(trace_id: str) -> str:
    """A 32-hex-char OTLP trace id from the tracer's 16-hex id (zero-padded)."""
    cleaned = "".join(c for c in str(trace_id) if c in "0123456789abcdef")
    return (cleaned + "0" * 32)[:32]


def trace_to_otlp(trace: Trace, resource: Optional[dict] = None) -> dict:
    """One trace as an OTLP/JSON ``resourceSpans`` entry."""
    epoch = getattr(trace, "origin_epoch", 0.0) or 0.0
    trace_id = _hex_trace_id(trace.trace_id)
    spans: List[dict] = []
    for span in trace.spans:
        start_ns = int((epoch + span.started_s) * 1e9)
        item = {
            "traceId": trace_id,
            "spanId": _hex_span_id(span.span_id),
            "name": span.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(start_ns + int(span.wall_s * 1e9)),
            "attributes": _attributes(span.attrs),
        }
        if span.parent_id is not None:
            item["parentSpanId"] = _hex_span_id(span.parent_id)
        spans.append(item)
    merged = dict(_RESOURCE)
    merged.update(resource or {})
    return {
        "resource": {"attributes": _attributes(merged)},
        "scopeSpans": [{
            "scope": {"name": "repro.obs", "version": "1"},
            "spans": spans,
        }],
    }


def spans_payload(traces: Sequence[Trace],
                  resource: Optional[dict] = None) -> dict:
    """A batch of traces as one OTLP/JSON export request body."""
    return {"resourceSpans": [trace_to_otlp(t, resource) for t in traces]}


def metrics_to_otlp(registry: MetricsRegistry,
                    resource: Optional[dict] = None) -> dict:
    """One registry snapshot as an OTLP/JSON ``resourceMetrics`` entry."""
    now_ns = str(int(time.time() * 1e9))
    metrics: List[dict] = []
    for family in registry.families():
        points: List[dict] = []
        if family.kind == "histogram":
            for key, child in family.children():
                counts, total_sum, total_count = child.state()
                points.append({
                    "attributes": _attributes(dict(zip(family.labelnames, key))),
                    "timeUnixNano": now_ns,
                    "count": str(total_count),
                    "sum": total_sum,
                    "bucketCounts": [str(c) for c in counts],
                    "explicitBounds": list(child.bounds),
                })
            body = {"histogram": {"dataPoints": points,
                                  "aggregationTemporality": 2}}
        else:
            for key, child in family.children():
                points.append({
                    "attributes": _attributes(dict(zip(family.labelnames, key))),
                    "timeUnixNano": now_ns,
                    "asDouble": child.value,
                })
            if family.kind == "counter":
                body = {"sum": {"dataPoints": points,
                                "aggregationTemporality": 2,
                                "isMonotonic": True}}
            else:
                body = {"gauge": {"dataPoints": points}}
        entry = {"name": family.name, "description": family.help}
        entry.update(body)
        metrics.append(entry)
    # Collector-backed samples (hot module counters) export as gauges.
    collected: Dict[str, dict] = {}
    family_names = {family.name for family in registry.families()}
    for name, kind, help_text, value, labels in registry._collect():
        if name in family_names:
            continue
        entry = collected.setdefault(name, {
            "name": name, "description": help_text,
            "gauge": {"dataPoints": []},
        })
        entry["gauge"]["dataPoints"].append({
            "attributes": _attributes(dict(labels)),
            "timeUnixNano": now_ns,
            "asDouble": float(value),
        })
    metrics.extend(collected.values())
    merged = dict(_RESOURCE)
    merged.update(resource or {})
    return {
        "resource": {"attributes": _attributes(merged)},
        "scopeMetrics": [{
            "scope": {"name": "repro.obs", "version": "1"},
            "metrics": metrics,
        }],
    }


def metrics_payload(entries: Sequence[dict]) -> dict:
    """A batch of ``resourceMetrics`` entries as one export request body."""
    return {"resourceMetrics": list(entries)}


# ----------------------------------------------------------------------- sinks
class FileSink:
    """Appends one JSON payload per line to a file (JSONL of export batches)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()

    def __call__(self, payload: dict) -> None:
        line = json.dumps(payload, default=str) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileSink({self.path!r})"


class HTTPSink:
    """POSTs each JSON payload to an OTLP/HTTP-style collector URL."""

    def __init__(self, url: str, timeout_s: float = 5.0,
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.url = str(url)
        self.timeout_s = float(timeout_s)
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", "application/json")

    def __call__(self, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        request = urllib.request.Request(self.url, data=body,
                                         headers=self.headers, method="POST")
        with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
            status = getattr(response, "status", 200)
            if status >= 400:
                raise OSError(f"sink {self.url} returned HTTP {status}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HTTPSink({self.url!r})"


SinkSpec = Union[str, "os.PathLike[str]", Callable[[dict], None]]


def resolve_sink(spec: SinkSpec) -> Callable[[dict], None]:
    """A sink callable from a spec: callable → itself, URL → HTTP, else file."""
    if callable(spec):
        return spec
    text = str(spec)
    if text.startswith(("http://", "https://")):
        return HTTPSink(text)
    return FileSink(text)


# ------------------------------------------------------- exporter-side metrics
_EXPORT_BATCHES = REGISTRY.counter(
    "repro_export_batches_total",
    "Export batches delivered to the sink, by signal.",
    ("signal",))
_EXPORT_ITEMS = REGISTRY.counter(
    "repro_export_items_total",
    "Items (traces / metric snapshots) delivered to the sink, by signal.",
    ("signal",))
_EXPORT_DROPPED = REGISTRY.counter(
    "repro_export_dropped_total",
    "Items dropped instead of blocking: full queue, closed exporter, or "
    "delivery failure after retries.",
    ("signal", "reason"))
_EXPORT_RETRIES = REGISTRY.counter(
    "repro_export_retries_total",
    "Delivery attempts retried after a sink error, by signal.",
    ("signal",))
_EXPORT_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_export_queue_depth",
    "Items currently waiting in the export queue, by signal.",
    ("signal",))


# -------------------------------------------------------------------- exporter
class BatchExporter:
    """A bounded background queue flushing batches to a sink, with retry.

    Subclasses define ``signal`` (metric label) and ``_payload(batch)``.
    ``submit`` is the only producer API and is wait-free for the caller:
    it either enqueues and returns ``True`` or counts a drop and returns
    ``False``.  One daemon thread drains the queue; a sink stalled inside a
    delivery only ever stalls that thread — the queue fills, producers keep
    returning immediately.
    """

    signal = "spans"

    def __init__(self, sink: SinkSpec, *,
                 queue_max: Optional[int] = None,
                 batch_max: Optional[int] = None,
                 flush_interval_s: Optional[float] = None,
                 retry_max: Optional[int] = None,
                 backoff_base_s: Optional[float] = None,
                 backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
                 resource: Optional[dict] = None,
                 name: Optional[str] = None) -> None:
        self._sink = resolve_sink(sink)
        self._queue_max = max(1, queue_max if queue_max is not None
                              else _env_int(QUEUE_ENV, DEFAULT_QUEUE_MAX))
        self._batch_max = max(1, batch_max if batch_max is not None
                              else _env_int(BATCH_ENV, DEFAULT_BATCH_MAX))
        self._flush_interval_s = (flush_interval_s if flush_interval_s is not None
                                  else _env_float(FLUSH_ENV, DEFAULT_FLUSH_INTERVAL_S))
        self._retry_max = max(0, retry_max if retry_max is not None
                              else _env_int(RETRY_ENV, DEFAULT_RETRY_MAX))
        self._backoff_base_s = (backoff_base_s if backoff_base_s is not None
                                else _env_float(BACKOFF_ENV, DEFAULT_BACKOFF_BASE_S))
        self._backoff_cap_s = backoff_cap_s
        self._resource = dict(resource or {})
        self._cond = threading.Condition()
        self._items: "deque" = deque()
        self._inflight = 0
        self._closed = False
        self.enqueued = 0
        self.exported = 0
        self.dropped = 0
        self.retries = 0
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=name or f"repro-export-{self.signal}")
        self._thread.start()

    # ----------------------------------------------------------------- producer
    def submit(self, item) -> bool:
        """Enqueue one item; never blocks.  ``False`` means dropped+counted."""
        with self._cond:
            if self._closed:
                self.dropped += 1
                reason = "closed"
            elif len(self._items) >= self._queue_max:
                self.dropped += 1
                reason = "queue_full"
            else:
                self._items.append(item)
                self.enqueued += 1
                _EXPORT_QUEUE_DEPTH.labels(signal=self.signal).set(
                    len(self._items))
                self._cond.notify()
                return True
        _EXPORT_DROPPED.labels(signal=self.signal, reason=reason).inc()
        return False

    # ------------------------------------------------------------------- control
    def flush(self, timeout_s: float = 5.0) -> bool:
        """Wait until the queue drains (or ``timeout_s``); ``True`` when empty."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            self._cond.notify_all()
            while self._items or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))
            return True

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop accepting items, drain best-effort, and join the worker."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout_s)

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "enqueued": self.enqueued,
                "exported": self.exported,
                "dropped": self.dropped,
                "retries": self.retries,
                "queued": len(self._items),
            }

    def __enter__(self) -> "BatchExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------------- worker
    def _payload(self, batch: List) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._items and not self._closed:
                    self._cond.wait(self._flush_interval_s)
                if not self._items and self._closed:
                    return
                batch = [self._items.popleft()
                         for _ in range(min(len(self._items), self._batch_max))]
                self._inflight = len(batch)
                _EXPORT_QUEUE_DEPTH.labels(signal=self.signal).set(
                    len(self._items))
            try:
                self._deliver(batch)
            finally:
                with self._cond:
                    self._inflight = 0
                    self._cond.notify_all()

    def _deliver(self, batch: List) -> None:
        try:
            payload = self._payload(batch)
        except Exception:
            self._count_drop(len(batch), "encode_error")
            return
        delay = self._backoff_base_s
        for attempt in range(self._retry_max + 1):
            try:
                self._sink(payload)
            except Exception:
                if attempt >= self._retry_max:
                    break
                with self._cond:
                    self.retries += 1
                _EXPORT_RETRIES.labels(signal=self.signal).inc()
                time.sleep(min(delay, self._backoff_cap_s))
                delay *= 2
            else:
                with self._cond:
                    self.exported += len(batch)
                _EXPORT_BATCHES.labels(signal=self.signal).inc()
                _EXPORT_ITEMS.labels(signal=self.signal).inc(len(batch))
                return
        self._count_drop(len(batch), "delivery_failed")

    def _count_drop(self, amount: int, reason: str) -> None:
        with self._cond:
            self.dropped += amount
        _EXPORT_DROPPED.labels(signal=self.signal, reason=reason).inc(amount)


class SpanExporter(BatchExporter):
    """Ships finished traces as OTLP/JSON ``resourceSpans`` batches."""

    signal = "spans"

    def export(self, trace: Trace) -> bool:
        """Trace-consumer entry point (``add_trace_consumer`` compatible)."""
        return self.submit(trace)

    def _payload(self, batch: List[Trace]) -> dict:
        return spans_payload(batch, self._resource)


class MetricsExporter(BatchExporter):
    """Ships registry snapshots as OTLP/JSON ``resourceMetrics`` batches."""

    signal = "metrics"

    def __init__(self, sink: SinkSpec,
                 registries: Optional[Sequence[MetricsRegistry]] = None,
                 **kwargs) -> None:
        self._registries = list(registries) if registries is not None else [REGISTRY]
        self._periodic: Optional[threading.Thread] = None
        self._periodic_stop = threading.Event()
        super().__init__(sink, **kwargs)

    def push(self) -> bool:
        """Snapshot every registry now and enqueue the combined entry list."""
        entries = [metrics_to_otlp(registry, self._resource)
                   for registry in self._registries]
        return self.submit(entries)

    def start_periodic(self, interval_s: float = 10.0) -> None:
        """Push snapshots every ``interval_s`` until :meth:`close`."""
        if self._periodic is not None:
            return

        def loop() -> None:
            while not self._periodic_stop.wait(interval_s):
                self.push()

        self._periodic = threading.Thread(
            target=loop, daemon=True, name="repro-export-metrics-periodic")
        self._periodic.start()

    def close(self, timeout_s: float = 5.0) -> None:
        self._periodic_stop.set()
        if self._periodic is not None:
            self._periodic.join(timeout_s)
            self._periodic = None
        super().close(timeout_s)

    def _payload(self, batch: List[List[dict]]) -> dict:
        return metrics_payload([entry for entries in batch for entry in entries])


# ------------------------------------------------------------------ trace ring
class TraceRing:
    """A bounded in-memory ring of recent finished traces (``/traces`` source).

    ``add`` is a valid trace consumer; the oldest trace falls off when the
    ring is full.  Reads return a most-recent-first list copy.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._traces: "deque[Trace]" = deque(maxlen=max(1, int(capacity)))
        self._lock = threading.Lock()

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def traces(self) -> List[Trace]:
        with self._lock:
            return list(reversed(self._traces))

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ------------------------------------------------------------ env auto-install
_ENV_LOCK = threading.Lock()
_ENV_EXPORTER: Optional[SpanExporter] = None
_ENV_SPEC: Optional[str] = None


def install_span_exporter(exporter: SpanExporter, key: str = "otlp") -> None:
    """Register an exporter so every finished owned trace ships through it."""
    add_trace_consumer(key, exporter.export)


def uninstall_span_exporter(key: str = "otlp") -> None:
    remove_trace_consumer(key)


def ensure_env_exporter() -> Optional[SpanExporter]:
    """Install, retarget, or retire the ``REPRO_OTLP_SINK`` span exporter.

    Idempotent and cheap when nothing changed; called lazily by the trace
    layer on every finished traced request.  Returns the active exporter
    (``None`` when the variable is unset).
    """
    global _ENV_EXPORTER, _ENV_SPEC
    spec = os.environ.get(OTLP_SINK_ENV, "").strip() or None
    with _ENV_LOCK:
        if spec == _ENV_SPEC:
            return _ENV_EXPORTER
        if _ENV_EXPORTER is not None:
            remove_trace_consumer(ENV_CONSUMER_KEY)
            _ENV_EXPORTER.close(timeout_s=1.0)
            _ENV_EXPORTER = None
        _ENV_SPEC = spec
        if spec:
            _ENV_EXPORTER = SpanExporter(spec)
            add_trace_consumer(ENV_CONSUMER_KEY, _ENV_EXPORTER.export)
        return _ENV_EXPORTER
