"""The observability endpoint: ``/metrics``, ``/healthz`` and ``/traces``.

A stdlib :class:`~http.server.ThreadingHTTPServer` (thread per request)
serving three read-only views of the process:

* ``GET /metrics`` — Prometheus text exposition.  The payload callback is
  pluggable; the default renders the global
  :data:`~repro.obs.metrics.REGISTRY`, and
  :meth:`ExplanationService.attach_observability
  <repro.service.service.ExplanationService.attach_observability>` plugs in
  the service's namespaced multi-registry rendering.
* ``GET /healthz`` — a small JSON liveness document (status, uptime,
  trace-ring depth) from a pluggable health callback.
* ``GET /traces`` — recent finished traces from a
  :class:`~repro.obs.export.TraceRing`, JSON, most recent first, each with
  its critical path pre-computed (``?limit=N`` bounds the count,
  ``?spans=1`` inlines full span dicts).

The server binds ``127.0.0.1`` on an ephemeral port by default
(``REPRO_OBS_PORT`` overrides), runs on a daemon thread, and shuts down
gracefully via :meth:`ObservabilityServer.close` (also a context manager).
Handler errors return a JSON 500 — a scrape can fail, the process cannot.

Stdlib only.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from .analyze import critical_path
from .export import TraceRing
from .metrics import REGISTRY

__all__ = ["ObservabilityServer", "OBS_PORT_ENV"]

#: Environment variable naming the scrape port (0/unset → ephemeral).
OBS_PORT_ENV = "REPRO_OBS_PORT"

#: Upper bound on ``/traces?limit=``: the ring is small, but the response
#: document must stay bounded no matter what a client asks for.
MAX_TRACE_LIMIT = 1_024

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityServer:
    """Serves metrics, health and recent traces for one process.

    ``metrics_text`` returns the ``/metrics`` payload (default: the global
    registry); ``health`` returns a JSON-able dict merged into the standard
    ``/healthz`` document; ``ring`` is the trace ring behind ``/traces``
    (one is created when not supplied — register ``server.ring.add`` as a
    trace consumer to feed it).
    """

    def __init__(self, *,
                 metrics_text: Optional[Callable[[], str]] = None,
                 health: Optional[Callable[[], dict]] = None,
                 ring: Optional[TraceRing] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None) -> None:
        self.metrics_text = metrics_text or REGISTRY.render_text
        self.health = health
        self.ring = ring if ring is not None else TraceRing()
        self.host = host
        if port is None:
            try:
                port = int(os.environ.get(OBS_PORT_ENV, "").strip() or 0)
            except ValueError:
                port = 0
        self.port = port
        self._started_at = time.monotonic()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread; returns self (chainable)."""
        if self._server is not None:
            return self
        outer = self

        class Handler(BaseHTTPRequestHandler):
            server_version = "repro-obs/1"
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # no stderr spam per scrape
                pass

            def do_GET(self) -> None:
                try:
                    outer._route(self)
                except BrokenPipeError:  # client went away mid-response
                    pass
                except Exception as error:
                    try:
                        outer._respond_json(
                            self, {"error": repr(error)}, status=500)
                    except Exception:
                        pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name=f"repro-obs-server:{self.port}")
        self._thread.start()
        self._started_at = time.monotonic()
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout_s)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ----------------------------------------------------------------- routing
    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(handler.path)
        path = parsed.path.rstrip("/") or "/"
        if path == "/metrics":
            body = self.metrics_text().encode("utf-8")
            handler.send_response(200)
            handler.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        elif path == "/healthz":
            payload = {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "traces": len(self.ring),
            }
            if self.health is not None:
                payload.update(self.health())
            self._respond_json(handler, payload)
        elif path == "/traces":
            query = parse_qs(parsed.query)
            try:
                limit = _int_param(query, "limit", default=16,
                                   cap=MAX_TRACE_LIMIT)
                with_spans = _int_param(query, "spans", default=0, cap=1) > 0
            except _BadParam as error:
                self._respond_json(handler, {"error": str(error)}, status=400)
                return
            traces = self.ring.traces()[:limit]
            payload = {
                "count": len(traces),
                "traces": [_trace_document(trace, with_spans)
                           for trace in traces],
            }
            self._respond_json(handler, payload)
        else:
            self._respond_json(
                handler,
                {"error": f"unknown path {path!r}",
                 "paths": ["/metrics", "/healthz", "/traces"]},
                status=404)

    @staticmethod
    def _respond_json(handler: BaseHTTPRequestHandler, payload: dict,
                      status: int = 200) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)


class _BadParam(ValueError):
    """A query parameter the client must fix (rendered as HTTP 400)."""


def _int_param(query: Dict[str, List[str]], key: str, default: int,
               cap: int) -> int:
    """An integer query parameter clamped into ``[0, cap]``.

    A missing parameter uses ``default``; a present but non-numeric value
    raises :class:`_BadParam` (a silent fallback would mask client typos),
    and out-of-range values are clamped — a negative limit must not slice
    from the wrong end, a huge one must not build an unbounded document.
    """
    raw = query.get(key)
    if raw is None:
        return max(0, min(default, cap))
    try:
        value = int(raw[0])
    except (TypeError, ValueError):
        raise _BadParam(
            f"query parameter {key!r} must be an integer, got {raw[0]!r}"
        ) from None
    return max(0, min(value, cap))


def _trace_document(trace, with_spans: bool) -> dict:
    path = critical_path(trace)
    roots = [step.name for step in path[:1]]
    document = {
        "trace_id": trace.trace_id,
        "root": roots[0] if roots else None,
        "wall_s": path[0].wall_s if path else 0.0,
        "span_count": len(trace.spans),
        "critical_path": [step.to_dict() for step in path],
    }
    if with_spans:
        document["spans"] = trace.to_dicts()
    return document
