"""Structured tracing: where the time goes inside one explanation.

A :class:`Tracer` records a tree of :class:`Span`s — name, attributes, wall
and CPU time, parent id — for one request.  The engine owns the request
root: when tracing is enabled it activates a fresh tracer for the duration
of :meth:`~repro.core.engine.FedexExplainer.explain` and attaches the
finished :class:`Trace` to the report, where it renders as a text tree
(:meth:`Trace.render_text`) or dumps as JSONL.

Everything below the engine — backends, caches, scans, locks — reports
through the *ambient* tracer (:func:`current_tracer`), a
:mod:`contextvars` variable that is only ever set while a traced request is
running.  When nothing is active, :func:`current_tracer` returns the
module-level :data:`NOOP_TRACER`, whose span/event methods are empty
no-allocation stubs: instrumentation on the hot path costs one context-var
read and an attribute check per call site.  ``bench_backends.py`` asserts
this disabled-mode overhead stays under 2% of the contribution phase.

Enabling traces:

* ``REPRO_TRACE=1`` (or ``true``/``yes``/``on``) — every explain carries a
  ``report.trace``.
* ``REPRO_TRACE=/path/to/traces.jsonl`` — additionally appends every
  finished trace to the file, one span per line (:func:`read_traces` loads
  them back).
* programmatically, ``with tracing(): ...`` — forces tracing on (or off,
  ``tracing(False)``) regardless of the environment.

High-frequency signals (cache lookups, chunk pruning, lock waits) are
recorded as aggregated *events* — one span per (parent, name, labels)
combination with a ``count`` attribute and summed numeric fields — so a
workload with thousands of cache hits produces a bounded trace.

Worker processes cannot share the parent's tracer; the process backend runs
a local tracer per batch and ships the finished span dicts home with the
batch result, where :meth:`Tracer.attach_spans` grafts them under the
parent-side batch span (ids remapped, hierarchy preserved).

This module is dependency-free (stdlib only) and safe to import from any
layer of the package.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "Trace",
    "NOOP_TRACER",
    "current_tracer",
    "tracing",
    "tracing_enabled",
    "trace_path",
    "begin_request",
    "end_request",
    "append_jsonl",
    "read_traces",
    "add_trace_consumer",
    "remove_trace_consumer",
]

#: Environment variable controlling tracing: unset/``0`` disables, a truthy
#: flag enables, anything else is a JSONL destination path (and enables).
TRACE_ENV = "REPRO_TRACE"

_TRUTHY_FLAGS = frozenset({"1", "true", "yes", "on"})


class Span:
    """One completed (or in-flight) unit of work inside a trace.

    ``started_s`` is the offset from the trace origin; ``wall_s``/``cpu_s``
    are filled when the span's context manager exits.  Aggregated event
    spans carry a ``count`` attribute and zero durations.
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs",
                 "started_s", "wall_s", "cpu_s")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 attrs: Optional[dict] = None, started_s: float = 0.0,
                 wall_s: float = 0.0, cpu_s: float = 0.0) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.started_s = started_s
        self.wall_s = wall_s
        self.cpu_s = cpu_s

    @property
    def is_event(self) -> bool:
        """Whether this span is an aggregated event (counted, not timed)."""
        return "count" in self.attrs and self.wall_s == 0.0

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "started_s": self.started_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(None if payload.get("parent_id") is None
                       else int(payload["parent_id"])),
            name=str(payload["name"]),
            attrs=dict(payload.get("attrs") or {}),
            started_s=float(payload.get("started_s", 0.0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_s=float(payload.get("cpu_s", 0.0)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, wall={self.wall_s:.6f}s)")


class _ActiveSpan:
    """Context manager measuring one span; supports attribute updates."""

    __slots__ = ("_tracer", "span", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.span.started_s = self._wall0 - self._tracer._origin
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.wall_s = time.perf_counter() - self._wall0
        self.span.cpu_s = time.process_time() - self._cpu0
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)
        return False

    def set(self, key: str, value) -> None:
        """Set one attribute on the underlying span."""
        self.span.attrs[key] = value

    def add(self, key: str, amount=1) -> None:
        """Add to a numeric attribute (created at zero)."""
        self.span.attrs[key] = self.span.attrs.get(key, 0) + amount


class _NoopSpan:
    """The do-nothing span handle of the disabled path."""

    __slots__ = ()

    span = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def add(self, key: str, amount=1) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The disabled tracer: every method is an empty stub.

    A single module-level instance (:data:`NOOP_TRACER`) is returned by
    :func:`current_tracer` whenever no trace is active, so call sites pay
    one attribute check (``tracer.enabled``) or one stub call — nothing is
    allocated, no lock is touched.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, parent: Optional[Span] = None, **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def event(self, name: str, labels: Optional[dict] = None, n: int = 1,
              parent: Optional[Span] = None, **amounts) -> None:
        pass

    def add_span(self, name: str, parent: Optional[Span] = None,
                 started_pc: Optional[float] = None, wall_s: float = 0.0,
                 cpu_s: float = 0.0, **attrs) -> None:
        return None

    def attach_spans(self, payload, parent: Optional[Span] = None) -> None:
        pass

    def current_span(self) -> Optional[Span]:
        return None

    def export(self) -> List[dict]:
        return []

    def finish(self) -> None:
        return None


#: The process-wide disabled tracer (never mutated).
NOOP_TRACER = NoopTracer()


class Tracer:
    """Collects the spans of one request (thread-safe).

    Spans are appended to one flat, locked list in creation order — parents
    always precede their children — and the tree is rebuilt from parent ids
    at render time, so pool threads can record concurrently without sharing
    mutable child lists.  Each thread keeps its own current-span stack;
    cross-thread spans pass ``parent=`` explicitly (the thread pools capture
    the submitting span at prefetch time).
    """

    enabled = True

    def __init__(self) -> None:
        self.trace_id = uuid.uuid4().hex[:16]
        self.origin_epoch = time.time()
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._local = threading.local()
        # Aggregated events: (parent_id, name, labels) -> its Span.
        self._events: Dict[Tuple, Span] = {}

    # ---------------------------------------------------------------- recording
    def span(self, name: str, parent: Optional[Span] = None, **attrs) -> _ActiveSpan:
        """A new child span of ``parent`` (default: this thread's current span)."""
        parent_span = parent if parent is not None else self.current_span()
        parent_id = parent_span.span_id if parent_span is not None else None
        with self._lock:
            span = Span(self._next_id, parent_id, name, dict(attrs))
            self._next_id += 1
            self._spans.append(span)
        return _ActiveSpan(self, span)

    def event(self, name: str, labels: Optional[dict] = None, n: int = 1,
              parent: Optional[Span] = None, **amounts) -> None:
        """Count one occurrence of a high-frequency signal.

        Events with the same (parent span, name, labels) aggregate into one
        span whose ``count`` attribute accumulates and whose numeric
        ``amounts`` are summed — thousands of cache hits stay one line.
        """
        parent_span = parent if parent is not None else self.current_span()
        parent_id = parent_span.span_id if parent_span is not None else None
        label_key = tuple(sorted(labels.items())) if labels else ()
        key = (parent_id, name, label_key)
        with self._lock:
            span = self._events.get(key)
            if span is None:
                attrs = dict(labels) if labels else {}
                attrs["count"] = 0
                span = Span(self._next_id, parent_id, name, attrs,
                            started_s=time.perf_counter() - self._origin)
                self._next_id += 1
                self._spans.append(span)
                self._events[key] = span
            span.attrs["count"] += n
            for field, amount in amounts.items():
                span.attrs[field] = span.attrs.get(field, 0) + amount

    def add_span(self, name: str, parent: Optional[Span] = None,
                 started_pc: Optional[float] = None, wall_s: float = 0.0,
                 cpu_s: float = 0.0, **attrs) -> Span:
        """Record an already-measured span (e.g. a batch timed by futures).

        ``started_pc`` is a ``time.perf_counter()`` reading taken by the
        caller (the submit timestamp); it is converted to a trace-origin
        offset here.
        """
        parent_id = parent.span_id if parent is not None else None
        started_s = (started_pc - self._origin) if started_pc is not None else 0.0
        with self._lock:
            span = Span(self._next_id, parent_id, name, dict(attrs),
                        started_s=started_s, wall_s=wall_s, cpu_s=cpu_s)
            self._next_id += 1
            self._spans.append(span)
        return span

    def attach_spans(self, payload: List[dict], parent: Optional[Span] = None) -> None:
        """Graft spans shipped from another process under ``parent``.

        Span ids are remapped into this tracer's id space; the shipped
        hierarchy is preserved, and shipped roots (or spans whose parent did
        not travel with them) become children of ``parent``.  Offsets stay
        as measured in the worker (relative to *its* origin) — the
        parent-side batch span carries the authoritative submit-to-result
        timing.
        """
        if not payload:
            return
        parent_id = parent.span_id if parent is not None else None
        with self._lock:
            id_map: Dict[int, int] = {}
            shipped = [Span.from_dict(item) for item in payload]
            for span in shipped:
                id_map[span.span_id] = self._next_id
                span.span_id = self._next_id
                self._next_id += 1
            for span in shipped:
                if span.parent_id in id_map:
                    span.parent_id = id_map[span.parent_id]
                else:
                    span.parent_id = parent_id
                self._spans.append(span)

    # ------------------------------------------------------------------ queries
    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def export(self) -> List[dict]:
        """The recorded spans as plain dicts (worker → parent shipping)."""
        with self._lock:
            return [span.to_dict() for span in self._spans]

    def finish(self) -> "Trace":
        """Seal the tracer into an immutable :class:`Trace`."""
        with self._lock:
            return Trace(self.trace_id, list(self._spans),
                         origin_epoch=self.origin_epoch)

    # ---------------------------------------------------------------- internals
    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)


class Trace:
    """The finished spans of one request, renderable and serialisable.

    ``origin_epoch`` is the wall-clock (``time.time()``) instant of the
    trace origin — span offsets plus it give absolute timestamps, which the
    OTLP exporter needs.  Traces re-read from JSONL carry ``0.0`` (offsets
    stay exact; absolute placement is not round-tripped).
    """

    __slots__ = ("trace_id", "spans", "origin_epoch")

    def __init__(self, trace_id: str, spans: List[Span],
                 origin_epoch: float = 0.0) -> None:
        self.trace_id = trace_id
        self.spans = spans
        self.origin_epoch = origin_epoch

    # ------------------------------------------------------------------ queries
    def find(self, name: str) -> List[Span]:
        """Every span with this exact name."""
        return [span for span in self.spans if span.name == name]

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.name, None)
        return list(seen)

    def total_wall(self, name: str) -> float:
        """Summed wall seconds of every span with this name."""
        return sum(span.wall_s for span in self.find(name))

    def children(self, span: Optional[Span]) -> List[Span]:
        """Direct children of a span (or the roots, for ``None``)."""
        parent_id = span.span_id if span is not None else None
        return [child for child in self.spans if child.parent_id == parent_id]

    # ---------------------------------------------------------------- rendering
    def render_text(self) -> str:
        """The span tree as indented text, one span per line."""
        by_parent: Dict[Optional[int], List[Span]] = {}
        known = {span.span_id for span in self.spans}
        for span in self.spans:
            parent = span.parent_id if span.parent_id in known else None
            by_parent.setdefault(parent, []).append(span)
        lines = [f"trace {self.trace_id}"]

        def walk(parent_id: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent_id, ()):
                indent = "  " * depth
                if span.is_event:
                    extras = {k: v for k, v in span.attrs.items() if k != "count"}
                    suffix = f"  {_format_attrs(extras)}" if extras else ""
                    lines.append(
                        f"{indent}{span.name} ×{span.attrs['count']}{suffix}"
                    )
                else:
                    suffix = f"  {_format_attrs(span.attrs)}" if span.attrs else ""
                    lines.append(
                        f"{indent}{span.name} {span.wall_s * 1e3:.1f}ms "
                        f"(cpu {span.cpu_s * 1e3:.1f}ms){suffix}"
                    )
                walk(span.span_id, depth + 1)

        walk(None, 1)
        return "\n".join(lines)

    # ------------------------------------------------------------- serialisation
    def to_dicts(self) -> List[dict]:
        """One plain dict per span, each stamped with the trace id."""
        return [dict(span.to_dict(), trace_id=self.trace_id) for span in self.spans]

    def to_jsonl(self) -> str:
        """The trace as JSONL — one span per line, trailing newline included.

        Keys keep their insertion order (no ``sort_keys``): attr order is
        part of a span's rendering, so a dumped trace must read back and
        render exactly like the live one.
        """
        return "".join(
            json.dumps(item, default=str) + "\n" for item in self.to_dicts()
        )

    @classmethod
    def from_dicts(cls, items: List[dict]) -> "Trace":
        trace_ids = {item.get("trace_id") for item in items}
        if len(trace_ids) > 1:
            raise ValueError(f"lines from multiple traces: {sorted(map(str, trace_ids))}")
        trace_id = next(iter(trace_ids), None) or "unknown"
        return cls(str(trace_id), [Span.from_dict(item) for item in items])

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse one trace back from its :meth:`to_jsonl` form."""
        items = [json.loads(line) for line in text.splitlines() if line.strip()]
        return cls.from_dicts(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.trace_id!r}, spans={len(self.spans)})"


def _format_attrs(attrs: dict) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return "{" + " ".join(parts) + "}"


# ------------------------------------------------------------------ activation
_ACTIVE: "contextvars.ContextVar[Optional[Tracer]]" = contextvars.ContextVar(
    "repro_active_tracer", default=None
)
_FORCED: "contextvars.ContextVar[Optional[bool]]" = contextvars.ContextVar(
    "repro_tracing_forced", default=None
)


def current_tracer():
    """The tracer of the request running on this thread (noop when none)."""
    tracer = _ACTIVE.get()
    return NOOP_TRACER if tracer is None else tracer


def trace_destination() -> Optional[str]:
    """The raw ``REPRO_TRACE`` value when tracing is enabled by it."""
    value = os.environ.get(TRACE_ENV, "").strip()
    if not value or value == "0" or value.lower() in ("false", "no", "off"):
        return None
    return value


def trace_path() -> Optional[str]:
    """The JSONL dump path, when ``REPRO_TRACE`` names one (not just a flag)."""
    value = trace_destination()
    if value is None or value.lower() in _TRUTHY_FLAGS:
        return None
    return value


def tracing_enabled() -> bool:
    """Whether a new request should be traced (forced scope beats the env)."""
    forced = _FORCED.get()
    if forced is not None:
        return forced
    return trace_destination() is not None


@contextmanager
def tracing(enabled: bool = True) -> Iterator[None]:
    """Force tracing on (or off) for the dynamic extent of the block.

    The innermost ``tracing(...)`` wins over outer blocks and over the
    ``REPRO_TRACE`` environment variable — ``tracing(False)`` yields a
    genuinely untraced run even under a traced test harness.
    """
    token = _FORCED.set(bool(enabled))
    try:
        yield
    finally:
        _FORCED.reset(token)


def begin_request() -> Tuple[object, Optional[object]]:
    """Start-of-request hook for the engine: ``(tracer, activation token)``.

    Reuses an already-active tracer (token ``None`` — someone outer owns
    it), creates and activates a fresh one when tracing is enabled, and
    hands back :data:`NOOP_TRACER` otherwise.
    """
    active = _ACTIVE.get()
    if active is not None:
        return active, None
    if tracing_enabled():
        tracer = Tracer()
        return tracer, _ACTIVE.set(tracer)
    return NOOP_TRACER, None


def end_request(tracer, token) -> Optional[Trace]:
    """End-of-request hook: deactivate, finish, dump and fan out an owned tracer.

    Returns the finished :class:`Trace` when this request owned the tracer
    (``token`` from :func:`begin_request`), ``None`` otherwise.  Registered
    trace consumers (exporters, trace rings) are notified with the finished
    trace; a failing consumer never fails the request.
    """
    if token is None:
        return None
    _ACTIVE.reset(token)
    trace = tracer.finish()
    path = trace_path()
    if path is not None:
        try:
            append_jsonl(trace, path)
        except OSError:  # tracing must never fail a request
            pass
    _notify_consumers(trace)
    return trace


# ------------------------------------------------------------ trace consumers
_CONSUMER_LOCK = threading.Lock()
_CONSUMERS: "Dict[str, object]" = {}

#: Environment variable naming an OTLP sink (file path, http(s) URL); when
#: set, :mod:`repro.obs.export` lazily installs a span exporter the first
#: time a traced request finishes.
OTLP_SINK_ENV = "REPRO_OTLP_SINK"


def add_trace_consumer(key: str, consumer) -> None:
    """Register ``consumer(trace)`` to run on every finished owned trace.

    Re-registering a key replaces its consumer.  Consumers run on the
    request thread and must be fast and non-blocking (exporters enqueue and
    return); exceptions are swallowed.
    """
    with _CONSUMER_LOCK:
        _CONSUMERS[key] = consumer


def remove_trace_consumer(key: str) -> None:
    with _CONSUMER_LOCK:
        _CONSUMERS.pop(key, None)


def _notify_consumers(trace: Trace) -> None:
    # Install (or retire, when the env var went away) the REPRO_OTLP_SINK
    # exporter before fan-out, so the very first traced request exports.
    with _CONSUMER_LOCK:
        env_installed = "otlp-env" in _CONSUMERS
    if env_installed or os.environ.get(OTLP_SINK_ENV, "").strip():
        try:
            from .export import ensure_env_exporter
            ensure_env_exporter()
        except Exception:  # the env exporter must never fail a request
            pass
    with _CONSUMER_LOCK:
        consumers = list(_CONSUMERS.values())
    for consumer in consumers:
        try:
            consumer(trace)
        except Exception:  # a broken consumer must never fail a request
            continue


# ---------------------------------------------------------------- JSONL files
_DUMP_LOCK = threading.Lock()


def append_jsonl(trace: Trace, path: str) -> None:
    """Append one trace to a JSONL file (whole-trace atomic per process)."""
    payload = trace.to_jsonl()
    with _DUMP_LOCK:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(payload)


def read_traces(path: str) -> List[Trace]:
    """Load every trace from a JSONL dump, in file order."""
    grouped: "Dict[str, List[dict]]" = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            item = json.loads(line)
            grouped.setdefault(str(item.get("trace_id")), []).append(item)
    return [Trace.from_dicts(items) for items in grouped.values()]
