"""Unified telemetry: structured explain traces and a central metrics registry.

Two dependency-free halves (see the module docstrings for the full story):

* :mod:`repro.obs.trace` — per-request :class:`Tracer`/:class:`Span` trees
  with a free disabled path, ambient activation via ``REPRO_TRACE`` or
  :func:`tracing`, and JSONL dump/round-trip.
* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  labeled counters/gauges/histograms (log-bucket p50/p95/p99), scrape-time
  collectors for hot module counters, and Prometheus text exposition via
  ``render_text()``.
"""

from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry, capture, default_buckets
from .trace import (
    NOOP_TRACER,
    Span,
    Trace,
    Tracer,
    append_jsonl,
    begin_request,
    current_tracer,
    end_request,
    read_traces,
    trace_path,
    tracing,
    tracing_enabled,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "capture",
    "default_buckets",
    "NOOP_TRACER",
    "Span",
    "Trace",
    "Tracer",
    "append_jsonl",
    "begin_request",
    "current_tracer",
    "end_request",
    "read_traces",
    "trace_path",
    "tracing",
    "tracing_enabled",
]
