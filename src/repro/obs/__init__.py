"""Unified telemetry: traces, metrics, export, scraping and analysis.

Five dependency-free modules (see their docstrings for the full story):

* :mod:`repro.obs.trace` — per-request :class:`Tracer`/:class:`Span` trees
  with a free disabled path, ambient activation via ``REPRO_TRACE`` or
  :func:`tracing`, JSONL dump/round-trip, and trace-consumer fan-out on
  request end.
* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  labeled counters/gauges/histograms (log-bucket p50/p95/p99), scrape-time
  collectors for hot module counters, Prometheus text exposition, the
  cross-process ``dump``/``registry_delta``/``merge`` tier, and the strict
  :func:`validate_prometheus_text` parser.
* :mod:`repro.obs.export` — OTLP-shaped span/metrics exporters over a
  bounded non-blocking queue with batch flush and retry/backoff, pluggable
  file/HTTP/callable sinks (``REPRO_OTLP_SINK``), and the
  :class:`TraceRing` of recent traces.
* :mod:`repro.obs.server` — the stdlib scrape endpoint serving
  ``/metrics``, ``/healthz`` and ``/traces`` (``REPRO_OBS_PORT``).
* :mod:`repro.obs.analyze` — critical-path extraction, self-time rollups
  and flamegraph-folded output from any trace or JSONL dump.
"""

from .analyze import TraceSummary, critical_path, folded, rollup, self_times, summarize, summarize_jsonl
from .export import (
    BatchExporter,
    FileSink,
    HTTPSink,
    MetricsExporter,
    SpanExporter,
    TraceRing,
    ensure_env_exporter,
    install_span_exporter,
    metrics_to_otlp,
    resolve_sink,
    spans_payload,
    trace_to_otlp,
    uninstall_span_exporter,
)
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    capture,
    default_buckets,
    namespace_metric,
    registry_delta,
    render_registries,
    validate_prometheus_text,
)
from .server import ObservabilityServer
from .trace import (
    NOOP_TRACER,
    Span,
    Trace,
    Tracer,
    add_trace_consumer,
    append_jsonl,
    begin_request,
    current_tracer,
    end_request,
    read_traces,
    remove_trace_consumer,
    trace_path,
    tracing,
    tracing_enabled,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "capture",
    "default_buckets",
    "namespace_metric",
    "registry_delta",
    "render_registries",
    "validate_prometheus_text",
    "NOOP_TRACER",
    "Span",
    "Trace",
    "Tracer",
    "add_trace_consumer",
    "append_jsonl",
    "begin_request",
    "current_tracer",
    "end_request",
    "read_traces",
    "remove_trace_consumer",
    "trace_path",
    "tracing",
    "tracing_enabled",
    "BatchExporter",
    "SpanExporter",
    "MetricsExporter",
    "FileSink",
    "HTTPSink",
    "TraceRing",
    "resolve_sink",
    "trace_to_otlp",
    "spans_payload",
    "metrics_to_otlp",
    "install_span_exporter",
    "uninstall_span_exporter",
    "ensure_env_exporter",
    "ObservabilityServer",
    "TraceSummary",
    "critical_path",
    "self_times",
    "rollup",
    "folded",
    "summarize",
    "summarize_jsonl",
]
