"""The central metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` holds labeled metric families behind a single
lock, so concurrent increments from service workers count exactly (``+=``
on a shared attribute silently loses updates under contention).  Families
are created on first use and type-checked on re-registration, mirroring the
Prometheus client model without the dependency:

* :class:`Counter` — monotonically increasing totals (``inc``).
* :class:`Gauge` — point-in-time values (``set``/``inc``/``dec``/``set_max``).
* :class:`Histogram` — a bounded log-bucket distribution with interpolated
  quantiles (p50/p95/p99) plus sum and count; bucket bounds default to
  powers of two from one microsecond to ~70 minutes, so request latencies
  land with ~2× resolution at every scale for a fixed 33-bucket cost.

Hot-path module counters (:data:`~repro.core.backends.process.PROCESS_STATS`,
:data:`~repro.dataframe.column.FINGERPRINT_STATS`) stay bare ``+=`` slots —
their write paths are far hotter than any scrape — and surface through
*collector callbacks* (:meth:`MetricsRegistry.register_collector`) that read
them only at scrape time.

:meth:`MetricsRegistry.render_text` emits the Prometheus text exposition
format — ``# HELP``/``# TYPE`` headers, ``name{label="v"} value`` samples,
``_bucket``/``_sum``/``_count`` for histograms — the payload a ``/metrics``
endpoint serves verbatim.

The module-level :data:`REGISTRY` aggregates process-wide signals; the
service and each cache store own their own registries, merged into one
valid exposition by :func:`render_registries` (namespaced, deduped) for
:meth:`~repro.service.service.ExplanationService.render_metrics`.

Registries also cross process boundaries: :meth:`MetricsRegistry.dump`
produces a plain picklable state, :func:`registry_delta` diffs two dumps,
and :meth:`MetricsRegistry.merge` folds a delta into another registry under
extra labels — the mechanism pool workers use to ship per-batch metrics
home (``labels={"worker": pid}``).

:func:`validate_prometheus_text` is a strict exposition-format parser used
by tests and CI to prove a scrape payload is actually ingestible.

Dependency-free (stdlib only); importable from any layer.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "default_buckets",
    "capture",
    "registry_delta",
    "render_registries",
    "namespace_metric",
    "validate_prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_buckets() -> Tuple[float, ...]:
    """Log-2 bucket bounds from 1µs to ~70 minutes (33 buckets + implicit +Inf)."""
    return tuple(1e-6 * (2.0 ** i) for i in range(33))


class Counter:
    """One monotonically increasing series (a labeled child of its family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """One point-in-time series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is larger (running maximum)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """A log-bucket distribution: bounded memory, interpolated quantiles.

    ``counts[i]`` holds observations with ``value <= bounds[i]`` (and above
    the previous bound); the final slot is the ``+Inf`` overflow.  Quantiles
    interpolate linearly inside the winning bucket, which for log-2 bounds
    keeps the estimate within ~2× of the true value — the right precision
    for latency percentiles at a fixed 33-counter cost.
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.RLock,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self._lock = lock
        chosen = tuple(bounds) if bounds is not None else default_buckets()
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {chosen}")
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """The interpolated ``q``-quantile (0 when nothing was observed)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            return _quantile(self.bounds, self.counts, self.count, q)

    def percentiles(self) -> Dict[str, float]:
        """The standard p50/p95/p99 triple."""
        with self._lock:
            return {
                "p50": _quantile(self.bounds, self.counts, self.count, 0.50),
                "p95": _quantile(self.bounds, self.counts, self.count, 0.95),
                "p99": _quantile(self.bounds, self.counts, self.count, 0.99),
            }

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def state(self) -> Tuple[List[int], float, int]:
        """An atomic ``(counts, sum, count)`` snapshot.

        Readers that pull buckets and totals separately can interleave with
        an ``observe`` and render a histogram whose ``+Inf`` cumulative
        disagrees with its ``_count`` — invalid under a strict scraper.
        """
        with self._lock:
            return list(self.counts), self.sum, self.count

    def merge_state(self, counts: Sequence[int], total_sum: float,
                    count: int) -> None:
        """Fold a dumped bucket state into this child (cross-process merge).

        Ignores payloads whose bucket count disagrees — a worker built
        against different bounds must not corrupt the parent's series.
        """
        with self._lock:
            if len(counts) != len(self.counts):
                return
            for index, bucket_count in enumerate(counts):
                self.counts[index] += bucket_count
            self.sum += total_sum
            self.count += count

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


def _quantile(bounds: Sequence[float], counts: Sequence[int],
              total: int, q: float) -> float:
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):
                # Overflow bucket: no upper bound to interpolate toward.
                return bounds[-1]
            low = bounds[index - 1] if index > 0 else 0.0
            high = bounds[index]
            fraction = (rank - (cumulative - bucket_count)) / bucket_count
            return low + (high - low) * fraction
    return bounds[-1]  # pragma: no cover - unreachable (cumulative == total)


class _MergedHistogram:
    """Read-only bucket-merge of a histogram family's children."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...], counts: List[int],
                 total_sum: float, count: int) -> None:
        self.bounds = bounds
        self.counts = counts
        self.sum = total_sum
        self.count = count

    def quantile(self, q: float) -> float:
        return _quantile(self.bounds, self.counts, self.count, q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric with labeled children (all the same kind)."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "_lock", "_children")

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...], lock: threading.RLock,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._children: "Dict[Tuple[str, ...], object]" = {}

    # ------------------------------------------------------------------ children
    def labels(self, **labels):
        """The child series for a label combination (created on first use)."""
        key = self._label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _KINDS[self.kind](self._lock)
                self._children[key] = child
            return child

    def get(self, **labels):
        """The child for a label combination, or ``None`` (no creation)."""
        with self._lock:
            return self._children.get(self._label_key(labels))

    def label_values(self) -> List[Tuple[str, ...]]:
        """Label-value tuples with an existing child, sorted."""
        with self._lock:
            return sorted(self._children)

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # ------------------------------------------ unlabeled-family conveniences
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_max(self, value: float) -> None:
        self.labels().set_max(value)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def total(self) -> float:
        """Summed value across every child (counters/gauges)."""
        with self._lock:
            return sum(child.value for child in self._children.values())

    def aggregate(self) -> _MergedHistogram:
        """Bucket-merge of every child (histogram families only)."""
        if self.kind != "histogram":
            raise ValueError(f"{self.name} is a {self.kind}, not a histogram")
        bounds = self.buckets if self.buckets is not None else default_buckets()
        counts = [0] * (len(bounds) + 1)
        total_sum = 0.0
        count = 0
        with self._lock:
            for child in self._children.values():
                for index, bucket_count in enumerate(child.counts):
                    counts[index] += bucket_count
                total_sum += child.sum
                count += child.count
        return _MergedHistogram(bounds, counts, total_sum, count)

    # ---------------------------------------------------------------- internals
    def _label_key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class MetricsRegistry:
    """Get-or-create registry of metric families plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: "Dict[str, _Family]" = {}
        self._collectors: "Dict[str, Callable[[], Iterable[tuple]]]" = {}

    # ------------------------------------------------------------ registration
    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> _Family:
        return self._family(name, "histogram", help_text, labelnames, buckets)

    def register_collector(self, key: str,
                           collect: Callable[[], Iterable[tuple]]) -> None:
        """Register a scrape-time callback by key (re-registering replaces).

        ``collect()`` yields ``(name, kind, help, value, labels)`` tuples —
        the bridge for hot module counters that must stay bare ``+=`` slots
        on their write path and are only read when someone scrapes.
        """
        with self._lock:
            self._collectors[key] = collect

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    # ----------------------------------------------------------------- queries
    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{label="v"}`` → value map (tests/debugging).

        Histograms contribute their ``_sum`` and ``_count`` series;
        collector samples are included.
        """
        payload: Dict[str, float] = {}
        for family in self.families():
            for key, child in family.children():
                series = _series_name(family.name, family.labelnames, key)
                if family.kind == "histogram":
                    payload[series + "_sum"] = child.sum
                    payload[series + "_count"] = float(child.count)
                else:
                    payload[series] = child.value
        for name, _kind, _help, value, labels in self._collect():
            label_key = tuple(str(labels[k]) for k in sorted(labels))
            payload[_series_name(name, tuple(sorted(labels)), label_key)] = value
        return payload

    def reset(self) -> None:
        """Zero every registered series (tests; collectors are untouched)."""
        with self._lock:
            for family in self._families.values():
                for _key, child in family.children():
                    child._reset()

    # ------------------------------------------------------ dump / merge (IPC)
    def dump(self) -> Dict[str, dict]:
        """The registry's state as plain picklable data (no locks, no classes).

        The shape ``registry_delta`` diffs and :meth:`merge` consumes::

            {name: {"kind", "help", "labelnames", "buckets",
                    "series": {label_values_tuple: value-or-histogram-state}}}

        Histogram states are ``{"counts": [...], "sum": s, "count": n}``;
        counters/gauges are bare floats.  Collector samples are excluded —
        they belong to the process that registered them.
        """
        payload: Dict[str, dict] = {}
        for family in self.families():
            series: Dict[Tuple[str, ...], object] = {}
            for key, child in family.children():
                if family.kind == "histogram":
                    counts, total_sum, total_count = child.state()
                    series[key] = {
                        "counts": counts,
                        "sum": total_sum,
                        "count": total_count,
                    }
                else:
                    series[key] = child.value
            payload[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "buckets": list(family.buckets) if family.buckets is not None else None,
                "series": series,
            }
        return payload

    def merge(self, payload: Dict[str, dict],
              labels: Optional[Dict[str, str]] = None) -> None:
        """Fold a :meth:`dump`/:func:`registry_delta` payload into this registry.

        ``labels`` are appended to every series (e.g. ``{"worker": "1234"}``)
        so merged foreign state stays distinguishable from local series.
        Families that clash with an existing registration (different kind or
        label set) are skipped rather than raised — a telemetry merge must
        never break its caller.
        """
        extra = {name: str(value) for name, value in (labels or {}).items()}
        extra_names = tuple(sorted(extra))
        for name, fam in (payload or {}).items():
            base_names = tuple(fam.get("labelnames") or ())
            labelnames = base_names + tuple(
                n for n in extra_names if n not in base_names
            )
            kind = fam.get("kind")
            try:
                if kind == "histogram":
                    family = self.histogram(name, fam.get("help", ""), labelnames,
                                            buckets=fam.get("buckets"))
                elif kind == "counter":
                    family = self.counter(name, fam.get("help", ""), labelnames)
                elif kind == "gauge":
                    family = self.gauge(name, fam.get("help", ""), labelnames)
                else:
                    continue
            except ValueError:
                continue
            for key, value in fam.get("series", {}).items():
                series_labels = dict(zip(base_names, key))
                for extra_name in labelnames[len(base_names):]:
                    series_labels[extra_name] = extra[extra_name]
                try:
                    child = family.labels(**series_labels)
                except ValueError:
                    continue
                if kind == "histogram":
                    child.merge_state(value.get("counts", ()),
                                      float(value.get("sum", 0.0)),
                                      int(value.get("count", 0)))
                elif kind == "counter":
                    amount = float(value)
                    if amount > 0:
                        child.inc(amount)
                else:
                    child.set(float(value))

    # --------------------------------------------------------------- rendering
    def render_text(self, rename: Optional[Callable[[str], str]] = None,
                    seen: Optional[set] = None) -> str:
        """The registry in the Prometheus text exposition format.

        ``rename`` maps each family name to its emitted name (namespacing);
        ``seen`` is a cross-registry set of already-emitted family names —
        families whose final name is in it are skipped, and every name this
        call emits is added, so concatenating several registries cannot
        produce the duplicate ``# TYPE`` blocks scrapers reject.
        """
        final = rename if rename is not None else (lambda name: name)
        lines: List[str] = []
        emitted: set = set()
        for family in self.families():
            name = final(family.name)
            if seen is not None and name in seen:
                continue
            emitted.add(name)
            _render_family_header(lines, name, family.kind, family.help)
            for key, child in family.children():
                labels = _format_labels(family.labelnames, key)
                if family.kind == "histogram":
                    counts, total_sum, total_count = child.state()
                    cumulative = 0
                    for index, bound in enumerate(child.bounds):
                        cumulative += counts[index]
                        le = _format_labels(
                            family.labelnames + ("le",), key + (_format_float(bound),)
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += counts[-1]
                    le = _format_labels(family.labelnames + ("le",), key + ("+Inf",))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(f"{name}_sum{labels} {_format_float(total_sum)}")
                    lines.append(f"{name}_count{labels} {total_count}")
                else:
                    lines.append(f"{name}{labels} {_format_float(child.value)}")
        collector_lines: Dict[str, List[str]] = {}
        collector_meta: Dict[str, Tuple[str, str]] = {}
        for raw_name, kind, help_text, value, labels in self._collect():
            name = final(raw_name)
            if name in emitted or (seen is not None and name in seen):
                continue
            collector_meta.setdefault(name, (kind, help_text))
            label_names = tuple(sorted(labels))
            label_key = tuple(str(labels[k]) for k in label_names)
            collector_lines.setdefault(name, []).append(
                f"{name}{_format_labels(label_names, label_key)} {_format_float(value)}"
            )
        for name, samples in collector_lines.items():
            kind, help_text = collector_meta[name]
            _render_family_header(lines, name, kind, help_text)
            lines.extend(samples)
            emitted.add(name)
        if seen is not None:
            seen.update(emitted)
        return "\n".join(lines) + ("\n" if lines else "")

    # ---------------------------------------------------------------- internals
    def _family(self, name: str, kind: str, help_text: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, names, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != names:
                raise ValueError(
                    f"metric {name} already registered as {family.kind}"
                    f"{family.labelnames}, requested {kind}{names}"
                )
            return family

    def _collect(self) -> List[tuple]:
        with self._lock:
            collectors = list(self._collectors.values())
        samples: List[tuple] = []
        for collect in collectors:
            try:
                samples.extend(collect())
            except Exception:  # a broken collector must never break a scrape
                continue
        return samples


def _render_family_header(lines: List[str], name: str, kind: str,
                          help_text: str) -> None:
    if help_text:
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
    lines.append(f"# TYPE {name} {kind}")


def _series_name(name: str, labelnames: Tuple[str, ...],
                 values: Tuple[str, ...]) -> str:
    return name + _format_labels(labelnames, values)


def _format_labels(labelnames: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ------------------------------------------------------- cross-process deltas
def registry_delta(before: Dict[str, dict],
                   after: Dict[str, dict]) -> Dict[str, dict]:
    """The difference between two :meth:`MetricsRegistry.dump` snapshots.

    Counters and histograms diff arithmetically (series with a zero delta
    are dropped, so a quiet batch ships nothing); gauges are point-in-time
    and carry the ``after`` value only when it changed.  The result has the
    same shape as a dump and feeds :meth:`MetricsRegistry.merge`.
    """
    delta: Dict[str, dict] = {}
    for name, fam in after.items():
        prior = before.get(name) or {}
        prior_series = prior.get("series", {})
        series: Dict[Tuple[str, ...], object] = {}
        for key, value in fam.get("series", {}).items():
            prev = prior_series.get(key)
            if fam["kind"] == "histogram":
                if prev is None:
                    diff = {
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                else:
                    diff = {
                        "counts": [a - b for a, b in
                                   zip(value["counts"], prev["counts"])],
                        "sum": value["sum"] - prev["sum"],
                        "count": value["count"] - prev["count"],
                    }
                if diff["count"]:
                    series[key] = diff
            elif fam["kind"] == "counter":
                diff_value = float(value) - float(prev or 0.0)
                if diff_value:
                    series[key] = diff_value
            else:  # gauge
                if prev is None or value != prev:
                    series[key] = value
        if series:
            entry = dict(fam)
            entry["series"] = series
            delta[name] = entry
    return delta


# ------------------------------------------------- multi-registry exposition
def namespace_metric(namespace: str, name: str) -> str:
    """``name`` prefixed into the ``repro_<namespace>_`` namespace.

    Names already carrying the target prefix pass through unchanged, so
    well-named families (``repro_service_requests_total`` in the service
    registry) keep their historical identity; anything else is re-rooted
    (``requests_total`` in the store registry → ``repro_store_requests_total``).
    """
    prefix = "repro_" if namespace in ("", "repro") else f"repro_{namespace}_"
    if name.startswith(prefix):
        return name
    if name.startswith("repro_"):
        return prefix + name[len("repro_"):]
    return prefix + name


def render_registries(parts: Sequence[Tuple[str, "MetricsRegistry"]]) -> str:
    """Several registries as ONE valid Prometheus exposition.

    ``parts`` is ``[(namespace, registry), ...]``; each registry's families
    are renamed via :func:`namespace_metric` and deduped across the whole
    payload (first occurrence wins), fixing the duplicate-family blocks a
    naive concatenation produces when two registries share a metric name.
    """
    chunks: List[str] = []
    seen: set = set()
    for namespace, registry in parts:
        text = registry.render_text(
            rename=lambda name, ns=namespace: namespace_metric(ns, name),
            seen=seen,
        )
        if text:
            chunks.append(text)
    return "".join(chunks)


# ----------------------------------------------------- strict scrape parsing
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _split_label_body(body: str) -> List[Tuple[str, str]]:
    """``a="x",b="y"`` → pairs, honouring escaped quotes inside values."""
    pairs: List[Tuple[str, str]] = []
    index = 0
    while index < len(body):
        match = re.match(r'[a-zA-Z_][a-zA-Z0-9_]*="', body[index:])
        if not match:
            raise ValueError(f"malformed label body at offset {index}: {body!r}")
        end = index + match.end()
        while end < len(body):
            if body[end] == "\\":
                end += 2
                continue
            if body[end] == '"':
                break
            end += 1
        if end >= len(body):
            raise ValueError(f"unterminated label value: {body!r}")
        pair = body[index:end + 1]
        parsed = _LABEL_PAIR_RE.match(pair)
        if not parsed:
            raise ValueError(f"malformed label pair: {pair!r}")
        pairs.append((parsed.group("name"), parsed.group("value")))
        index = end + 1
        if index < len(body):
            if body[index] != ",":
                raise ValueError(f"expected ',' between labels: {body!r}")
            index += 1
    return pairs


def _parse_sample_value(text: str) -> float:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def validate_prometheus_text(text: str) -> Dict[str, str]:
    """Strictly parse a Prometheus text exposition; ``{family: kind}`` on success.

    Raises :class:`ValueError` on anything a real scraper would reject or
    misread: malformed lines or labels, a family declared by ``# TYPE``
    more than once, samples appearing before their ``# TYPE``, interleaved
    family groups, duplicate series, and histogram inconsistencies
    (missing ``+Inf`` bucket, non-cumulative buckets, ``_count`` disagreeing
    with the ``+Inf`` bucket, missing ``_sum``/``_count``).  This is the
    checker CI runs against the live ``/metrics`` payload.
    """
    kinds: Dict[str, str] = {}
    closed: set = set()          # families whose sample group has ended
    current: Optional[str] = None
    seen_series: set = set()
    histograms: Dict[str, dict] = {}

    def family_of(name: str) -> str:
        for base, kind in kinds.items():
            if kind == "histogram" and name.startswith(base) and \
                    name[len(base):] in _HISTOGRAM_SUFFIXES:
                return base
        return name

    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) < 3 or fields[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            name = fields[2]
            if fields[1] == "TYPE":
                kind = fields[3].strip() if len(fields) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValueError(
                        f"line {line_number}: invalid TYPE {kind!r} for {name}")
                if name in kinds:
                    raise ValueError(
                        f"line {line_number}: duplicate TYPE for family {name}")
                if name in closed or name == current:
                    raise ValueError(
                        f"line {line_number}: TYPE for {name} after its samples")
                kinds[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: malformed sample: {line!r}")
        sample_name = match.group("name")
        label_body = match.group("labels")
        pairs = _split_label_body(label_body) if label_body else []
        label_names = [name for name, _ in pairs]
        if len(set(label_names)) != len(label_names):
            raise ValueError(
                f"line {line_number}: duplicate label name in {line!r}")
        try:
            value = _parse_sample_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {line_number}: unparseable value in {line!r}") from None
        base = family_of(sample_name)
        if base not in kinds:
            raise ValueError(
                f"line {line_number}: sample for {sample_name} before its TYPE")
        if base != current:
            if base in closed:
                raise ValueError(
                    f"line {line_number}: family {base} interleaved with others")
            if current is not None:
                closed.add(current)
            current = base
        series_key = (sample_name, tuple(sorted(pairs)))
        if series_key in seen_series:
            raise ValueError(
                f"line {line_number}: duplicate series {sample_name}"
                f"{dict(pairs)}")
        seen_series.add(series_key)
        if kinds[base] == "histogram":
            suffix = sample_name[len(base):]
            if suffix not in _HISTOGRAM_SUFFIXES:
                raise ValueError(
                    f"line {line_number}: stray sample {sample_name} in "
                    f"histogram family {base}")
            labels = dict(pairs)
            series_id = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            state = histograms.setdefault(base, {}).setdefault(
                series_id, {"buckets": [], "sum": None, "count": None})
            if suffix == "_bucket":
                if "le" not in labels:
                    raise ValueError(
                        f"line {line_number}: histogram bucket without le label")
                state["buckets"].append(
                    (_parse_sample_value(labels["le"]), value))
            elif suffix == "_sum":
                state["sum"] = value
            else:
                state["count"] = value
    for base, series in histograms.items():
        for series_id, state in series.items():
            buckets = state["buckets"]
            if not buckets:
                raise ValueError(f"histogram {base}{dict(series_id)}: no buckets")
            bounds = [bound for bound, _ in buckets]
            if bounds != sorted(bounds):
                raise ValueError(
                    f"histogram {base}{dict(series_id)}: le bounds not sorted")
            counts = [count for _, count in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    f"histogram {base}{dict(series_id)}: buckets not cumulative")
            if bounds[-1] != float("inf"):
                raise ValueError(
                    f"histogram {base}{dict(series_id)}: missing +Inf bucket")
            if state["count"] is None or state["sum"] is None:
                raise ValueError(
                    f"histogram {base}{dict(series_id)}: missing _sum/_count")
            if state["count"] != counts[-1]:
                raise ValueError(
                    f"histogram {base}{dict(series_id)}: _count "
                    f"{state['count']} != +Inf bucket {counts[-1]}")
    return kinds


#: The process-wide registry: module counters (fingerprints, process pool)
#: register collectors here; per-service and per-store registries are
#: separate and concatenated at scrape time.
REGISTRY = MetricsRegistry()


# ------------------------------------------------------------- delta capture
class _Capture:
    """A before-snapshot of a stats object, resolvable to a delta."""

    __slots__ = ("_stats", "_before")

    def __init__(self, stats) -> None:
        self._stats = stats
        self._before = stats.snapshot()

    def delta(self) -> dict:
        return self._stats.delta(self._before)


@contextmanager
def capture(stats) -> Iterator[_Capture]:
    """Scoped before/after deltas over any stats object with ``snapshot()``/``delta()``.

    ::

        with capture(PROCESS_STATS) as probe:
            run_workload()
        assert probe.delta()["shards_completed"] > 0

    Replaces the ad-hoc before/after arithmetic module-global counters
    otherwise force on callers (the counters bleed across tests).
    """
    yield _Capture(stats)
