"""The central metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` holds labeled metric families behind a single
lock, so concurrent increments from service workers count exactly (``+=``
on a shared attribute silently loses updates under contention).  Families
are created on first use and type-checked on re-registration, mirroring the
Prometheus client model without the dependency:

* :class:`Counter` — monotonically increasing totals (``inc``).
* :class:`Gauge` — point-in-time values (``set``/``inc``/``dec``/``set_max``).
* :class:`Histogram` — a bounded log-bucket distribution with interpolated
  quantiles (p50/p95/p99) plus sum and count; bucket bounds default to
  powers of two from one microsecond to ~70 minutes, so request latencies
  land with ~2× resolution at every scale for a fixed 33-bucket cost.

Hot-path module counters (:data:`~repro.core.backends.process.PROCESS_STATS`,
:data:`~repro.dataframe.column.FINGERPRINT_STATS`) stay bare ``+=`` slots —
their write paths are far hotter than any scrape — and surface through
*collector callbacks* (:meth:`MetricsRegistry.register_collector`) that read
them only at scrape time.

:meth:`MetricsRegistry.render_text` emits the Prometheus text exposition
format — ``# HELP``/``# TYPE`` headers, ``name{label="v"} value`` samples,
``_bucket``/``_sum``/``_count`` for histograms — the payload a ``/metrics``
endpoint serves verbatim.

The module-level :data:`REGISTRY` aggregates process-wide signals; the
service and each cache store own their own registries (concatenated by
:meth:`~repro.service.service.ExplanationService.render_metrics`).

Dependency-free (stdlib only); importable from any layer.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "default_buckets",
    "capture",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_buckets() -> Tuple[float, ...]:
    """Log-2 bucket bounds from 1µs to ~70 minutes (33 buckets + implicit +Inf)."""
    return tuple(1e-6 * (2.0 ** i) for i in range(33))


class Counter:
    """One monotonically increasing series (a labeled child of its family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """One point-in-time series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is larger (running maximum)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """A log-bucket distribution: bounded memory, interpolated quantiles.

    ``counts[i]`` holds observations with ``value <= bounds[i]`` (and above
    the previous bound); the final slot is the ``+Inf`` overflow.  Quantiles
    interpolate linearly inside the winning bucket, which for log-2 bounds
    keeps the estimate within ~2× of the true value — the right precision
    for latency percentiles at a fixed 33-counter cost.
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, lock: threading.RLock,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self._lock = lock
        chosen = tuple(bounds) if bounds is not None else default_buckets()
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {chosen}")
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """The interpolated ``q``-quantile (0 when nothing was observed)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            return _quantile(self.bounds, self.counts, self.count, q)

    def percentiles(self) -> Dict[str, float]:
        """The standard p50/p95/p99 triple."""
        with self._lock:
            return {
                "p50": _quantile(self.bounds, self.counts, self.count, 0.50),
                "p95": _quantile(self.bounds, self.counts, self.count, 0.95),
                "p99": _quantile(self.bounds, self.counts, self.count, 0.99),
            }

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


def _quantile(bounds: Sequence[float], counts: Sequence[int],
              total: int, q: float) -> float:
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):
                # Overflow bucket: no upper bound to interpolate toward.
                return bounds[-1]
            low = bounds[index - 1] if index > 0 else 0.0
            high = bounds[index]
            fraction = (rank - (cumulative - bucket_count)) / bucket_count
            return low + (high - low) * fraction
    return bounds[-1]  # pragma: no cover - unreachable (cumulative == total)


class _MergedHistogram:
    """Read-only bucket-merge of a histogram family's children."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...], counts: List[int],
                 total_sum: float, count: int) -> None:
        self.bounds = bounds
        self.counts = counts
        self.sum = total_sum
        self.count = count

    def quantile(self, q: float) -> float:
        return _quantile(self.bounds, self.counts, self.count, q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric with labeled children (all the same kind)."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "_lock", "_children")

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...], lock: threading.RLock,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._children: "Dict[Tuple[str, ...], object]" = {}

    # ------------------------------------------------------------------ children
    def labels(self, **labels):
        """The child series for a label combination (created on first use)."""
        key = self._label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _KINDS[self.kind](self._lock)
                self._children[key] = child
            return child

    def get(self, **labels):
        """The child for a label combination, or ``None`` (no creation)."""
        with self._lock:
            return self._children.get(self._label_key(labels))

    def label_values(self) -> List[Tuple[str, ...]]:
        """Label-value tuples with an existing child, sorted."""
        with self._lock:
            return sorted(self._children)

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # ------------------------------------------ unlabeled-family conveniences
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_max(self, value: float) -> None:
        self.labels().set_max(value)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def total(self) -> float:
        """Summed value across every child (counters/gauges)."""
        with self._lock:
            return sum(child.value for child in self._children.values())

    def aggregate(self) -> _MergedHistogram:
        """Bucket-merge of every child (histogram families only)."""
        if self.kind != "histogram":
            raise ValueError(f"{self.name} is a {self.kind}, not a histogram")
        bounds = self.buckets if self.buckets is not None else default_buckets()
        counts = [0] * (len(bounds) + 1)
        total_sum = 0.0
        count = 0
        with self._lock:
            for child in self._children.values():
                for index, bucket_count in enumerate(child.counts):
                    counts[index] += bucket_count
                total_sum += child.sum
                count += child.count
        return _MergedHistogram(bounds, counts, total_sum, count)

    # ---------------------------------------------------------------- internals
    def _label_key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class MetricsRegistry:
    """Get-or-create registry of metric families plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: "Dict[str, _Family]" = {}
        self._collectors: "Dict[str, Callable[[], Iterable[tuple]]]" = {}

    # ------------------------------------------------------------ registration
    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> _Family:
        return self._family(name, "histogram", help_text, labelnames, buckets)

    def register_collector(self, key: str,
                           collect: Callable[[], Iterable[tuple]]) -> None:
        """Register a scrape-time callback by key (re-registering replaces).

        ``collect()`` yields ``(name, kind, help, value, labels)`` tuples —
        the bridge for hot module counters that must stay bare ``+=`` slots
        on their write path and are only read when someone scrapes.
        """
        with self._lock:
            self._collectors[key] = collect

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    # ----------------------------------------------------------------- queries
    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{label="v"}`` → value map (tests/debugging).

        Histograms contribute their ``_sum`` and ``_count`` series;
        collector samples are included.
        """
        payload: Dict[str, float] = {}
        for family in self.families():
            for key, child in family.children():
                series = _series_name(family.name, family.labelnames, key)
                if family.kind == "histogram":
                    payload[series + "_sum"] = child.sum
                    payload[series + "_count"] = float(child.count)
                else:
                    payload[series] = child.value
        for name, _kind, _help, value, labels in self._collect():
            label_key = tuple(str(labels[k]) for k in sorted(labels))
            payload[_series_name(name, tuple(sorted(labels)), label_key)] = value
        return payload

    def reset(self) -> None:
        """Zero every registered series (tests; collectors are untouched)."""
        with self._lock:
            for family in self._families.values():
                for _key, child in family.children():
                    child._reset()

    # --------------------------------------------------------------- rendering
    def render_text(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            _render_family_header(lines, family.name, family.kind, family.help)
            for key, child in family.children():
                labels = _format_labels(family.labelnames, key)
                if family.kind == "histogram":
                    cumulative = 0
                    for index, bound in enumerate(child.bounds):
                        cumulative += child.counts[index]
                        le = _format_labels(
                            family.labelnames + ("le",), key + (_format_float(bound),)
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    cumulative += child.counts[-1]
                    le = _format_labels(family.labelnames + ("le",), key + ("+Inf",))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(f"{family.name}_sum{labels} {_format_float(child.sum)}")
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(f"{family.name}{labels} {_format_float(child.value)}")
        rendered_headers = {family.name for family in self.families()}
        for name, kind, help_text, value, labels in self._collect():
            if name not in rendered_headers:
                _render_family_header(lines, name, kind, help_text)
                rendered_headers.add(name)
            label_names = tuple(sorted(labels))
            label_key = tuple(str(labels[k]) for k in label_names)
            lines.append(
                f"{name}{_format_labels(label_names, label_key)} {_format_float(value)}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    # ---------------------------------------------------------------- internals
    def _family(self, name: str, kind: str, help_text: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, names, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != names:
                raise ValueError(
                    f"metric {name} already registered as {family.kind}"
                    f"{family.labelnames}, requested {kind}{names}"
                )
            return family

    def _collect(self) -> List[tuple]:
        with self._lock:
            collectors = list(self._collectors.values())
        samples: List[tuple] = []
        for collect in collectors:
            try:
                samples.extend(collect())
            except Exception:  # a broken collector must never break a scrape
                continue
        return samples


def _render_family_header(lines: List[str], name: str, kind: str,
                          help_text: str) -> None:
    if help_text:
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
    lines.append(f"# TYPE {name} {kind}")


def _series_name(name: str, labelnames: Tuple[str, ...],
                 values: Tuple[str, ...]) -> str:
    return name + _format_labels(labelnames, values)


def _format_labels(labelnames: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-wide registry: module counters (fingerprints, process pool)
#: register collectors here; per-service and per-store registries are
#: separate and concatenated at scrape time.
REGISTRY = MetricsRegistry()


# ------------------------------------------------------------- delta capture
class _Capture:
    """A before-snapshot of a stats object, resolvable to a delta."""

    __slots__ = ("_stats", "_before")

    def __init__(self, stats) -> None:
        self._stats = stats
        self._before = stats.snapshot()

    def delta(self) -> dict:
        return self._stats.delta(self._before)


@contextmanager
def capture(stats) -> Iterator[_Capture]:
    """Scoped before/after deltas over any stats object with ``snapshot()``/``delta()``.

    ::

        with capture(PROCESS_STATS) as probe:
            run_workload()
        assert probe.delta()["shards_completed"] > 0

    Replaces the ad-hoc before/after arithmetic module-global counters
    otherwise force on callers (the counters bleed across tests).
    """
    yield _Capture(stats)
