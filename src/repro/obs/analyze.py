"""Trace analysis: critical path, self-time rollups, flamegraph folding.

A finished :class:`~repro.obs.trace.Trace` is a flat span list; this module
turns it into the three artefacts people actually read:

* **critical path** — from the heaviest root, repeatedly descend into the
  child with the largest wall time: the chain of spans that bounds the
  request's latency.  Shaving anything off-path cannot make the request
  faster.
* **self-time rollup** — per span *name*, the wall time not accounted for
  by child spans (clamped at zero: parallel children can overlap their
  parent), aggregated across the trace.  This is "where the time actually
  went", not "what was on the stack".
* **folded stacks** — ``root;child;leaf <self-µs>`` lines, the input format
  of ``flamegraph.pl`` and speedscope, so any dumped trace renders as a
  flamegraph with standard tooling.

:func:`summarize` bundles the three into a :class:`TraceSummary` (also
reachable as :meth:`ExplanationReport.trace_summary()
<repro.core.engine.ExplanationReport.trace_summary>`);
:func:`summarize_jsonl` runs it over every trace in a ``REPRO_TRACE`` dump.

Aggregated event spans (``is_event``) carry counts, not durations — they
appear in the rollup with zero time and are excluded from the critical path
and the folded output.

Spans grafted from worker processes keep worker-relative offsets, so only
durations (never ``started_s``) enter any computation here.

Stdlib only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .trace import Span, Trace, read_traces

__all__ = [
    "PathStep",
    "TraceSummary",
    "critical_path",
    "self_times",
    "rollup",
    "folded",
    "summarize",
    "summarize_jsonl",
]


@dataclass
class PathStep:
    """One span on the critical path."""

    name: str
    span_id: int
    wall_s: float
    self_s: float

    def to_dict(self) -> dict:
        return {"name": self.name, "span_id": self.span_id,
                "wall_s": self.wall_s, "self_s": self.self_s}


@dataclass
class TraceSummary:
    """The analysis bundle of one trace."""

    trace_id: str
    total_wall_s: float
    critical_path: List[PathStep]
    rollup: List[dict]
    folded: str = field(repr=False, default="")

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "total_wall_s": self.total_wall_s,
            "critical_path": [step.to_dict() for step in self.critical_path],
            "rollup": list(self.rollup),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str)

    def render_text(self) -> str:
        """Human-readable summary: path first, then the hottest names."""
        lines = [f"trace {self.trace_id} — {self.total_wall_s * 1e3:.1f}ms total"]
        lines.append("critical path:")
        for step in self.critical_path:
            lines.append(
                f"  {step.name} {step.wall_s * 1e3:.1f}ms"
                f" (self {step.self_s * 1e3:.1f}ms)"
            )
        lines.append("hot spans (by self time):")
        for entry in self.rollup[:10]:
            lines.append(
                f"  {entry['name']}: self {entry['self_s'] * 1e3:.1f}ms"
                f" / total {entry['total_s'] * 1e3:.1f}ms ×{entry['count']}"
            )
        return "\n".join(lines)


def _tree(trace: Trace) -> Tuple[Dict[Optional[int], List[Span]], List[Span]]:
    """``(children-by-parent-id, roots)`` — unknown parents count as roots."""
    known = {span.span_id for span in trace.spans}
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in trace.spans:
        parent = span.parent_id if span.parent_id in known else None
        by_parent.setdefault(parent, []).append(span)
    return by_parent, by_parent.get(None, [])


def self_times(trace: Trace) -> Dict[int, float]:
    """Per-span self wall time: own duration minus timed children, floor 0.

    The floor matters: a batch span whose children ran on parallel workers
    can have child durations summing past its own wall time.
    """
    by_parent, _roots = _tree(trace)
    times: Dict[int, float] = {}
    for span in trace.spans:
        if span.is_event:
            times[span.span_id] = 0.0
            continue
        child_wall = sum(child.wall_s
                         for child in by_parent.get(span.span_id, ())
                         if not child.is_event)
        times[span.span_id] = max(0.0, span.wall_s - child_wall)
    return times


def critical_path(trace: Trace) -> List[PathStep]:
    """The heaviest root-to-leaf chain by wall time (events excluded)."""
    by_parent, roots = _tree(trace)
    selves = self_times(trace)
    timed_roots = [span for span in roots if not span.is_event]
    if not timed_roots:
        return []
    path: List[PathStep] = []
    span = max(timed_roots, key=lambda s: (s.wall_s, -s.span_id))
    while span is not None:
        path.append(PathStep(span.name, span.span_id, span.wall_s,
                             selves.get(span.span_id, span.wall_s)))
        children = [child for child in by_parent.get(span.span_id, ())
                    if not child.is_event]
        span = (max(children, key=lambda s: (s.wall_s, -s.span_id))
                if children else None)
    return path


def rollup(trace: Trace) -> List[dict]:
    """Per-name aggregates sorted by self time (descending, then name).

    Each entry: ``{"name", "count", "total_s", "self_s"}``.  Event spans
    contribute their occurrence counts with zero time.
    """
    selves = self_times(trace)
    grouped: Dict[str, dict] = {}
    for span in trace.spans:
        entry = grouped.setdefault(
            span.name, {"name": span.name, "count": 0,
                        "total_s": 0.0, "self_s": 0.0})
        entry["count"] += (span.attrs.get("count", 1) if span.is_event else 1)
        entry["total_s"] += span.wall_s
        entry["self_s"] += selves.get(span.span_id, 0.0)
    return sorted(grouped.values(),
                  key=lambda e: (-e["self_s"], -e["total_s"], e["name"]))


def folded(trace: Trace) -> str:
    """Flamegraph-folded stacks: ``a;b;c <self-microseconds>`` per line.

    Identical stacks merge; zero-self-time frames are kept only when they
    are leaves (so the hierarchy is still visible in the graph).
    """
    by_parent, roots = _tree(trace)
    selves = self_times(trace)
    stacks: Dict[str, int] = {}

    def walk(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.name}" if prefix else span.name
        weight = int(round(selves.get(span.span_id, 0.0) * 1e6))
        children = [child for child in by_parent.get(span.span_id, ())
                    if not child.is_event]
        if weight > 0 or not children:
            stacks[stack] = stacks.get(stack, 0) + weight
        for child in children:
            walk(child, stack)

    for root in roots:
        if not root.is_event:
            walk(root, "")
    return "".join(f"{stack} {weight}\n"
                   for stack, weight in sorted(stacks.items()))


def summarize(trace: Trace) -> TraceSummary:
    """The full analysis bundle for one trace."""
    path = critical_path(trace)
    total = path[0].wall_s if path else 0.0
    return TraceSummary(
        trace_id=trace.trace_id,
        total_wall_s=total,
        critical_path=path,
        rollup=rollup(trace),
        folded=folded(trace),
    )


def summarize_jsonl(path: str) -> List[TraceSummary]:
    """Summaries for every trace in a ``REPRO_TRACE`` JSONL dump, file order."""
    return [summarize(trace) for trace in read_traces(path)]
