"""Multi-tenant explanation serving: one process, many sessions, one store.

The serving stack, bottom to top:

* :class:`~repro.session.store.CacheStore` — shared, thread-safe,
  byte-budgeted LRU store with per-tenant quotas and snapshot persistence;
* :class:`~repro.session.ExplanationSession` — one lightweight per-tenant
  view over the store;
* :class:`ExplanationService` — the concurrent front end: worker pool,
  per-tenant admission control, request/latency metrics, and
  ``service.open(tenant, frame)`` returning a tenant-routed
  :class:`~repro.explain.explainable.ExplainableDataFrame`.
"""

from ..core.config import DEFAULT_CACHE_BUDGET_BYTES, DEFAULT_SERVICE_WORKERS, ServiceConfig
from ..errors import ServiceError, ServiceOverloadError
from .metrics import ServiceMetrics
from .service import ExplanationService

__all__ = [
    "DEFAULT_CACHE_BUDGET_BYTES",
    "DEFAULT_SERVICE_WORKERS",
    "ExplanationService",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadError",
]
