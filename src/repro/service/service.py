"""The multi-tenant explanation service front end.

:class:`ExplanationService` is the ROADMAP's serving shape: **one process,
many tenants, one shared cache, bounded memory**.  It composes the pieces
the lower layers provide —

* a shared :class:`~repro.session.store.CacheStore` (byte-budgeted,
  RW-locked, per-tenant quotas, request coalescing),
* one lightweight :class:`~repro.session.ExplanationSession` view per
  tenant (lazy, engine pool shared per configuration, thread-safe),
* a worker thread pool executing explanation requests,

— and adds what only the front end can know: per-tenant admission control
(bound the number of requests one tenant may have in flight; block or shed
the excess) and request/latency metrics.

Usage::

    from repro.service import ExplanationService

    service = ExplanationService()                   # defaults: 4 workers
    songs = service.open("alice", load_spotify())    # tenant-routed wrapper
    popular = songs.filter(Comparison("popularity", ">", 65))
    print(popular.explain().render_text())           # admission -> pool -> cache

    future = service.submit("bob", step)             # async request
    report = future.result()

    service.stats()                                  # requests, latency, hit rate
    service.close()

The front end runs on threads: the hot paths are NumPy kernels that
release the GIL, and every worker shares the store's memoized structure
for free.  For Python-heavy contribution grids the engine itself can fan
out further — a service configured with
``FedexConfig(backend="process", workers=N)`` shards each request's
partition × attribute grid across a process pool, and datasets opened via
:meth:`open_dataset` cross that boundary as mmap frame descriptors (the
workers map the same pages the service serves every tenant from; see
:mod:`repro.core.backends.process`).  Do not call :meth:`explain` from
*inside* a worker (it would wait on its own pool); compose steps first,
then submit.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Optional

from ..core.config import FedexConfig, ServiceConfig
from ..core.engine import ExplanationReport
from ..core.interestingness import MeasureRegistry
from ..dataframe.frame import DataFrame
from ..errors import ServiceError, ServiceOverloadError
from ..explain.explainable import ExplainableDataFrame
from ..obs.metrics import REGISTRY as _GLOBAL_REGISTRY
from ..obs.metrics import render_registries
from ..operators.step import ExploratoryStep
from ..session import CacheStore, ExplanationSession
from .metrics import ServiceMetrics


class _TenantBinding:
    """Session-shaped handle routing a tenant's explains through the service.

    :class:`~repro.explain.explainable.ExplainableDataFrame` only needs an
    object with ``explain(step, measure=..., config=...)``; binding the
    tenant here keeps the wrapper API identical whether it was opened from
    a plain session or from a service — but service-opened wrappers pass
    through admission control and metrics.
    """

    __slots__ = ("_service", "_tenant")

    def __init__(self, service: "ExplanationService", tenant: str) -> None:
        self._service = service
        self._tenant = tenant

    def explain(self, step: ExploratoryStep, measure: str | None = None,
                config: FedexConfig | None = None) -> ExplanationReport:
        return self._service.explain(self._tenant, step, measure=measure, config=config)


class ExplanationService:
    """Serves explanation requests for many concurrent tenants.

    Parameters
    ----------
    config:
        Default :class:`~repro.core.config.FedexConfig` of every tenant
        session (individual requests may override it).
    service_config:
        The serving knobs (:class:`~repro.core.config.ServiceConfig`):
        cache budget, per-tenant quotas, worker count, admission policy.
    store:
        An existing shared store — e.g. one rebuilt from a
        :meth:`~repro.session.store.CacheStore.save` snapshot so the
        service starts warm.  Built from ``service_config`` by default.
    registry:
        Optional measure registry shared by every tenant session.  Note
        that a custom registry keys reports under a process-local
        environment token, which disables cross-restart report reuse.
    dataset_store:
        Optional :class:`~repro.storage.store.DatasetStore` (or a path to
        one) of named on-disk datasets.  :meth:`open_dataset` then serves
        any stored dataset to any tenant as an mmap-backed frame — one
        physical copy of the data per process, however many tenants
        explore it.
    """

    def __init__(self, config: FedexConfig | None = None,
                 service_config: ServiceConfig | None = None,
                 store: CacheStore | None = None,
                 registry: MeasureRegistry | None = None,
                 dataset_store=None) -> None:
        self.config = config or FedexConfig()
        self.service_config = service_config or ServiceConfig()
        if store is None:
            store = CacheStore(
                budget_bytes=self.service_config.cache_budget_bytes,
                tenant_quota_bytes=self.service_config.tenant_quota_bytes,
            )
        self.store = store
        if isinstance(dataset_store, str) or hasattr(dataset_store, "__fspath__"):
            from ..storage.store import DatasetStore

            dataset_store = DatasetStore(dataset_store)
        self.dataset_store = dataset_store
        self.metrics = ServiceMetrics()
        self.metrics.registry.register_collector(
            "service_store", self._collect_store_metrics)
        self._registry = registry
        self._sessions: Dict[str, ExplanationSession] = {}
        self._admission: Dict[str, threading.Semaphore] = {}
        self._state_lock = threading.Lock()
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=self.service_config.workers,
            thread_name_prefix="fedex-service",
        )
        self._obs_server = None
        self._obs_consumer_key: Optional[str] = None
        self._obs_exporter = None
        if os.environ.get("REPRO_OBS_PORT", "").strip():
            # Zero-code observability: REPRO_OBS_PORT=<port> serves this
            # service's /metrics, /healthz and /traces on construction.  A
            # bind failure (port taken by another replica) must not take
            # the service down with it.
            try:
                self.attach_observability()
            except OSError:
                pass

    # ------------------------------------------------------------------ public
    def open(self, tenant: str, frame: DataFrame,
             config: FedexConfig | None = None) -> ExplainableDataFrame:
        """Wrap a dataframe so every ``explain()`` routes through this service.

        The returned wrapper records operations exactly like
        ``session.open(...)``; its explains carry the tenant identity, so
        they pass admission control, are charged to the tenant's quota, and
        appear in the tenant's metrics.
        """
        return ExplainableDataFrame(
            frame, config=config or self.config, session=_TenantBinding(self, tenant)
        )

    def open_dataset(self, tenant: str, name: str,
                     config: FedexConfig | None = None) -> ExplainableDataFrame:
        """Open a *named* stored dataset for a tenant (see ``dataset_store``).

        Every tenant opening the same name shares the dataset's mmap-backed
        buffers and column structure caches — the per-process single copy
        the multi-tenant story needs — while the returned wrapper routes
        that tenant's explains through admission control and metrics like
        :meth:`open`.  Because stored columns carry persisted fingerprints,
        the shared cache keys of the frame cost no hashing at all.
        """
        if self.dataset_store is None:
            raise ServiceError(
                "this service has no dataset store; pass dataset_store= to "
                "ExplanationService to serve named datasets"
            )
        return self.open(tenant, self.dataset_store.open(name), config=config)

    def submit(self, tenant: str, step: ExploratoryStep, measure: str | None = None,
               config: FedexConfig | None = None,
               progress=None) -> "Future[ExplanationReport]":
        """Enqueue one explanation request; returns a future for the report.

        The request first passes the tenant's admission bound
        (``max_inflight_per_tenant``): beyond it, ``admission="block"``
        waits for one of the tenant's slots, ``admission="reject"`` raises
        :class:`~repro.errors.ServiceOverloadError` immediately.

        ``progress`` is an optional callable invoked from the worker thread
        with partial-result events while the request computes (see
        :meth:`FedexExplainer.explain <repro.core.engine.FedexExplainer.explain>`);
        cached reports emit no events.  The serving layer uses it to stream
        NDJSON chunks while later shards are still computing.
        """
        if self._closed:
            raise ServiceError("the explanation service has been closed")
        gate = self._admission_gate(tenant)
        if gate is not None:
            blocking = self.service_config.admission == "block"
            if not gate.acquire(blocking=blocking):
                self.metrics.record_rejected(tenant)
                raise ServiceOverloadError(
                    f"tenant {tenant!r} exceeded its in-flight bound of "
                    f"{self.service_config.max_inflight_per_tenant} requests"
                )
        # Everything between acquiring the admission slot and handing the
        # request to the pool runs under one guard: a session constructor
        # failure or a shut-down executor must release the slot (and close
        # the admitted-request accounting), never leak it.
        admitted = False
        try:
            session = self.session(tenant)
            self.metrics.record_admitted(tenant)
            admitted = True

            def run() -> ExplanationReport:
                start = time.perf_counter()
                kwargs = {} if progress is None else {"progress": progress}
                try:
                    report = session.explain(step, measure=measure, config=config,
                                             **kwargs)
                except Exception:
                    self.metrics.record_completed(tenant, time.perf_counter() - start,
                                                  error=True)
                    raise
                self.metrics.record_completed(tenant, time.perf_counter() - start)
                return report

            future = self._executor.submit(run)
        except BaseException:
            if admitted:
                self.metrics.record_submit_failed(tenant)
            if gate is not None:
                gate.release()
            raise
        if gate is not None:
            future.add_done_callback(lambda _future: gate.release())
        return future

    def explain(self, tenant: str, step: ExploratoryStep, measure: str | None = None,
                config: FedexConfig | None = None,
                progress=None) -> ExplanationReport:
        """Synchronous :meth:`submit` — admission, pool, metrics included."""
        return self.submit(tenant, step, measure=measure, config=config,
                           progress=progress).result()

    def session(self, tenant: str) -> ExplanationSession:
        """The tenant's session view over the shared store (created lazily)."""
        session = self._sessions.get(tenant)
        if session is None:
            with self._state_lock:
                session = self._sessions.get(tenant)
                if session is None:
                    session = ExplanationSession(
                        config=self.config, registry=self._registry,
                        store=self.store, tenant=tenant,
                    )
                    self._sessions[tenant] = session
        return session

    def tenants(self) -> list:
        """Tenants with an instantiated session."""
        with self._state_lock:
            return sorted(self._sessions)

    def stats(self, tenant: Optional[str] = None) -> Dict[str, object]:
        """Requests/latency metrics plus shared-store usage and hit rate."""
        payload: Dict[str, object] = dict(self.metrics.snapshot(tenant))
        if tenant is None:
            payload["store"] = self.store.metrics.as_dict()
            payload["store_bytes"] = self.store.usage_bytes
        else:
            payload["store_bytes"] = self.store.tenant_usage(tenant)
        return payload

    def render_metrics(self) -> str:
        """Every metric this service can see, as ONE valid Prometheus document.

        Merges the service's own registry (request counters, the latency
        histogram, and the store-usage collector), the shared store's
        counter registry, and the process-global registry
        (:data:`repro.obs.metrics.REGISTRY`, which carries the process-pool
        and fingerprint collectors) through
        :func:`~repro.obs.metrics.render_registries`: families are
        namespaced (``repro_service_``/``repro_store_``/``repro_``) and
        deduped across registries, so identically named families can no
        longer render as the duplicate metric blocks scrapers reject.
        """
        return render_registries([
            ("service", self.metrics.registry),
            ("store", self.store.metrics.registry),
            ("", _GLOBAL_REGISTRY),
        ])

    def attach_observability(self, port: Optional[int] = None,
                             host: str = "127.0.0.1",
                             ring_capacity: int = 64,
                             export_sink=None):
        """Serve this service's telemetry over HTTP; returns the server.

        Starts a :class:`~repro.obs.server.ObservabilityServer` bound to
        ``host:port`` (``port=None`` honours ``REPRO_OBS_PORT``, else picks
        an ephemeral port) whose ``/metrics`` is :meth:`render_metrics`,
        whose ``/traces`` ring is fed every finished traced request, and
        whose ``/healthz`` reports tenant/worker state.  ``export_sink``
        additionally installs a span exporter (file path, URL or callable —
        see :func:`repro.obs.export.resolve_sink`).  Idempotent; the server
        shuts down with :meth:`close`.
        """
        if self._obs_server is not None:
            return self._obs_server
        from ..obs.export import SpanExporter, TraceRing
        from ..obs.server import ObservabilityServer
        from ..obs.trace import add_trace_consumer

        ring = TraceRing(capacity=ring_capacity)
        server = ObservabilityServer(
            metrics_text=self.render_metrics,
            health=self._health,
            ring=ring,
            host=host,
            port=port,
        ).start()
        key = f"service-ring-{id(self)}"
        add_trace_consumer(key, ring.add)
        self._obs_server = server
        self._obs_consumer_key = key
        if export_sink is not None:
            exporter = SpanExporter(export_sink)
            add_trace_consumer(f"{key}-otlp", exporter.export)
            self._obs_exporter = exporter
        return server

    def _health(self) -> Dict[str, object]:
        with self._state_lock:
            tenants = len(self._sessions)
        return {
            "status": "closed" if self._closed else "ok",
            "tenants": tenants,
            "workers": self.service_config.workers,
            "store_bytes": self.store.usage_bytes,
        }

    def save_cache(self, path: str) -> int:
        """Snapshot the shared store (see :meth:`CacheStore.save`)."""
        return self.store.save(path)

    def flush_observability(self, timeout_s: float = 5.0) -> bool:
        """Flush any attached span exporter's queue; True when fully drained.

        The graceful-drain path of the HTTP front end: before a server
        reports itself drained, every span already queued for export must
        have reached the sink.  A service with no exporter attached is
        trivially drained.
        """
        exporter = self._obs_exporter
        if exporter is None:
            return True
        return exporter.flush(timeout_s)

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests, detach observability, shut the pool down."""
        self._closed = True
        if self._obs_consumer_key is not None:
            from ..obs.trace import remove_trace_consumer

            remove_trace_consumer(self._obs_consumer_key)
            remove_trace_consumer(f"{self._obs_consumer_key}-otlp")
            self._obs_consumer_key = None
        if self._obs_exporter is not None:
            self._obs_exporter.close()
            self._obs_exporter = None
        if self._obs_server is not None:
            self._obs_server.close()
            self._obs_server = None
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "ExplanationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExplanationService(tenants={len(self._sessions)}, "
                f"workers={self.service_config.workers}, store={self.store!r})")

    # ---------------------------------------------------------------- internals
    def _collect_store_metrics(self):
        """Scrape-time gauges of the shared store's byte usage."""
        yield ("repro_service_store_bytes", "gauge",
               "Bytes of cached values held by the shared store.",
               float(self.store.usage_bytes), {})
        for tenant in self.tenants():
            yield ("repro_service_store_tenant_bytes", "gauge",
                   "Bytes of cached values charged to one tenant.",
                   float(self.store.tenant_usage(tenant)), {"tenant": tenant})

    def _admission_gate(self, tenant: str) -> Optional[threading.Semaphore]:
        bound = self.service_config.max_inflight_per_tenant
        if bound is None:
            return None
        gate = self._admission.get(tenant)
        if gate is None:
            with self._state_lock:
                gate = self._admission.get(tenant)
                if gate is None:
                    gate = threading.Semaphore(bound)
                    self._admission[tenant] = gate
        return gate
