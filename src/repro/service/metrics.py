"""Request/latency metrics of the explanation service.

One :class:`ServiceMetrics` per service, updated by every request from
whichever worker thread ran it.  The counters live in a per-service
:class:`~repro.obs.metrics.MetricsRegistry` — tenant-labeled counter
families plus a log-bucket latency histogram — so a scraper can pull the
Prometheus exposition (``metrics.registry.render_text()``, concatenated
into :meth:`~repro.service.service.ExplanationService.render_metrics`)
while :meth:`snapshot` keeps serving the exact dictionary shape earlier
releases exposed, now extended with ``p50_seconds``/``p95_seconds``/
``p99_seconds`` from the histogram.

Updates are a handful of locked additions per request, invisible next to an
explanation's cost; snapshots read under the same registry lock, so a
scraper always sees a consistent set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.metrics import MetricsRegistry


class ServiceMetrics:
    """Thread-safe request counters and latency aggregates, global and per tenant."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_service_requests_total",
            "Requests admitted into the service.", labelnames=("tenant",))
        self._completed = self.registry.counter(
            "repro_service_completed_total",
            "Requests finished successfully.", labelnames=("tenant",))
        self._errors = self.registry.counter(
            "repro_service_errors_total",
            "Requests finished with an error.", labelnames=("tenant",))
        self._rejected = self.registry.counter(
            "repro_service_rejected_total",
            "Requests shed by per-tenant admission control.",
            labelnames=("tenant",))
        self._inflight = self.registry.gauge(
            "repro_service_inflight",
            "Requests admitted but not yet finished.", labelnames=("tenant",))
        self._latency = self.registry.histogram(
            "repro_service_request_seconds",
            "Wall-clock latency of finished requests (success and error).",
            labelnames=("tenant",))
        self._max_latency = self.registry.gauge(
            "repro_service_request_seconds_max",
            "Largest request latency observed since start-up.")

    # ------------------------------------------------------------------ updates
    #
    # The lifecycle counters reconcile at every instant:
    #
    #     admitted == completed + errors + inflight
    #
    # ``record_admitted`` opens a request (requests +1, inflight +1) and
    # exactly one of ``record_completed`` / ``record_submit_failed`` closes
    # it (inflight -1).  Rejected requests never enter the equation.

    def record_admitted(self, tenant: str) -> None:
        """Count a request entering the service (admitted, not yet finished)."""
        self._requests.labels(tenant=tenant).inc()
        self._inflight.labels(tenant=tenant).inc()

    def record_rejected(self, tenant: str) -> None:
        """Count a request shed by per-tenant admission control."""
        self._rejected.labels(tenant=tenant).inc()

    def record_completed(self, tenant: str, seconds: float,
                         error: bool = False) -> None:
        """Count a finished request and fold its latency into the aggregates."""
        family = self._errors if error else self._completed
        family.labels(tenant=tenant).inc()
        self._inflight.labels(tenant=tenant).dec()
        self._latency.labels(tenant=tenant).observe(seconds)
        self._max_latency.set_max(seconds)

    def record_submit_failed(self, tenant: str) -> None:
        """Close an admitted request that never reached the worker pool.

        Counted as an error with no latency observation — the request did
        not run, but ``admitted == completed + errors + inflight`` must
        keep holding.
        """
        self._errors.labels(tenant=tenant).inc()
        self._inflight.labels(tenant=tenant).dec()

    # ---------------------------------------------------------------- snapshots
    def snapshot(self, tenant: Optional[str] = None) -> Dict[str, float]:
        """A consistent snapshot of the counters (global, or one tenant's).

        The historical keys (``requests``/``completed``/``errors``/
        ``rejected``/``total_seconds``/``mean_seconds``, plus global
        ``max_seconds``) are preserved; the latency histogram adds
        ``p50_seconds``/``p95_seconds``/``p99_seconds``.
        """
        if tenant is None:
            requests = self._requests.total()
            completed = self._completed.total()
            errors = self._errors.total()
            rejected = self._rejected.total()
            inflight = self._inflight.total()
            latency = self._latency.aggregate()
        else:
            requests = _child_value(self._requests, tenant)
            completed = _child_value(self._completed, tenant)
            errors = _child_value(self._errors, tenant)
            rejected = _child_value(self._rejected, tenant)
            inflight = _child_value(self._inflight, tenant)
            latency = self._latency.get(tenant=tenant)
        finished = completed + errors
        total_seconds = latency.sum if latency is not None else 0.0
        payload = {
            "requests": int(requests),
            "completed": int(completed),
            "errors": int(errors),
            "rejected": int(rejected),
            "inflight": int(inflight),
            "total_seconds": total_seconds,
            "mean_seconds": total_seconds / finished if finished else 0.0,
            "p50_seconds": latency.quantile(0.50) if latency is not None else 0.0,
            "p95_seconds": latency.quantile(0.95) if latency is not None else 0.0,
            "p99_seconds": latency.quantile(0.99) if latency is not None else 0.0,
        }
        if tenant is None:
            payload["max_seconds"] = self._max_latency.value
        return payload

    def tenants(self) -> List[str]:
        """Tenants that have issued at least one request (admitted or shed)."""
        names = set()
        for family in (self._requests, self._rejected):
            names.update(values[0] for values in family.label_values())
        return sorted(names)


def _child_value(family, tenant: str) -> float:
    child = family.get(tenant=tenant)
    return child.value if child is not None else 0.0
