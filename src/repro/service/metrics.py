"""Request/latency metrics of the explanation service.

One :class:`ServiceMetrics` per service, updated by every request from
whichever worker thread ran it.  Counters are guarded by one lock — the
update is a handful of integer additions per request, invisible next to an
explanation's cost — and snapshots are taken under the same lock, so a
scraper always sees a consistent set.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class _TenantCounters:
    __slots__ = ("requests", "completed", "errors", "rejected", "total_seconds")

    def __init__(self) -> None:
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.total_seconds = 0.0


class ServiceMetrics:
    """Thread-safe request counters and latency aggregates, global and per tenant."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._global = _TenantCounters()
        self._tenants: Dict[str, _TenantCounters] = {}
        self._max_latency = 0.0

    # ------------------------------------------------------------------ updates
    def record_admitted(self, tenant: str) -> None:
        """Count a request entering the service (admitted, not yet finished)."""
        with self._lock:
            self._global.requests += 1
            self._tenant(tenant).requests += 1

    def record_rejected(self, tenant: str) -> None:
        """Count a request shed by per-tenant admission control."""
        with self._lock:
            self._global.rejected += 1
            self._tenant(tenant).rejected += 1

    def record_completed(self, tenant: str, seconds: float,
                         error: bool = False) -> None:
        """Count a finished request and fold its latency into the aggregates."""
        with self._lock:
            for counters in (self._global, self._tenant(tenant)):
                if error:
                    counters.errors += 1
                else:
                    counters.completed += 1
                counters.total_seconds += seconds
            if seconds > self._max_latency:
                self._max_latency = seconds

    # ---------------------------------------------------------------- snapshots
    def snapshot(self, tenant: Optional[str] = None) -> Dict[str, float]:
        """A consistent snapshot of the counters (global, or one tenant's).

        Includes the derived mean latency over finished requests; the
        service layers the store's hit rate on top (the store owns cache
        counters, the metrics own request counters).
        """
        with self._lock:
            counters = self._global if tenant is None else self._tenants.get(tenant)
            if counters is None:
                counters = _TenantCounters()
            finished = counters.completed + counters.errors
            payload = {
                "requests": counters.requests,
                "completed": counters.completed,
                "errors": counters.errors,
                "rejected": counters.rejected,
                "total_seconds": counters.total_seconds,
                "mean_seconds": counters.total_seconds / finished if finished else 0.0,
            }
            if tenant is None:
                payload["max_seconds"] = self._max_latency
            return payload

    def tenants(self) -> list:
        """Tenants that have issued at least one request."""
        with self._lock:
            return sorted(self._tenants)

    # ---------------------------------------------------------------- internals
    def _tenant(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
        return counters
