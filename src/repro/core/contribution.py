"""Contribution of a set-of-rows to column interestingness (paper §3.3).

The contribution is the *intervention* quantity of Definition 3.3::

    C(R, A, Q) = I_A(D_in, q, d_out) - I_A(D_in - R, q, d'_out)

i.e. remove the set-of-rows ``R`` from the input, re-run the same operation,
re-score the interestingness of column ``A``, and take the drop.  A large
positive contribution means the rows in ``R`` are responsible for much of the
column's interestingness.  Contributions can be negative (removing the rows
makes the column *more* interesting); Algorithm 1 drops those candidates.

*How* the reduced scores are obtained is delegated to a pluggable
:class:`~repro.core.backends.base.ContributionBackend`: the default
``"incremental"`` backend derives all interventions of a step from shared
precomputed structure, while the ``"exact"`` backend re-runs the operation
per set-of-rows (the reference semantics).  See :mod:`repro.core.backends`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..operators.step import ExploratoryStep
from ..stats.dispersion import standardize
from .backends.base import DEFAULT_BACKEND, ContributionBackend, make_backend
from .interestingness import InterestingnessMeasure
from .partition import RowPartition, RowSet


class ContributionCalculator:
    """Computes (and caches) contribution scores for one exploratory step.

    The calculator owns the *what* of the contribution phase and caches:

    * the baseline interestingness ``I_A(Q)`` per attribute (computed once),
    * the raw contribution list per (partition, attribute) pair, so that the
      standardized contributions are derived from the cached raw list instead
      of recomputing every intervention.

    The *how* — rerun-per-row-set versus incremental derivation — lives in
    the ``backend`` (a name like ``"exact"``/``"incremental"``, a backend
    class, or an instance).
    """

    def __init__(self, step: ExploratoryStep, measure: InterestingnessMeasure,
                 baseline_scores: Dict[str, float] | None = None,
                 backend: Union[str, ContributionBackend, type] = DEFAULT_BACKEND,
                 backend_options: Optional[Dict[str, object]] = None) -> None:
        self.step = step
        self.measure = measure
        self.backend = make_backend(backend, step, measure, options=backend_options)
        self._baseline: Dict[str, float] = dict(baseline_scores or {})
        # Keyed by (id(partition), attribute); the partition object is kept in
        # the value to pin its id for the cache's lifetime.
        self._raw_cache: Dict[Tuple[int, str], Tuple[RowPartition, List[float]]] = {}

    # --------------------------------------------------------------- baselines
    def baseline(self, attribute: str) -> float:
        """``I_A(Q)`` on the full inputs (cached)."""
        if attribute not in self._baseline:
            self._baseline[attribute] = self.measure.score_step(self.step, attribute)
        return self._baseline[attribute]

    # ------------------------------------------------------------ contribution
    def prefetch(self, grid: Sequence[Tuple[RowPartition, str]],
                 batch_hint: Optional[int] = None) -> None:
        """Announce the full contribution grid so the backend can parallelise.

        Baselines of every attribute in the grid are computed (and cached)
        up front — serially, before any worker starts — then the backend's
        :meth:`~repro.core.backends.base.ContributionBackend.prefetch` hook
        receives the grid together with the caller's shard-batch preference
        (``FedexConfig.shard_batch``).  A no-op for the serial backends.
        """
        for _, attribute in grid:
            self.baseline(attribute)
        self.backend.prefetch(grid, self._baseline, batch_hint=batch_hint)

    def contribution(self, row_set: RowSet, attribute: str) -> float:
        """``C(R, A, Q)`` for one set-of-rows and one output attribute."""
        return self.backend.contribution(row_set, attribute, self.baseline(attribute))

    def partition_contributions(self, partition: RowPartition, attribute: str) -> List[float]:
        """Raw contributions of every candidate set-of-rows in a partition (cached)."""
        key = (id(partition), attribute)
        cached = self._raw_cache.get(key)
        if cached is None:
            raw = self.backend.partition_contributions(
                partition, attribute, self.baseline(attribute)
            )
            self._raw_cache[key] = (partition, raw)
        else:
            raw = cached[1]
        return list(raw)

    def standardized_contributions(self, partition: RowPartition, attribute: str) -> List[float]:
        """Standardized contributions ``C̄(R, A)`` within the partition (§3.6).

        Each set's raw contribution is z-scored against the contributions of
        the *other* sets of the same partition (mean/std over all candidate
        sets), quantifying how exceptional the set's contribution is among
        its peers.  The raw contributions come from the per-partition cache,
        so asking for both raw and standardized lists costs one intervention
        pass, not two.
        """
        raw = self.partition_contributions(partition, attribute)
        return list(standardize(raw))


def contribution_of(step: ExploratoryStep, row_set: RowSet, attribute: str,
                    measure: InterestingnessMeasure,
                    backend: Union[str, ContributionBackend, type] = DEFAULT_BACKEND) -> float:
    """One-off contribution computation (convenience wrapper without caching)."""
    return ContributionCalculator(step, measure, backend=backend).contribution(row_set, attribute)
