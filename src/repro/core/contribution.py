"""Contribution of a set-of-rows to column interestingness (paper §3.3).

The contribution is the *intervention* quantity of Definition 3.3::

    C(R, A, Q) = I_A(D_in, q, d_out) - I_A(D_in - R, q, d'_out)

i.e. remove the set-of-rows ``R`` from the input, re-run the same operation,
re-score the interestingness of column ``A``, and take the drop.  A large
positive contribution means the rows in ``R`` are responsible for much of the
column's interestingness.  Contributions can be negative (removing the rows
makes the column *more* interesting); Algorithm 1 drops those candidates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..dataframe.frame import DataFrame
from ..operators.step import ExploratoryStep
from ..stats.dispersion import standardize
from .interestingness import InterestingnessMeasure
from .partition import RowPartition, RowSet


class ContributionCalculator:
    """Computes (and caches) contribution scores for one exploratory step.

    The calculator caches two things:

    * the baseline interestingness ``I_A(Q)`` per attribute (computed once),
    * the reduced output dataframe per (input_index, row-set) pair, because
      every output attribute reuses the same intervention result — this is
      what makes scoring a whole partition against several interesting
      columns affordable.
    """

    def __init__(self, step: ExploratoryStep, measure: InterestingnessMeasure,
                 baseline_scores: Dict[str, float] | None = None) -> None:
        self.step = step
        self.measure = measure
        self._baseline: Dict[str, float] = dict(baseline_scores or {})
        self._reduced_cache: Dict[tuple, tuple] = {}

    # --------------------------------------------------------------- baselines
    def baseline(self, attribute: str) -> float:
        """``I_A(Q)`` on the full inputs (cached)."""
        if attribute not in self._baseline:
            self._baseline[attribute] = self.measure.score_step(self.step, attribute)
        return self._baseline[attribute]

    # ------------------------------------------------------------ contribution
    def contribution(self, row_set: RowSet, attribute: str) -> float:
        """``C(R, A, Q)`` for one set-of-rows and one output attribute."""
        reduced_inputs, reduced_output = self._reduced_step(row_set)
        reduced_score = self.measure.score(
            reduced_inputs, self.step, reduced_output, attribute
        )
        return self.baseline(attribute) - reduced_score

    def partition_contributions(self, partition: RowPartition, attribute: str) -> List[float]:
        """Raw contributions of every candidate set-of-rows in a partition."""
        return [self.contribution(row_set, attribute) for row_set in partition.sets]

    def standardized_contributions(self, partition: RowPartition, attribute: str) -> List[float]:
        """Standardized contributions ``C̄(R, A)`` within the partition (§3.6).

        Each set's raw contribution is z-scored against the contributions of
        the *other* sets of the same partition (mean/std over all candidate
        sets), quantifying how exceptional the set's contribution is among
        its peers.
        """
        raw = self.partition_contributions(partition, attribute)
        return list(standardize(raw))

    # ------------------------------------------------------------------ helpers
    def _reduced_step(self, row_set: RowSet) -> tuple:
        """Inputs and output of the step after removing ``row_set`` (cached)."""
        cache_key = (row_set.input_index, row_set.method, row_set.source_attribute,
                     row_set.label_attribute, row_set.label)
        if cache_key in self._reduced_cache:
            return self._reduced_cache[cache_key]
        target_input = self.step.inputs[row_set.input_index]
        reduced_input = target_input.remove_rows(row_set.indices)
        reduced_inputs: Sequence[DataFrame] = self.step.with_inputs_replaced(
            row_set.input_index, reduced_input
        )
        reduced_output = self.step.rerun(reduced_inputs)
        result = (reduced_inputs, reduced_output)
        self._reduced_cache[cache_key] = result
        return result


def contribution_of(step: ExploratoryStep, row_set: RowSet, attribute: str,
                    measure: InterestingnessMeasure) -> float:
    """One-off contribution computation (convenience wrapper without caching)."""
    return ContributionCalculator(step, measure).contribution(row_set, attribute)
