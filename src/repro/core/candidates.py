"""Explanation candidates and their quality scores (paper §3.4 and §3.6).

An explanation candidate is a pair ``(R, A)`` — a set-of-rows of the input
and an attribute of the output — scored by the interestingness of ``A`` and
the standardized contribution of ``R`` within its partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .partition import RowPartition, RowSet


@dataclass
class ExplanationCandidate:
    """A scored candidate ``(R, A)``.

    Attributes
    ----------
    row_set:
        The set-of-rows ``R`` (with its partition metadata).
    attribute:
        The output column ``A`` being explained.
    interestingness:
        ``I_A(Q)`` of the column (computed on the full or sampled input,
        depending on the engine configuration).
    contribution:
        Raw contribution ``C(R, A, Q)``.
    standardized_contribution:
        ``C̄(R, A)`` — the contribution z-scored within the candidate's
        partition.
    measure_name:
        Name of the interestingness measure that produced the scores
        (``"exceptionality"`` / ``"diversity"`` / custom).
    partition_size:
        Number of candidate sets-of-rows in the partition ``R`` came from.
    """

    row_set: RowSet
    attribute: str
    interestingness: float
    contribution: float
    standardized_contribution: float
    measure_name: str
    partition_size: int

    def key(self) -> Tuple:
        """Hashable identity used by the accuracy experiments to match candidates."""
        return (self.attribute,) + self.row_set.key()

    def weighted_score(self, interestingness_weight: float, contribution_weight: float) -> float:
        """The optional weighted score ``(W_I·I + W_C·C̄) / (W_I + W_C)`` (§3.7)."""
        denominator = interestingness_weight + contribution_weight
        return (
            interestingness_weight * self.interestingness
            + contribution_weight * self.standardized_contribution
        ) / denominator

    def describe(self) -> str:
        """One-line description used in logs and experiment reports."""
        return (
            f"(R={self.row_set.label_attribute}={self.row_set.label!r}, A={self.attribute}) "
            f"I={self.interestingness:.3f} C={self.contribution:.4f} "
            f"C̄={self.standardized_contribution:.2f} [{self.row_set.method}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExplanationCandidate({self.describe()})"


def build_candidates(partition: RowPartition, attribute: str, interestingness: float,
                     raw_contributions: List[float], standardized: List[float],
                     measure_name: str,
                     positive_only: bool = True) -> List[ExplanationCandidate]:
    """Assemble candidates for one (partition, attribute) pair.

    Mirrors lines 9–12 of Algorithm 1: every candidate set-of-rows of the
    partition is considered, its raw and standardized contributions recorded,
    and — when ``positive_only`` — only sets with a strictly positive raw
    contribution are retained as candidates.
    """
    candidates: List[ExplanationCandidate] = []
    for row_set, raw, std in zip(partition.sets, raw_contributions, standardized):
        if positive_only and raw <= 0:
            continue
        candidates.append(ExplanationCandidate(
            row_set=row_set,
            attribute=attribute,
            interestingness=interestingness,
            contribution=raw,
            standardized_contribution=std,
            measure_name=measure_name,
            partition_size=len(partition.sets),
        ))
    return candidates
