"""FEDEX core: interestingness, contribution, partitions, skyline, engine."""

from .backends import (
    ContributionBackend,
    ExactRerunBackend,
    IncrementalBackend,
    ParallelBackend,
    ProcessBackend,
    available_backends,
    make_backend,
    shutdown_process_pools,
)
from .candidates import ExplanationCandidate, build_candidates
from .config import (
    DEFAULT_CACHE_BUDGET_BYTES,
    DEFAULT_SAMPLE_SIZE,
    DEFAULT_SERVICE_WORKERS,
    DEFAULT_SET_COUNTS,
    FedexConfig,
    ServiceConfig,
    exact_config,
    sampling_config,
)
from .contribution import ContributionCalculator, contribution_of
from .engine import ExplainerPool, ExplanationReport, FedexExplainer, explain_step
from .explanation import Explanation, build_explanation
from .interestingness import (
    DiversityMeasure,
    ExceptionalityMeasure,
    FunctionMeasure,
    InterestingnessMeasure,
    MeasureRegistry,
    default_registry,
    measure_for_step,
)
from .measures_extra import (
    CompactnessMeasure,
    CoverageMeasure,
    SurprisingnessMeasure,
    extended_registry,
)
from .partition import (
    FrequencyPartitioner,
    ManyToOnePartitioner,
    MappingPartitioner,
    NumericBinningPartitioner,
    Partitioner,
    RowPartition,
    RowSet,
    build_partitions,
    default_partitioners,
)
from .signatures import config_signature, step_signature
from .skyline import is_dominated, rank_by_weighted_score, skyline, skyline_pairs

__all__ = [
    "CompactnessMeasure",
    "ContributionBackend",
    "ContributionCalculator",
    "CoverageMeasure",
    "DEFAULT_SAMPLE_SIZE",
    "DEFAULT_SET_COUNTS",
    "DiversityMeasure",
    "ExactRerunBackend",
    "ExceptionalityMeasure",
    "ExplainerPool",
    "Explanation",
    "ExplanationCandidate",
    "ExplanationReport",
    "FedexConfig",
    "FedexExplainer",
    "ServiceConfig",
    "FrequencyPartitioner",
    "FunctionMeasure",
    "IncrementalBackend",
    "InterestingnessMeasure",
    "ManyToOnePartitioner",
    "MappingPartitioner",
    "MeasureRegistry",
    "NumericBinningPartitioner",
    "ParallelBackend",
    "ProcessBackend",
    "Partitioner",
    "RowPartition",
    "RowSet",
    "SurprisingnessMeasure",
    "available_backends",
    "build_candidates",
    "build_explanation",
    "build_partitions",
    "config_signature",
    "contribution_of",
    "default_partitioners",
    "default_registry",
    "exact_config",
    "explain_step",
    "extended_registry",
    "is_dominated",
    "make_backend",
    "measure_for_step",
    "rank_by_weighted_score",
    "sampling_config",
    "shutdown_process_pools",
    "skyline",
    "skyline_pairs",
    "step_signature",
]
