"""Additional interestingness measures (paper §3.8 and future work).

The paper's extension section names compactness/coverage [16] and
surprisingness [43] as further measures FEDEX can host without any changes to
the engine.  This module provides reference implementations and a helper that
registers them next to the built-in exceptionality/diversity measures:

* :class:`SurprisingnessMeasure` — how far the output column's mean moved
  away from the input column's mean, in input standard deviations.  Suitable
  for filter/join/union steps over numeric columns; unlike the KS-based
  exceptionality it reacts only to location shifts, not to arbitrary
  distribution changes.
* :class:`CoverageMeasure` — for group-by style outputs: the fraction of
  input rows represented by the groups of the output (via the grouping keys).
  A low-coverage result is interesting because the summary silently drops
  data.
* :class:`CompactnessMeasure` — rewards summaries with few groups relative to
  the input size (``1 - log(groups)/log(rows)``), the "compactness" facet of
  summarisation quality.

These measures carry no monotonicity or non-negativity guarantees — which is
exactly why the engine does not assume any (§3.8).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..dataframe.frame import DataFrame
from ..operators.operations import GroupBy
from ..operators.step import ExploratoryStep
from .interestingness import InterestingnessMeasure, MeasureRegistry, default_registry


class SurprisingnessMeasure(InterestingnessMeasure):
    """Location shift of a numeric column between input and output, in input std units."""

    name = "surprisingness"

    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        if attribute not in output or not output[attribute].is_numeric:
            return 0.0
        reference = None
        for frame in inputs:
            if attribute in frame and frame[attribute].is_numeric:
                reference = frame[attribute]
                break
        if reference is None:
            return 0.0
        input_values = reference.to_float()
        output_values = output[attribute].to_float()
        input_values = input_values[~np.isnan(input_values)]
        output_values = output_values[~np.isnan(output_values)]
        if input_values.size < 2 or output_values.size == 0:
            return 0.0
        spread = float(np.std(input_values, ddof=1))
        if spread == 0.0:
            return 0.0
        return abs(float(np.mean(output_values)) - float(np.mean(input_values))) / spread

    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        shared = set()
        for frame in step.inputs:
            shared.update(frame.numeric_columns())
        return [name for name in step.output.numeric_columns() if name in shared]


class CoverageMeasure(InterestingnessMeasure):
    """Fraction of input rows *not* represented by the output's groups.

    Scores 0 when every input row belongs to some output group and approaches
    1 when the summary covers almost nothing — i.e. higher is "more
    interesting" in the sense of "this summary hides data".
    """

    name = "coverage"

    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        operation = step.operation
        keys = list(getattr(operation, "keys", []) or [])
        keys = [key for key in keys if key in output and key in inputs[0]]
        if not keys:
            return 0.0
        input_frame = inputs[0]
        covered_values = set(zip(*[output[key].tolist() for key in keys])) if keys else set()
        input_tuples = list(zip(*[input_frame[key].tolist() for key in keys]))
        if not input_tuples:
            return 0.0
        covered = sum(1 for row in input_tuples if row in covered_values)
        return 1.0 - covered / len(input_tuples)

    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        if isinstance(step.operation, GroupBy):
            return [name for name in step.output.numeric_columns()]
        return []


class CompactnessMeasure(InterestingnessMeasure):
    """How compact a group-by summary is: ``1 - log(groups + 1) / log(rows + 1)``."""

    name = "compactness"

    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        rows = max(inputs[0].num_rows, 1)
        groups = max(output.num_rows, 1)
        if rows <= 1:
            return 0.0
        return max(0.0, 1.0 - np.log(groups + 1.0) / np.log(rows + 1.0))

    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        if isinstance(step.operation, GroupBy):
            return step.output.numeric_columns()
        return []


def extended_registry() -> MeasureRegistry:
    """The default registry plus the three additional measures of this module."""
    registry = default_registry()
    registry.register(SurprisingnessMeasure())
    registry.register(CoverageMeasure())
    registry.register(CompactnessMeasure())
    return registry
