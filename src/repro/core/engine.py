"""The FEDEX explanation engine — Algorithm 1 of the paper.

:class:`FedexExplainer` orchestrates the full pipeline for one exploratory
step:

1. score the interestingness of every (applicable) output column, optionally
   on a uniform row sample (fedex-Sampling);
2. keep the most interesting columns (two-step greedy);
3. partition the input dataframe(s) into semantically-related sets-of-rows;
4. compute the (standardized) contribution of every set-of-rows to every
   selected column;
5. keep candidates with positive contribution, take the skyline over
   (interestingness, standardized contribution), optionally rank by the
   weighted score and keep the top-k;
6. build a captioned visualization for every surviving explanation.

The engine returns an :class:`ExplanationReport` carrying the final
explanations plus all the intermediate artefacts the experiments need
(candidate pool, rankings, per-phase timings).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dataframe.frame import DataFrame
from ..errors import ExplanationError
from ..obs.trace import begin_request, end_request
from ..operators.operations import GroupBy
from ..operators.step import ExploratoryStep
from .candidates import ExplanationCandidate, build_candidates
from .config import FedexConfig
from .contribution import ContributionCalculator
from .explanation import Explanation, build_explanation
from .interestingness import (
    DiversityMeasure,
    ExceptionalityMeasure,
    InterestingnessMeasure,
    MeasureRegistry,
    default_registry,
    measure_for_step,
)
from .partition import Partitioner, RowPartition, build_partitions, default_partitioners
from .skyline import rank_by_weighted_score, skyline


@dataclass
class ExplanationReport:
    """Everything produced while explaining one exploratory step."""

    explanations: List[Explanation]
    skyline_candidates: List[ExplanationCandidate]
    all_candidates: List[ExplanationCandidate]
    interestingness_scores: Dict[str, float]
    selected_columns: List[str]
    config: FedexConfig
    timings: Dict[str, float] = field(default_factory=dict)
    #: The request's span tree when tracing was enabled (``REPRO_TRACE`` or
    #: :func:`repro.obs.tracing`); ``None`` on untraced runs.  Never part of
    #: report equality or cache keys — telemetry, not a result.
    trace: Optional[object] = field(default=None, compare=False)

    @property
    def total_time(self) -> float:
        """Total wall-clock time of the explanation generation, in seconds."""
        return sum(self.timings.values())

    def ranked_candidates(self) -> List[ExplanationCandidate]:
        """All candidates ranked by the weighted score (used by accuracy metrics)."""
        return rank_by_weighted_score(
            self.all_candidates,
            self.config.interestingness_weight,
            self.config.contribution_weight,
        )

    def skyline_keys(self) -> List[Tuple]:
        """Hashable identities of the skyline candidates (accuracy experiments)."""
        return [candidate.key() for candidate in self.skyline_candidates]

    def explanation_for(self, attribute: str) -> Optional[Explanation]:
        """The explanation about a specific output column, if one was produced."""
        for explanation in self.explanations:
            if explanation.attribute == attribute:
                return explanation
        return None

    def trace_summary(self):
        """Critical-path / self-time analysis of :attr:`trace` (``None`` untraced).

        A :class:`~repro.obs.analyze.TraceSummary`: where this request's
        latency actually went — the heaviest root-to-leaf chain, per-span
        self-time rollups, and flamegraph-folded stacks.
        """
        if self.trace is None:
            return None
        from ..obs.analyze import summarize
        return summarize(self.trace)

    def render_text(self, width: int = 40) -> str:
        """All explanations rendered as text, separated by blank lines."""
        if not self.explanations:
            return "No explanation: no set-of-rows with positive contribution was found."
        return "\n\n".join(explanation.render_text(width=width) for explanation in self.explanations)


class FedexExplainer:
    """The FEDEX explanation generator (Algorithm 1).

    Parameters
    ----------
    config:
        Engine configuration; defaults to exact fedex with the paper's
        defaults.  Use ``FedexConfig(sample_size=5000)`` (or
        :func:`repro.core.config.sampling_config`) for fedex-Sampling.
    registry:
        Interestingness measure registry; defaults to the paper's two
        measures.  Register custom measures here (§3.8).
    extra_partitioners:
        Additional user-defined partitioners appended to the configured
        built-in families (§3.8).
    context:
        Optional session cache (:class:`repro.session.SessionCache`, or any
        object with the same ``adopt_step`` / ``partitions`` /
        ``groupby_structure`` / ``row_sources`` hooks) that memoizes
        cross-step intervention structure keyed by content fingerprints.
        ``None`` — the default — keeps the engine fully stateless across
        :meth:`explain` calls, exactly as before the session layer existed.
    """

    def __init__(self, config: FedexConfig | None = None,
                 registry: MeasureRegistry | None = None,
                 extra_partitioners: Sequence[Partitioner] | None = None,
                 context=None) -> None:
        self.config = config or FedexConfig()
        self.registry = registry or default_registry()
        self.extra_partitioners = list(extra_partitioners or [])
        self.context = context

    # ------------------------------------------------------------------ public
    def explain(self, step: ExploratoryStep, measure: str | None = None,
                progress: Optional[Callable[[Dict], None]] = None) -> ExplanationReport:
        """Run Algorithm 1 on an exploratory step and return the full report.

        When tracing is enabled (``REPRO_TRACE`` / :func:`repro.obs.tracing`)
        the whole run executes under an ambient request tracer — every layer
        below (backends, caches, scans) records into it — and the finished
        span tree is attached as ``report.trace``.  Tracing never changes a
        result: the untraced path sees only no-op stubs.

        ``progress``, when given, is called synchronously with one event
        dictionary per (partition, attribute) grid pair as phase 3 finishes
        it — with the pool backends this happens while later shards are
        still computing, which is what lets a serving front end stream
        partial results.  Progress never changes a result: the events carry
        copies of per-pair summaries, and a raising callback aborts the
        request rather than corrupting it.
        """
        tracer, token = begin_request()
        try:
            with tracer.span("explain", operation=step.operation.kind,
                             backend=self.config.backend):
                report = self._run_pipeline(step, measure, tracer, progress)
        finally:
            trace = end_request(tracer, token)
        if trace is not None:
            report.trace = trace
        return report

    def _run_pipeline(self, step: ExploratoryStep, measure: str | None,
                      tracer, progress: Optional[Callable[[Dict], None]] = None,
                      ) -> ExplanationReport:
        """The five phases of Algorithm 1 (under the request's trace root)."""
        timings: Dict[str, float] = {}
        chosen_measure = measure_for_step(step, self.registry, override=measure)
        if self.context is not None:
            # Seed the step's column-level caches (argsorts, factorizations)
            # from structure harvested off content-identical columns of
            # earlier steps, and register this step's columns for harvesting.
            self.context.adopt_step(step)

        # Phase 1: interestingness of every applicable output column
        start = time.perf_counter()
        with tracer.span("phase1.interestingness",
                         measure=chosen_measure.name) as span:
            scores = self.score_columns(step, chosen_measure)
            selected = self._select_columns(scores)
            span.set("columns_scored", len(scores))
            span.set("columns_selected", len(selected))
        timings["interestingness"] = time.perf_counter() - start

        # Phase 2: row partitions of the input dataframe(s)
        start = time.perf_counter()
        with tracer.span("phase2.partitioning") as span:
            partitions = self._build_partitions(step, selected)
            span.set("partitions", len(partitions))
        timings["partitioning"] = time.perf_counter() - start

        # Phase 3: contributions and candidate construction
        start = time.perf_counter()
        with tracer.span("phase3.contribution",
                         backend=self.config.backend) as span:
            calculator = ContributionCalculator(
                step, chosen_measure, backend=self.config.backend,
                backend_options={"workers": self.config.workers, "context": self.context,
                                 "ks_budget_bytes": self.config.ks_budget_bytes,
                                 "shard_batch": self.config.shard_batch,
                                 "spill_bytes": self.config.spill_bytes,
                                 "adaptive_batch": self.config.adaptive_batch,
                                 "steal": self.config.steal,
                                 "shared_structures": self.config.shared_structures},
            )
            # The full partition × attribute grid is known before any
            # contribution is computed; announcing it lets the parallel backend
            # shard the grid across its worker pool up front.
            grid: List[Tuple[RowPartition, str]] = [
                (partition, attribute)
                for partition in partitions
                for attribute in self._attributes_for_partition(step, partition, selected)
            ]
            span.set("grid_pairs", len(grid))
            calculator.prefetch(grid, batch_hint=self.config.shard_batch)
            all_candidates: List[ExplanationCandidate] = []
            candidate_partitions: Dict[Tuple, RowPartition] = {}
            for pair_index, (partition, attribute) in enumerate(grid):
                # One intervention pass: the raw contributions are computed
                # once and cached, and the standardized list is derived from
                # the cached raw list.
                raw = calculator.partition_contributions(partition, attribute)
                standardized = calculator.standardized_contributions(partition, attribute)
                candidates = build_candidates(
                    partition, attribute, scores[attribute], raw, standardized,
                    chosen_measure.name,
                    positive_only=self.config.positive_contribution_only,
                )
                for candidate in candidates:
                    candidate_partitions[candidate.key()] = partition
                all_candidates.extend(candidates)
                if progress is not None:
                    # Early pairs are announced while the pool backends are
                    # still computing later shards (prefetch is per-pair
                    # non-blocking), so a streaming consumer genuinely sees
                    # partial results before the request finishes.
                    best = max(candidates, default=None,
                               key=lambda c: c.standardized_contribution)
                    progress({
                        "phase": "contribution",
                        "pair": pair_index + 1,
                        "pairs": len(grid),
                        "attribute": attribute,
                        "source_attribute": partition.source_attribute,
                        "candidates": len(candidates),
                        "total_candidates": len(all_candidates),
                        "best_contribution": (
                            best.standardized_contribution if best is not None
                            else None),
                    })
            span.set("candidates", len(all_candidates))
        timings["contribution"] = time.perf_counter() - start

        # Phase 4: skyline + weighted ranking
        start = time.perf_counter()
        with tracer.span("phase4.skyline") as span:
            if self.config.use_skyline:
                dominating = skyline(all_candidates)
            else:
                dominating = list(all_candidates)
            final = rank_by_weighted_score(
                dominating,
                self.config.interestingness_weight,
                self.config.contribution_weight,
            )
            final = _deduplicate(final)
            if self.config.top_k_explanations is not None:
                final = final[: self.config.top_k_explanations]
            span.set("skyline_size", len(final))
        timings["skyline"] = time.perf_counter() - start

        # Phase 5: captioned visualizations
        start = time.perf_counter()
        with tracer.span("phase5.visualization"):
            explanations = [
                build_explanation(step, candidate, candidate_partitions[candidate.key()])
                for candidate in final
            ]
        timings["visualization"] = time.perf_counter() - start

        return ExplanationReport(
            explanations=explanations,
            skyline_candidates=final,
            all_candidates=all_candidates,
            interestingness_scores=scores,
            selected_columns=selected,
            config=self.config,
            timings=timings,
        )

    def score_columns(self, step: ExploratoryStep,
                      measure: InterestingnessMeasure | None = None) -> Dict[str, float]:
        """Interestingness score of every applicable output column (lines 1–2).

        When the configuration enables sampling, the scores are computed on a
        uniformly sampled materialisation of the step (the fedex-Sampling
        optimization); the contribution phase still uses all rows.
        """
        chosen_measure = measure or measure_for_step(step, self.registry)
        columns = self._candidate_columns(step, chosen_measure)
        context = self.context
        if context is None or not hasattr(context, "score") or \
                type(chosen_measure) not in (ExceptionalityMeasure, DiversityMeasure):
            # No cache, or a custom measure whose identity cannot be captured
            # by a content key: score directly.
            scoring_inputs, scoring_output = self._scoring_materialisation(step)
            return {
                attribute: chosen_measure.score(scoring_inputs, step, scoring_output, attribute)
                for attribute in columns
            }
        # Phase-1 scores depend only on the step's content, the measure, and
        # the sampling configuration — not on top-k cuts, weights, or the
        # contribution backend — so steps re-explained under a *different*
        # engine configuration (where the full-report memo misses) still
        # reuse every per-attribute score.  The scoring materialisation is
        # built lazily: a fully warm request never samples or re-runs.
        base_key = (
            "phase1", chosen_measure.name,
            step.operation.kind, step.operation.signature(),
            tuple(context.frame_fingerprint(frame) for frame in step.inputs),
            context.frame_fingerprint(step.output),
            self.config.sample_size, self.config.seed,
        )
        materialisation: List[Tuple] = []

        def scored(attribute: str) -> float:
            if not materialisation:
                materialisation.append(self._scoring_materialisation(step))
            scoring_inputs, scoring_output = materialisation[0]
            return chosen_measure.score(scoring_inputs, step, scoring_output, attribute)

        return {
            attribute: context.score(base_key + (attribute,),
                                     lambda attribute=attribute: scored(attribute))
            for attribute in columns
        }

    # ---------------------------------------------------------------- internals
    def _candidate_columns(self, step: ExploratoryStep,
                           measure: InterestingnessMeasure) -> List[str]:
        columns = measure.applicable_columns(step)
        exclude = set(self.config.exclude_columns)
        columns = [name for name in columns if name not in exclude]
        if self.config.target_columns is not None:
            allowed = set(self.config.target_columns)
            columns = [name for name in columns if name in allowed]
        if not columns:
            raise ExplanationError(
                "no output column is applicable for explanation; "
                "check target_columns / exclude_columns"
            )
        return columns

    def _select_columns(self, scores: Dict[str, float]) -> List[str]:
        """The most interesting columns carried into the contribution phase."""
        positive = [(attribute, score) for attribute, score in scores.items() if score > 0]
        positive.sort(key=lambda item: (-item[1], item[0]))
        if self.config.top_k_columns is not None:
            positive = positive[: self.config.top_k_columns]
        return [attribute for attribute, _ in positive]

    def _scoring_materialisation(self, step: ExploratoryStep) -> Tuple[List[DataFrame], DataFrame]:
        """Inputs/output used for interestingness scoring (sampled when configured)."""
        sample_size = self.config.sample_size
        if sample_size is None:
            return list(step.inputs), step.output
        sampled_inputs = [
            frame.sample(sample_size, seed=self.config.seed) if frame.num_rows > sample_size
            else frame
            for frame in step.inputs
        ]
        if all(sampled is original for sampled, original in zip(sampled_inputs, step.inputs)):
            return list(step.inputs), step.output
        sampled_output = step.rerun(sampled_inputs)
        return sampled_inputs, sampled_output

    def _build_partitions(self, step: ExploratoryStep,
                          selected_columns: Sequence[str]) -> List[RowPartition]:
        """Lines 3–6: row partitions of each input dataframe."""
        partitions: List[RowPartition] = []
        for input_index, frame in enumerate(step.inputs):
            attributes = self._partition_attributes(step, frame, selected_columns)
            partitions.extend(self._partitions_for_frame(frame, attributes, input_index))
        if not partitions:
            # Fall back to partitioning on every input attribute before giving up.
            for input_index, frame in enumerate(step.inputs):
                partitions.extend(
                    self._partitions_for_frame(frame, frame.column_names, input_index)
                )
        return partitions

    def _partitions_for_frame(self, frame: DataFrame, attributes: Sequence[str],
                              input_index: int) -> List[RowPartition]:
        """Partitions of one input frame, memoized by the session context.

        Partitions depend only on the frame's *content* and the partitioning
        configuration, never on the step's operation, so a session can reuse
        them across steps (two different filters refined over the same input
        share every partition).  Caching is per attribute — the partitions
        of one attribute are independent of which other attributes were
        requested alongside it (the dedup signature embeds the attribute) —
        so steps selecting overlapping column sets still share the overlap.
        User-supplied partitioners are excluded from caching, since their
        identity is not captured by the key.
        """
        partitioners = default_partitioners(self.config.partition_methods) + self.extra_partitioners

        def build(subset: Sequence[str]) -> List[RowPartition]:
            return build_partitions(
                frame, subset, self.config.set_counts, partitioners,
                input_index=input_index,
                min_group_values=self.config.min_group_values,
            )

        if self.context is None or self.extra_partitioners:
            return build(attributes)
        fingerprint = self.context.frame_fingerprint(frame)
        partitions: List[RowPartition] = []
        for attribute in attributes:
            key = (
                fingerprint, attribute, tuple(self.config.set_counts),
                tuple(self.config.partition_methods), input_index,
                self.config.min_group_values,
            )
            partitions.extend(self.context.partitions(
                key, lambda attribute=attribute: build([attribute])
            ))
        return partitions

    def _attributes_for_partition(self, step: ExploratoryStep, partition: RowPartition,
                                  selected_columns: Sequence[str]) -> List[str]:
        """Which output attributes a partition's sets-of-rows are paired with.

        In the exhaustive ``partition_source="all"`` mode every partition is
        paired with every selected column (the full cross product of
        Algorithm 1, line 8).  In the default ``"target"`` mode the pairing
        follows the paper's examples: for group-by steps the partitions are
        built on the grouping keys and explain every aggregated column, while
        for filter/join/union steps a partition built on attribute ``A``
        explains ``A`` itself (Figure 2a explains the 'decade' deviation with
        the 'decade' sets-of-rows).
        """
        if self.config.partition_source == "all":
            return list(selected_columns)
        if isinstance(step.operation, GroupBy):
            return list(selected_columns)
        if partition.source_attribute in selected_columns:
            return [partition.source_attribute]
        return list(selected_columns)

    def _partition_attributes(self, step: ExploratoryStep, frame: DataFrame,
                              selected_columns: Sequence[str]) -> List[str]:
        """Which input attributes to partition on.

        ``partition_source="target"`` (default, and what the paper's examples
        show): for exceptionality steps the attribute being explained itself;
        for group-by steps the grouping key(s).  ``"all"`` partitions on every
        input attribute (exhaustive ablation mode).
        """
        if self.config.partition_source == "all":
            return frame.column_names
        operation = step.operation
        if isinstance(operation, GroupBy):
            return [key for key in operation.keys if key in frame]
        return [name for name in selected_columns if name in frame]


def _deduplicate(candidates: List[ExplanationCandidate]) -> List[ExplanationCandidate]:
    """Drop candidates describing the same (attribute, set-of-rows) as an earlier one.

    Different partition granularities (5 vs 10 sets-of-rows) and different
    partition methods frequently rediscover the same set-of-rows; presenting
    it twice adds nothing for the user.
    """
    seen: set = set()
    unique: List[ExplanationCandidate] = []
    for candidate in candidates:
        identity = (candidate.attribute, candidate.row_set.label_attribute,
                    candidate.row_set.label)
        if identity in seen:
            continue
        seen.add(identity)
        unique.append(candidate)
    return unique


class ExplainerPool:
    """One :class:`FedexExplainer` per distinct configuration, built lazily.

    The memo key is the configuration's content signature, so two equal
    configs (by value, not identity) share one engine.  Both the plain
    :class:`~repro.explain.explainable.ExplainableDataFrame` wrapper and the
    :class:`~repro.session.ExplanationSession` reuse engines through this
    pool, keeping the two paths from drifting in how engines are memoized.

    ``factory`` builds the engine for a config; the default builds a bare
    :class:`FedexExplainer` (sessions inject registry/partitioners/context).

    The pool is thread-safe: concurrent service workers asking for the same
    configuration receive the same engine, built exactly once (the factory
    runs under the pool lock).  Sharing one engine across workers is sound
    because :meth:`FedexExplainer.explain` keeps all per-request state in
    locals — the engine object itself only holds immutable configuration
    plus the (independently thread-safe) session context.
    """

    def __init__(self, factory: Optional[Callable[[FedexConfig], FedexExplainer]] = None) -> None:
        self._factory = factory or (lambda config: FedexExplainer(config=config))
        self._explainers: Dict[Tuple, FedexExplainer] = {}
        self._lock = threading.Lock()

    def for_config(self, config: FedexConfig) -> FedexExplainer:
        """The pooled engine for a configuration, constructed on first use."""
        from .signatures import config_signature

        key = config_signature(config)
        explainer = self._explainers.get(key)
        if explainer is None:
            with self._lock:
                explainer = self._explainers.get(key)
                if explainer is None:
                    explainer = self._factory(config)
                    self._explainers[key] = explainer
        return explainer

    def clear(self) -> None:
        """Drop every pooled engine."""
        with self._lock:
            self._explainers.clear()

    def __len__(self) -> int:
        return len(self._explainers)

    def values(self):
        """The pooled engines (inspection/tests)."""
        return self._explainers.values()


def explain_step(step: ExploratoryStep, config: FedexConfig | None = None,
                 measure: str | None = None) -> ExplanationReport:
    """One-shot convenience wrapper: explain a step with a fresh engine."""
    return FedexExplainer(config=config).explain(step, measure=measure)
