"""Explanations: the final artefact returned to the user.

An :class:`Explanation` couples a dominating explanation candidate with its
captioned visualization (paper §3.7): a natural-language caption and a chart
spec that can be rendered as ASCII text or exported as JSON.

:func:`build_explanation` turns a skyline candidate into an explanation by
re-running the step's operation restricted to each set-of-rows of the
candidate's partition — this yields the "before vs after" frequencies of the
exceptionality chart and the per-group aggregated values of the diversity
chart, exactly the quantities the paper's Figure 2 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..operators.operations import MEASURE_DIVERSITY, MEASURE_EXCEPTIONALITY
from ..operators.step import ExploratoryStep
from ..stats.dispersion import mean_and_std
from ..viz.chartspec import BarChartWithReference, ChartSpec, SideBySideBarChart
from ..viz.render_text import render_chart
from .candidates import ExplanationCandidate
from .captions import diversity_caption, exceptionality_caption, generic_caption
from .partition import RowPartition, RowSet


@dataclass
class Explanation:
    """A captioned, visualised explanation of one exploratory step."""

    candidate: ExplanationCandidate
    caption: str
    chart: Optional[ChartSpec]
    step_description: str

    @property
    def attribute(self) -> str:
        """The explained output column ``A``."""
        return self.candidate.attribute

    @property
    def row_set_label(self) -> str:
        """Label of the contributing set-of-rows ``R``."""
        return self.candidate.row_set.label

    @property
    def interestingness(self) -> float:
        """Interestingness score of the explained column."""
        return self.candidate.interestingness

    @property
    def standardized_contribution(self) -> float:
        """Standardized contribution of the set-of-rows."""
        return self.candidate.standardized_contribution

    def render_text(self, width: int = 40) -> str:
        """Caption plus ASCII chart, ready to print in a terminal/notebook."""
        parts = [f"Step: {self.step_description}", "", f"Explanation: {self.caption}"]
        if self.chart is not None:
            parts.extend(["", render_chart(self.chart, width=width)])
        return "\n".join(parts)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation of the explanation."""
        return {
            "attribute": self.attribute,
            "row_set": {
                "label": self.candidate.row_set.label,
                "label_attribute": self.candidate.row_set.label_attribute,
                "source_attribute": self.candidate.row_set.source_attribute,
                "method": self.candidate.row_set.method,
                "size": self.candidate.row_set.size,
            },
            "scores": {
                "interestingness": self.candidate.interestingness,
                "contribution": self.candidate.contribution,
                "standardized_contribution": self.candidate.standardized_contribution,
                "measure": self.candidate.measure_name,
            },
            "caption": self.caption,
            "chart": self.chart.to_dict() if self.chart is not None else None,
            "step": self.step_description,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Explanation({self.attribute!r}, {self.row_set_label!r})"


def build_explanation(step: ExploratoryStep, candidate: ExplanationCandidate,
                      partition: RowPartition) -> Explanation:
    """Build the captioned visualization for a dominating candidate."""
    if candidate.measure_name == MEASURE_DIVERSITY:
        chart, caption = _diversity_visual(step, candidate, partition)
    elif candidate.measure_name == MEASURE_EXCEPTIONALITY:
        chart, caption = _exceptionality_visual(step, candidate, partition)
    else:
        chart, caption = None, generic_caption(
            candidate.attribute, candidate.row_set.label, candidate.measure_name,
            candidate.interestingness, candidate.standardized_contribution,
        )
    return Explanation(
        candidate=candidate,
        caption=caption,
        chart=chart,
        step_description=step.describe(),
    )


# --------------------------------------------------------------------------- internals
def _restricted_output(step: ExploratoryStep, row_set: RowSet):
    """Output of the step's operation applied with the input restricted to ``row_set``."""
    restricted_input = step.inputs[row_set.input_index].take(row_set.indices)
    inputs = step.with_inputs_replaced(row_set.input_index, restricted_input)
    return step.rerun(inputs)


def _exceptionality_visual(step: ExploratoryStep, candidate: ExplanationCandidate,
                           partition: RowPartition):
    """Side-by-side before/after frequency chart + caption (Figure 2a style)."""
    input_frame = step.inputs[partition.input_index]
    total_input = max(input_frame.num_rows, 1)
    total_output = max(step.output.num_rows, 1)

    categories: List[str] = []
    before: List[float] = []
    after: List[float] = []
    highlight_index = None
    chosen_before = chosen_after = 0.0
    for position, row_set in enumerate(partition.sets):
        before_fraction = row_set.size / total_input
        restricted = _restricted_output(step, row_set)
        after_fraction = restricted.num_rows / total_output
        categories.append(row_set.label)
        before.append(100.0 * before_fraction)
        after.append(100.0 * after_fraction)
        if row_set.label == candidate.row_set.label:
            highlight_index = position
            chosen_before, chosen_after = before_fraction, after_fraction

    chart = SideBySideBarChart(
        title=f"Distribution change of '{candidate.attribute}'",
        x_label=candidate.row_set.label_attribute,
        categories=categories,
        before=before,
        after=after,
        highlight_index=highlight_index,
    )
    caption = exceptionality_caption(
        candidate.attribute, candidate.row_set.label, chosen_before, chosen_after
    )
    return chart, caption


def _diversity_visual(step: ExploratoryStep, candidate: ExplanationCandidate,
                      partition: RowPartition):
    """Per-group aggregated-value chart with a mean line + caption (Figure 2b style)."""
    attribute = candidate.attribute
    output_column = step.output[attribute] if attribute in step.output else None
    overall_values = output_column.to_float() if output_column is not None else np.asarray([])
    overall_mean, overall_std = mean_and_std(overall_values)

    entries = []
    chosen_value = float("nan")
    for row_set in partition.sets:
        restricted = _restricted_output(step, row_set)
        if attribute in restricted and restricted.num_rows > 0:
            value = float(np.nanmean(restricted[attribute].to_float()))
        else:
            value = float("nan")
        is_chosen = row_set.label == candidate.row_set.label
        if is_chosen:
            chosen_value = value
        # Sets that contribute no groups at all (e.g. rows removed by the
        # operation's pre-filter) carry no signal; keep the chart readable by
        # omitting them unless they are the highlighted set itself.
        if value != value and not is_chosen:
            continue
        entries.append((row_set.label, value, is_chosen))
    entries.sort(key=lambda item: item[0])
    categories = [label for label, _, _ in entries]
    values = [value for _, value, _ in entries]
    highlight_index = next(
        (position for position, (_, _, is_chosen) in enumerate(entries) if is_chosen), None
    )

    z = 0.0 if overall_std == 0 or chosen_value != chosen_value else (
        (chosen_value - overall_mean) / overall_std
    )
    chart = BarChartWithReference(
        title=f"Mean '{attribute}' per {candidate.row_set.label_attribute}",
        x_label=candidate.row_set.label_attribute,
        y_label=f"Mean '{attribute}'",
        categories=categories,
        values=values,
        reference_value=overall_mean,
        highlight_index=highlight_index,
    )
    caption = diversity_caption(
        attribute, candidate.row_set.label_attribute, candidate.row_set.label,
        chosen_value, overall_mean, z,
    )
    return chart, caption
