"""Row partitions of the input dataframe (paper §3.5).

A *row partition* splits the input dataframe into ``n`` disjoint
sets-of-rows plus an optional *ignore-set* ``R̂`` (Definition 3.8).  FEDEX
ships three partition families and accepts user-defined ones:

* **Frequency-based** — one set per most-prevalent value of an attribute,
  remaining rows in the ignore-set.
* **Numeric-binning** — equal-frequency intervals of a numeric attribute
  (empty ignore-set).
* **Many-to-one** — the attribute is mapped through a strictly coarser
  attribute ``B`` (functional dependency ``A → B``), then frequency-split
  over ``B`` (e.g. year → decade).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataframe.column import Column
from ..dataframe.frame import DataFrame
from ..errors import PartitionError


@dataclass
class RowSet:
    """A set-of-rows ``R`` of an input dataframe.

    Attributes
    ----------
    label:
        Human-readable label of the set (the attribute value, the interval
        bounds, or the coarser attribute's value), used in captions.
    indices:
        Positional row indices of the input dataframe belonging to the set.
    source_attribute:
        The attribute the partition was built on.
    label_attribute:
        The attribute whose value names the set.  Equal to
        ``source_attribute`` except for many-to-one partitions, where it is
        the coarser attribute ``B``.
    method:
        Partition family name (``frequency`` / ``binning`` / ``many_to_one``
        or a custom name).
    input_index:
        Which input dataframe of the step the indices refer to.
    is_ignore:
        True for the ignore-set ``R̂`` (never becomes an explanation).
    values:
        The raw value(s) of ``label_attribute`` defining this set (used to
        locate the same rows in the output dataframe for captions/plots).
    interval:
        For binning partitions, the ``(low, high)`` bounds of the interval.
    """

    label: str
    indices: np.ndarray
    source_attribute: str
    label_attribute: str
    method: str
    input_index: int = 0
    is_ignore: bool = False
    values: Tuple = ()
    interval: Optional[Tuple[float, float]] = None

    @property
    def size(self) -> int:
        """Number of rows in the set."""
        return int(self.indices.size)

    def key(self) -> Tuple:
        """Hashable identity of the set (used for ranking-metric comparisons)."""
        return (self.method, self.source_attribute, self.label_attribute, self.label,
                self.input_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RowSet({self.label!r}, n={self.size}, attr={self.source_attribute!r}, "
                f"method={self.method})")


@dataclass
class RowPartition:
    """A full partition: the sets-of-rows plus the optional ignore-set."""

    sets: List[RowSet]
    ignore_set: Optional[RowSet] = None
    source_attribute: str = ""
    method: str = ""
    input_index: int = 0
    n_requested: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check Definition 3.8: sets are pairwise disjoint."""
        seen: set = set()
        for row_set in self.all_sets():
            indices = set(int(i) for i in row_set.indices)
            overlap = seen & indices
            if overlap:
                raise PartitionError(
                    f"row sets of partition on {self.source_attribute!r} overlap "
                    f"({len(overlap)} shared rows)"
                )
            seen |= indices

    def all_sets(self) -> List[RowSet]:
        """Candidate sets plus the ignore-set (when present)."""
        if self.ignore_set is not None:
            return self.sets + [self.ignore_set]
        return list(self.sets)

    def covered_rows(self) -> int:
        """Total number of rows covered by the partition (including ignore-set)."""
        return sum(row_set.size for row_set in self.all_sets())

    def __len__(self) -> int:
        return len(self.sets)

    def __iter__(self):
        return iter(self.sets)


class Partitioner(ABC):
    """Base class of the partition families."""

    #: Registry / caption name of the family.
    method: str = "partition"

    @abstractmethod
    def partition(self, frame: DataFrame, attribute: str, n_sets: int,
                  input_index: int = 0) -> Optional[RowPartition]:
        """Partition ``frame`` on ``attribute`` into up to ``n_sets`` sets-of-rows.

        Returns ``None`` when the method is not applicable to the attribute
        (e.g. numeric binning of a categorical column, or no many-to-one
        companion exists).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FrequencyPartitioner(Partitioner):
    """One set-of-rows per most-prevalent value; remaining rows are ignored."""

    method = "frequency"

    def partition(self, frame: DataFrame, attribute: str, n_sets: int,
                  input_index: int = 0) -> Optional[RowPartition]:
        if attribute not in frame:
            return None
        column = frame[attribute]
        codes, uniques = column.factorize()
        if len(uniques) < 2:
            return None
        counts = np.bincount(codes[codes >= 0], minlength=len(uniques))
        ranked = sorted(
            range(len(uniques)), key=lambda position: (-counts[position], str(uniques[position]))
        )
        top_positions = ranked[:n_sets]

        sets = []
        covered = np.zeros(frame.num_rows, dtype=bool)
        for position in top_positions:
            member_indices = np.flatnonzero(codes == position)
            covered[member_indices] = True
            value = uniques[position]
            sets.append(RowSet(
                label=_format_value(value),
                indices=member_indices.astype(np.int64),
                source_attribute=attribute,
                label_attribute=attribute,
                method=self.method,
                input_index=input_index,
                values=(value,),
            ))
        ignore_indices = np.flatnonzero(~covered)
        ignore_set = None
        if ignore_indices.size:
            ignore_set = RowSet(
                label="(other values)",
                indices=ignore_indices.astype(np.int64),
                source_attribute=attribute,
                label_attribute=attribute,
                method=self.method,
                input_index=input_index,
                is_ignore=True,
            )
        return RowPartition(
            sets=sets, ignore_set=ignore_set, source_attribute=attribute,
            method=self.method, input_index=input_index, n_requested=n_sets,
        )


class NumericBinningPartitioner(Partitioner):
    """Equal-frequency intervals of a numeric attribute (empty ignore-set)."""

    method = "binning"

    def partition(self, frame: DataFrame, attribute: str, n_sets: int,
                  input_index: int = 0) -> Optional[RowPartition]:
        if attribute not in frame:
            return None
        column = frame[attribute]
        if not column.is_numeric:
            return None
        values = column.to_float()
        finite_mask = ~np.isnan(values)
        finite = values[finite_mask]
        if finite.size == 0 or np.unique(finite).size < 2:
            return None
        n_bins = min(n_sets, int(np.unique(finite).size))
        quantiles = np.quantile(finite, np.linspace(0.0, 1.0, n_bins + 1))
        edges = np.unique(quantiles)
        if edges.size < 2:
            return None
        # Assign each row to a bin; the last bin is closed on the right.
        bin_ids = np.digitize(values, edges[1:-1], right=True)
        sets: List[RowSet] = []
        ignore_indices = np.flatnonzero(~finite_mask)
        for bin_id in range(edges.size - 1):
            member_mask = finite_mask & (bin_ids == bin_id)
            indices = np.flatnonzero(member_mask)
            if indices.size == 0:
                continue
            low, high = float(edges[bin_id]), float(edges[bin_id + 1])
            sets.append(RowSet(
                label=_format_interval(low, high, closed=bin_id == edges.size - 2),
                indices=indices.astype(np.int64),
                source_attribute=attribute,
                label_attribute=attribute,
                method=self.method,
                input_index=input_index,
                interval=(low, high),
            ))
        if len(sets) < 2:
            return None
        ignore_set = None
        if ignore_indices.size:
            ignore_set = RowSet(
                label="(missing values)",
                indices=ignore_indices.astype(np.int64),
                source_attribute=attribute,
                label_attribute=attribute,
                method=self.method,
                input_index=input_index,
                is_ignore=True,
            )
        return RowPartition(
            sets=sets, ignore_set=ignore_set, source_attribute=attribute,
            method=self.method, input_index=input_index, n_requested=n_sets,
        )


class ManyToOnePartitioner(Partitioner):
    """Partition an attribute through a strictly coarser attribute ``B``.

    For the attribute ``A`` we search for attributes ``B`` such that ``A``
    functionally determines ``B`` (condition 1) while ``B`` merges at least
    two distinct ``A`` values (condition 2).  Rows are then frequency-split
    on ``B``; the coarser attribute's values become the labels (e.g.
    year → decade in the running example).
    """

    method = "many_to_one"

    def __init__(self, max_companions: int = 3, max_distinct_ratio: float = 0.9) -> None:
        self.max_companions = max_companions
        self.max_distinct_ratio = max_distinct_ratio
        self._frequency = FrequencyPartitioner()

    def partition(self, frame: DataFrame, attribute: str, n_sets: int,
                  input_index: int = 0) -> Optional[RowPartition]:
        companions = self.find_companions(frame, attribute)
        for companion in companions[: self.max_companions]:
            base = self._frequency.partition(frame, companion, n_sets, input_index=input_index)
            if base is None:
                continue
            sets = [
                RowSet(
                    label=row_set.label,
                    indices=row_set.indices,
                    source_attribute=attribute,
                    label_attribute=companion,
                    method=self.method,
                    input_index=input_index,
                    values=row_set.values,
                )
                for row_set in base.sets
            ]
            ignore_set = None
            if base.ignore_set is not None:
                ignore_set = RowSet(
                    label=base.ignore_set.label,
                    indices=base.ignore_set.indices,
                    source_attribute=attribute,
                    label_attribute=companion,
                    method=self.method,
                    input_index=input_index,
                    is_ignore=True,
                )
            return RowPartition(
                sets=sets, ignore_set=ignore_set, source_attribute=attribute,
                method=self.method, input_index=input_index, n_requested=n_sets,
            )
        return None

    def find_companions(self, frame: DataFrame, attribute: str) -> List[str]:
        """Attributes ``B`` with a many-to-one relationship from ``attribute``.

        Checks the two conditions of §3.5 and ranks candidates by how much
        coarser they are (fewer distinct values first), which tends to yield
        the most readable explanations.  The functional-dependency test is
        vectorised: ``A → B`` holds exactly when the number of distinct
        (A, B) pairs equals the number of distinct A values.
        """
        if attribute not in frame:
            return []
        source_codes, source_uniques = frame[attribute].factorize()
        source_distinct = len(source_uniques)
        if source_distinct < 2:
            return []
        source_valid = source_codes >= 0
        candidates: List[Tuple[int, str]] = []
        for other in frame.column_names:
            if other == attribute:
                continue
            other_codes, other_uniques = frame[other].factorize()
            distinct_b = len(other_uniques)
            if distinct_b < 2 or distinct_b >= source_distinct:
                continue
            if distinct_b > self.max_distinct_ratio * source_distinct:
                continue
            both_valid = source_valid & (other_codes >= 0)
            if not both_valid.any():
                continue
            pair_codes = source_codes[both_valid] * distinct_b + other_codes[both_valid]
            distinct_pairs = np.unique(pair_codes).size
            distinct_a_present = np.unique(source_codes[both_valid]).size
            functional = distinct_pairs == distinct_a_present
            strictly_coarser = np.unique(other_codes[both_valid]).size < distinct_a_present
            if functional and strictly_coarser:
                candidates.append((distinct_b, other))
        candidates.sort()
        return [name for _, name in candidates]


class MappingPartitioner(Partitioner):
    """User-defined partition via an explicit value-mapping function (§3.8).

    ``mapper`` receives a raw attribute value and returns the label of the
    set the row belongs to (returning ``None`` sends the row to the
    ignore-set).  Useful for custom date bucketing, geo roll-ups, etc.
    """

    def __init__(self, name: str, mapper) -> None:
        self.method = name
        self._mapper = mapper

    def partition(self, frame: DataFrame, attribute: str, n_sets: int,
                  input_index: int = 0) -> Optional[RowPartition]:
        if attribute not in frame:
            return None
        labels = [self._mapper(value) for value in frame[attribute].tolist()]
        buckets: Dict[str, List[int]] = {}
        ignore: List[int] = []
        for row_index, label in enumerate(labels):
            if label is None:
                ignore.append(row_index)
            else:
                buckets.setdefault(str(label), []).append(row_index)
        if len(buckets) < 2:
            return None
        ranked = sorted(buckets.items(), key=lambda item: (-len(item[1]), item[0]))[:n_sets]
        kept_labels = {label for label, _ in ranked}
        for label, indices in buckets.items():
            if label not in kept_labels:
                ignore.extend(indices)
        sets = [
            RowSet(
                label=label,
                indices=np.asarray(indices, dtype=np.int64),
                source_attribute=attribute,
                label_attribute=attribute,
                method=self.method,
                input_index=input_index,
                values=(label,),
            )
            for label, indices in ranked
        ]
        ignore_set = None
        if ignore:
            ignore_set = RowSet(
                label="(other values)",
                indices=np.asarray(sorted(ignore), dtype=np.int64),
                source_attribute=attribute,
                label_attribute=attribute,
                method=self.method,
                input_index=input_index,
                is_ignore=True,
            )
        return RowPartition(
            sets=sets, ignore_set=ignore_set, source_attribute=attribute,
            method=self.method, input_index=input_index, n_requested=n_sets,
        )


def default_partitioners(methods: Sequence[str] = ("frequency", "binning", "many_to_one")) -> List[Partitioner]:
    """The partitioners corresponding to the configured method names."""
    available: Dict[str, Partitioner] = {
        "frequency": FrequencyPartitioner(),
        "binning": NumericBinningPartitioner(),
        "many_to_one": ManyToOnePartitioner(),
    }
    unknown = [m for m in methods if m not in available]
    if unknown:
        raise PartitionError(f"unknown partition methods: {unknown}")
    return [available[m] for m in methods]


def build_partitions(frame: DataFrame, attributes: Sequence[str], n_sets_options: Sequence[int],
                     partitioners: Sequence[Partitioner], input_index: int = 0,
                     min_group_values: int = 2) -> List[RowPartition]:
    """All partitions of ``frame`` over the given attributes, methods, and sizes.

    Implements lines 3–6 of Algorithm 1: the union of every row-partition
    produced by every configured method, for every candidate attribute and
    every requested number of sets-of-rows.  Duplicate partitions (same
    method, attribute, and resulting set labels) are dropped.
    """
    partitions: List[RowPartition] = []
    seen_signatures: set = set()
    for attribute in attributes:
        if attribute not in frame:
            continue
        if frame[attribute].n_unique() < min_group_values:
            continue
        for n_sets in n_sets_options:
            for partitioner in partitioners:
                partition = partitioner.partition(frame, attribute, n_sets, input_index=input_index)
                if partition is None or len(partition) < 2:
                    continue
                signature = (
                    partition.method,
                    partition.source_attribute,
                    tuple(row_set.label for row_set in partition.sets),
                    input_index,
                )
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                partitions.append(partition)
    return partitions


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _format_interval(low: float, high: float, closed: bool) -> str:
    bracket = "]" if closed else ")"
    return f"[{_format_number(low)}, {_format_number(high)}{bracket}"


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"
