"""Content signatures of steps and configurations.

The session layer (:mod:`repro.session`) memoizes work across ``explain()``
calls, which needs value-based identities for the two things that determine
an explanation: the exploratory step and the engine configuration.  Object
identity is useless for this — a notebook user who re-runs a cell builds a
brand-new, content-identical step — so both signatures are derived purely
from content:

* a **step signature** combines the operation's declarative description with
  content fingerprints of every input (and the output) dataframe;
* a **config signature** is the tuple of every :class:`FedexConfig` field,
  with sequences normalised to tuples so the result is hashable.

Two steps/configs with equal signatures produce equal explanation reports,
which is exactly the soundness condition of the session's full-report
memoization.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Tuple

from ..operators.step import ExploratoryStep
from .config import FedexConfig


def step_signature(step: ExploratoryStep, frame_fingerprint=None) -> Tuple:
    """Hashable content identity of an exploratory step.

    The operation contributes its kind and its faithful
    :meth:`~repro.operators.operations.Operation.signature` (which spells
    out predicates, keys, aggregations, join sides, ... without the lossy
    summarising `describe()` may do); the dataframes contribute content
    fingerprints, recomputed from the raw values on every call so in-place
    mutations of an input change the signature.  ``frame_fingerprint``
    optionally replaces the per-frame hashing (the session passes its
    request-scoped memoized variant).
    """
    hash_frame = frame_fingerprint or (lambda frame: frame.fingerprint())
    return (
        step.operation.kind,
        step.operation.signature(),
        tuple(hash_frame(frame) for frame in step.inputs),
        hash_frame(step.output),
    )


def config_signature(config: FedexConfig) -> Tuple:
    """Hashable content identity of an engine configuration.

    Every field participates — including fields (like ``workers``) that
    cannot change the report's content — so the signature stays trivially
    correct when new fields are added: a too-fine key costs a recomputation,
    a too-coarse one would serve a wrong report.
    """
    parts = []
    for field in fields(config):
        value = getattr(config, field.name)
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        parts.append((field.name, value))
    return tuple(parts)
