"""Interestingness measures (paper §3.2).

FEDEX scores each column ``A`` of the output dataframe of a step
``Q = (D_in, q, d_out)`` with an interestingness function ``I_A(Q)``:

* **Exceptionality** (filter / join / union): the two-sample Kolmogorov–
  Smirnov statistic between the value distributions of ``d_in[A]`` and
  ``d_out[A]`` (Eq. 1).  For a join, the input holding attribute ``A`` is the
  reference; for a union, the maximum KS over the inputs is used.
* **Diversity** (group-by): the coefficient of variation of the aggregated
  values of ``d_out[A]`` (Eq. 2).

The registry at the bottom lets users plug in custom measures (§3.8) with no
requirements on monotonicity or non-negativity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence

from ..dataframe.frame import DataFrame
from ..errors import MeasureError
from ..operators.operations import GroupBy, MEASURE_DIVERSITY, MEASURE_EXCEPTIONALITY
from ..operators.step import ExploratoryStep
from ..stats.dispersion import coefficient_of_variation
from ..stats.ks import ks_columns


class InterestingnessMeasure(ABC):
    """Scores the interestingness of one output column of an exploratory step."""

    #: Registry name of the measure.
    name: str = "measure"

    @abstractmethod
    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        """Interestingness of ``attribute`` for the step with the given materialisation.

        ``inputs`` and ``output`` are passed explicitly (rather than read from
        ``step``) because both the sampling optimization and the contribution
        computation re-evaluate the same measure on *modified* inputs/outputs.
        """

    @abstractmethod
    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        """The output columns this measure can score for the given step."""

    def score_step(self, step: ExploratoryStep, attribute: str) -> float:
        """Score the step as materialised (no sampling, no intervention)."""
        return self.score(step.inputs, step, step.output, attribute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ExceptionalityMeasure(InterestingnessMeasure):
    """KS-statistic deviation between input and output column distributions (Eq. 1)."""

    name = MEASURE_EXCEPTIONALITY

    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        if attribute not in output:
            return 0.0
        after = output[attribute]
        scores = []
        for frame in inputs:
            if attribute in frame:
                scores.append(ks_columns(frame[attribute], after))
        if not scores:
            return 0.0
        # Single input -> plain Eq. 1; join -> the (only) input holding A;
        # union -> the paper's max over the inputs.
        return max(scores)

    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        present_in_inputs = set()
        for frame in step.inputs:
            present_in_inputs.update(frame.column_names)
        return [name for name in step.output.column_names if name in present_in_inputs]


class DiversityMeasure(InterestingnessMeasure):
    """Coefficient-of-variation diversity of aggregated group-by columns (Eq. 2)."""

    name = MEASURE_DIVERSITY

    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        if attribute not in output:
            return 0.0
        column = output[attribute]
        if not column.is_numeric:
            return 0.0
        return coefficient_of_variation(column.to_float())

    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        operation = step.operation
        if isinstance(operation, GroupBy):
            aggregated = [
                name for name in operation.aggregated_output_columns() if name in step.output
            ]
            if aggregated:
                return aggregated
        # Fallback for generic operations: every numeric, non-key output column.
        keys = set(getattr(operation, "keys", []) or [])
        return [
            name for name in step.output.numeric_columns() if name not in keys
        ]


class FunctionMeasure(InterestingnessMeasure):
    """Adapter turning a plain scoring function into a measure (custom measures, §3.8).

    The function receives ``(inputs, step, output, attribute)`` and returns a
    float.  ``columns`` optionally restricts which output columns the measure
    applies to ("numeric", "categorical", "all", or an explicit list).
    """

    def __init__(self, name: str,
                 func: Callable[[Sequence[DataFrame], ExploratoryStep, DataFrame, str], float],
                 columns: str | Sequence[str] = "all") -> None:
        self.name = name
        self._func = func
        self._columns = columns

    def score(self, inputs: Sequence[DataFrame], step: ExploratoryStep, output: DataFrame,
              attribute: str) -> float:
        if attribute not in output:
            return 0.0
        return float(self._func(inputs, step, output, attribute))

    def applicable_columns(self, step: ExploratoryStep) -> List[str]:
        if isinstance(self._columns, str):
            if self._columns == "numeric":
                return step.output.numeric_columns()
            if self._columns == "categorical":
                return step.output.categorical_columns()
            return step.output.column_names
        return [name for name in self._columns if name in step.output]


class MeasureRegistry:
    """Registry of interestingness measures keyed by name.

    The default registry holds the paper's two measures; users can register
    custom measures and ask for them by name in :class:`~repro.core.engine.
    FedexExplainer`.
    """

    def __init__(self) -> None:
        self._measures: Dict[str, InterestingnessMeasure] = {}

    def register(self, measure: InterestingnessMeasure, overwrite: bool = False) -> None:
        """Add a measure; raises unless ``overwrite`` when the name is taken."""
        if measure.name in self._measures and not overwrite:
            raise MeasureError(f"measure {measure.name!r} is already registered")
        self._measures[measure.name] = measure

    def get(self, name: str) -> InterestingnessMeasure:
        """Look a measure up by name."""
        if name not in self._measures:
            raise MeasureError(
                f"unknown interestingness measure {name!r}; registered: {sorted(self._measures)}"
            )
        return self._measures[name]

    def names(self) -> List[str]:
        """Registered measure names."""
        return sorted(self._measures)

    def __contains__(self, name: str) -> bool:
        return name in self._measures


def default_registry() -> MeasureRegistry:
    """A registry pre-populated with the exceptionality and diversity measures."""
    registry = MeasureRegistry()
    registry.register(ExceptionalityMeasure())
    registry.register(DiversityMeasure())
    return registry


def measure_for_step(step: ExploratoryStep, registry: MeasureRegistry | None = None,
                     override: str | None = None) -> InterestingnessMeasure:
    """Pick the interestingness measure for a step.

    ``override`` forces a specific registered measure; otherwise the
    operation's default family is used (exceptionality for filter / join /
    union, diversity for group-by), per §3.2.
    """
    registry = registry or default_registry()
    name = override if override is not None else step.operation.default_measure
    return registry.get(name)
