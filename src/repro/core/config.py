"""Configuration of the FEDEX explanation engine.

All knobs of Algorithm 1 and of the fedex-Sampling optimization live here so
that experiments can sweep them declaratively.  The defaults follow the
paper: partitions of 5 and 10 sets-of-rows, a 5K-row uniform sample for the
sampling variant, and the skyline operator (optionally followed by a
weighted top-k cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from ..errors import ExplanationError
from .backends.base import DEFAULT_BACKEND, resolve_backend_class

#: Default numbers of sets-of-rows fedex tries (paper §4.3: "5 or 10").
DEFAULT_SET_COUNTS = (5, 10)

#: Default sample size of fedex-Sampling (paper §4.2/§4.3: 5K rows).
DEFAULT_SAMPLE_SIZE = 5_000

_UNSET = object()


@dataclass(frozen=True)
class FedexConfig:
    """Parameters of the explanation generation process.

    Parameters
    ----------
    sample_size:
        Number of rows of the uniform sample used for the interestingness
        computation (fedex-Sampling).  ``None`` disables sampling — this is
        exact fedex.
    set_counts:
        Candidate numbers of sets-of-rows per partition; Algorithm 1 is run
        for each and the candidate pool is the union.
    top_k_columns:
        Only the ``top_k_columns`` most interesting output columns are carried
        into the contribution phase (the paper's two-step greedy process).
        ``None`` keeps every column.
    top_k_explanations:
        Maximal number of explanations returned after the skyline (ranked by
        the weighted score).  ``None`` returns the whole skyline.
    interestingness_weight / contribution_weight:
        Weights ``W_I`` and ``W_C`` of the optional weighted score used to
        rank skyline explanations.
    partition_methods:
        Which partition families to use: any subset of ``"frequency"``,
        ``"binning"``, ``"many_to_one"``.
    partition_source:
        ``"target"`` (default) partitions the input on the attribute being
        explained (and on the group-by keys for diversity steps), matching the
        paper's examples; ``"all"`` partitions on every input attribute — the
        exhaustive variant used by the ablation benchmarks.
    target_columns:
        Optional user-specified columns (§3.8): only these output columns are
        considered for explanation.
    exclude_columns:
        Output columns to skip (identifiers, free-text fields, ...).
    use_skyline:
        When False the skyline step is skipped and candidates are ranked by
        the weighted score directly (ablation).
    positive_contribution_only:
        Keep only candidates with a strictly positive raw contribution
        (Algorithm 1, line 11).  Exposed for ablation.
    seed:
        Random seed for the sampling step (determinism in tests/benchmarks).
    min_group_values:
        Partitions whose source column has fewer distinct values than this
        are skipped (a one-value partition cannot separate contributions).
    backend:
        Intervention-execution backend of the contribution phase:
        ``"incremental"`` (default) derives all row-set interventions of a
        step from shared precomputed structure, ``"exact"`` re-runs the
        operation per set-of-rows (the paper's literal semantics, kept as
        the reference oracle), ``"parallel"`` shards the partition ×
        attribute grid across a thread pool of incremental workers, and
        ``"process"`` shards the same grid across a *process* pool —
        inputs travel as mmap frame descriptors, so workers share the
        stored data's pages instead of receiving pickled copies.  See
        :mod:`repro.core.backends`.
    workers:
        Worker-pool size of the ``"parallel"`` and ``"process"`` backends.
        ``None`` lets the backend pick (``min(4, cpu_count)``); ignored by
        the serial backends.
    shard_batch:
        How many (partition, attribute) grid pairs one submitted job of a
        pooled backend carries.  Per-pair submission (``1``) pays one
        pickle/submit/result round-trip per pair, which dominates wide
        grids of small partitions; batching amortizes it without changing
        any result — outputs stay bit-identical to serial for every batch
        size.  ``None`` (default) resolves the ``REPRO_SHARD_BATCH``
        environment variable and then the automatic policy
        ``ceil(grid / (workers × oversubscription))``; see
        :func:`repro.core.backends.base.resolve_shard_batch`.  Ignored by
        the serial backends.
    spill_bytes:
        Spill threshold of the ``"process"`` backend: an in-memory input
        frame at or above this estimated size is written once to a
        content-addressed temp dataset and shared with the workers via
        mmap; below it the request runs on the serial incremental backend
        (process fan-out cannot pay for itself on tiny frames).  ``None``
        uses the module default
        (:data:`repro.core.backends.process.DEFAULT_SPILL_BYTES`, 4 MiB);
        ``0`` spills every in-memory input.  Storage-backed frames never
        spill — their descriptors are free.
    adaptive_batch:
        Cost-model batch sizing of the pooled backends: batches cover
        roughly equal *predicted wall-time* (plan class × set count × row
        count, upgraded to measured per-pair timings when the session has
        them) instead of equal pair counts, so one expensive pair no
        longer straggles a whole fixed batch.  Only consulted when
        ``shard_batch`` (and ``REPRO_SHARD_BATCH``) leave the size
        automatic.  ``None`` resolves ``REPRO_ADAPTIVE_BATCH`` and then
        defaults to on.  Results are bit-identical for every policy — the
        knob changes where batch boundaries fall, never a value.
    steal:
        Work-stealing between pool workers: the grid's batches go onto a
        shared queue, idle workers pull the next batch, and when the queue
        drains the largest in-flight remainder is split so no worker idles
        while another finishes a fat batch.  Crash-retry granularity stays
        per-pair and bit-identical.  ``None`` resolves ``REPRO_STEAL`` and
        then defaults to off.
    shared_structures:
        Pool-shared structure tier of the ``"process"`` backend: group-by /
        row-provenance / left-join structures built by one worker are
        published to a content-addressed spill store
        (:class:`~repro.storage.structures.StructureStore`) so the other
        workers — and post-crash replacement pools — load instead of
        rebuilding; each worker's private LRU remains the L1.  ``None``
        resolves ``REPRO_SHARED_STRUCTURES`` and then defaults to off.
    cache_reports:
        Let an :class:`~repro.session.ExplanationSession` memoize whole
        explanation reports keyed by (step signature, config signature) —
        re-explaining an already-seen step becomes a dictionary lookup.
        Only consulted when explaining through a session.
    cache_structures:
        Let a session reuse cross-step intervention structure (column
        argsorts / factorizations, row partitions, per-group partial
        aggregates, row provenance) keyed by content fingerprints.  Only
        consulted when explaining through a session.
    ks_budget_bytes:
        Memory budget of the batched 2-D KS pass
        (:func:`repro.stats.ks.ks_sorted_masked_batch`): partitions whose
        ``n_sets × n_rows`` working set would exceed the budget are
        re-scored in set-chunks instead of one allocation.  ``None`` uses
        the module default (:data:`repro.stats.ks.DEFAULT_KS_BUDGET_BYTES`).
    """

    sample_size: Optional[int] = None
    set_counts: Sequence[int] = DEFAULT_SET_COUNTS
    top_k_columns: Optional[int] = 5
    top_k_explanations: Optional[int] = None
    interestingness_weight: float = 1.0
    contribution_weight: float = 1.0
    partition_methods: Sequence[str] = ("frequency", "binning", "many_to_one")
    partition_source: str = "target"
    target_columns: Optional[Sequence[str]] = None
    exclude_columns: Sequence[str] = ()
    use_skyline: bool = True
    positive_contribution_only: bool = True
    seed: Optional[int] = 0
    min_group_values: int = 2
    backend: str = DEFAULT_BACKEND
    workers: Optional[int] = None
    shard_batch: Optional[int] = None
    spill_bytes: Optional[int] = None
    adaptive_batch: Optional[bool] = None
    steal: Optional[bool] = None
    shared_structures: Optional[bool] = None
    cache_reports: bool = True
    cache_structures: bool = True
    ks_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sample_size is not None and self.sample_size <= 0:
            raise ExplanationError(f"sample_size must be positive, got {self.sample_size}")
        if not self.set_counts:
            raise ExplanationError("set_counts must contain at least one value")
        if any(count < 1 for count in self.set_counts):
            raise ExplanationError(f"set_counts must be positive, got {list(self.set_counts)}")
        if self.partition_source not in ("target", "all"):
            raise ExplanationError(
                f"partition_source must be 'target' or 'all', got {self.partition_source!r}"
            )
        unknown = set(self.partition_methods) - {"frequency", "binning", "many_to_one"}
        if unknown:
            raise ExplanationError(f"unknown partition methods: {sorted(unknown)}")
        if self.interestingness_weight < 0 or self.contribution_weight < 0:
            raise ExplanationError("weights must be non-negative")
        if self.interestingness_weight == 0 and self.contribution_weight == 0:
            raise ExplanationError("at least one of the weights must be positive")
        resolve_backend_class(self.backend)
        if self.workers is not None and self.workers < 1:
            raise ExplanationError(f"workers must be positive, got {self.workers}")
        if self.shard_batch is not None and self.shard_batch < 1:
            raise ExplanationError(
                f"shard_batch must be positive, got {self.shard_batch}"
            )
        if self.spill_bytes is not None and self.spill_bytes < 0:
            raise ExplanationError(
                f"spill_bytes must be non-negative, got {self.spill_bytes}"
            )
        if self.ks_budget_bytes is not None and self.ks_budget_bytes < 1:
            raise ExplanationError(
                f"ks_budget_bytes must be positive, got {self.ks_budget_bytes}"
            )

    def with_backend(self, backend: str, workers=_UNSET) -> "FedexConfig":
        """A copy of this config using the given contribution backend.

        ``workers`` is only replaced when passed explicitly; omitting it
        preserves the config's existing worker count.
        """
        if workers is _UNSET:
            return replace(self, backend=backend)
        return replace(self, backend=backend, workers=workers)

    # ------------------------------------------------------------ conveniences
    def with_sampling(self, sample_size: int = DEFAULT_SAMPLE_SIZE) -> "FedexConfig":
        """A copy of this config with the fedex-Sampling optimization enabled."""
        return replace(self, sample_size=sample_size)

    def without_sampling(self) -> "FedexConfig":
        """A copy of this config with sampling disabled (exact fedex)."""
        return replace(self, sample_size=None)

    def restricted_to(self, columns: Sequence[str]) -> "FedexConfig":
        """A copy restricted to user-specified output columns (§3.8)."""
        return replace(self, target_columns=list(columns))

    @property
    def weighted_score_denominator(self) -> float:
        """``W_I + W_C`` — the denominator of the weighted explanation score."""
        return self.interestingness_weight + self.contribution_weight


#: Default global byte budget of a service's shared cache store (256 MiB).
DEFAULT_CACHE_BUDGET_BYTES = 256 * 1024 * 1024

#: Default worker-pool size of an :class:`~repro.service.ExplanationService`.
DEFAULT_SERVICE_WORKERS = 4


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of the multi-tenant explanation service front end.

    Kept separate from :class:`FedexConfig` on purpose: these knobs govern
    *serving* (shared memory, concurrency, admission) while ``FedexConfig``
    governs what one explanation computes — a service holds one of each.

    Parameters
    ----------
    cache_budget_bytes:
        Global byte budget of the shared
        :class:`~repro.session.store.CacheStore`; least-recently-used
        entries (across all tenants and cache layers) are evicted beyond
        it.  ``None`` disables byte-based eviction.
    tenant_quota_bytes:
        Per-tenant byte quota within the shared store: a tenant exceeding
        it evicts *its own* least-recently-used entries first.  ``None``
        leaves tenants bounded only by the global budget.
    workers:
        Size of the service's worker thread pool — the number of
        explanation requests executing concurrently.
    max_inflight_per_tenant:
        Admission bound: how many requests one tenant may have admitted
        (queued or executing) at once.  ``None`` admits everything.
    admission:
        What happens to a request beyond the tenant's in-flight bound:
        ``"block"`` (default) waits for a slot, ``"reject"`` raises
        :class:`~repro.errors.ServiceOverloadError` immediately (shed load).
    """

    cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET_BYTES
    tenant_quota_bytes: Optional[int] = None
    workers: int = DEFAULT_SERVICE_WORKERS
    max_inflight_per_tenant: Optional[int] = None
    admission: str = "block"

    def __post_init__(self) -> None:
        if self.cache_budget_bytes is not None and self.cache_budget_bytes < 1:
            raise ExplanationError(
                f"cache_budget_bytes must be positive, got {self.cache_budget_bytes}"
            )
        if self.tenant_quota_bytes is not None and self.tenant_quota_bytes < 1:
            raise ExplanationError(
                f"tenant_quota_bytes must be positive, got {self.tenant_quota_bytes}"
            )
        if self.workers < 1:
            raise ExplanationError(f"workers must be positive, got {self.workers}")
        if self.max_inflight_per_tenant is not None and self.max_inflight_per_tenant < 1:
            raise ExplanationError(
                "max_inflight_per_tenant must be positive, got "
                f"{self.max_inflight_per_tenant}"
            )
        if self.admission not in ("block", "reject"):
            raise ExplanationError(
                f"admission must be 'block' or 'reject', got {self.admission!r}"
            )


def exact_config(**overrides) -> FedexConfig:
    """The exact-fedex configuration (no sampling), with optional overrides."""
    return FedexConfig(**overrides)


def sampling_config(sample_size: int = DEFAULT_SAMPLE_SIZE, **overrides) -> FedexConfig:
    """The fedex-Sampling configuration with the paper's default 5K sample."""
    return FedexConfig(sample_size=sample_size, **overrides)
