"""Skyline selection of explanation candidates (paper §3.6–3.7).

The skyline operator [13] keeps only *dominating* candidates: a candidate is
dropped when some other candidate is at least as good on both the
interestingness of its column and its standardized contribution, and strictly
better on at least one of them (the standard Pareto-dominance used by the
skyline operator; the paper's user studies report skyline sets of size ≤ 3,
which only the standard semantics produces once interestingness ties — all
candidates about the same column share its interestingness — are taken into
account).  The surviving set balances the two quality dimensions without
committing to a weighting; an optional weighted score can then rank the
skyline and keep the top-k (Algorithm 1, remark after line 13).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .candidates import ExplanationCandidate


def is_dominated(candidate: ExplanationCandidate, others: Sequence[ExplanationCandidate]) -> bool:
    """True when some other candidate Pareto-dominates ``candidate``.

    ``other`` dominates when it is at least as interesting and at least as
    contributing, and strictly better on at least one of the two.
    """
    for other in others:
        if other is candidate:
            continue
        at_least_as_good = (
            other.interestingness >= candidate.interestingness
            and other.standardized_contribution >= candidate.standardized_contribution
        )
        strictly_better = (
            other.interestingness > candidate.interestingness
            or other.standardized_contribution > candidate.standardized_contribution
        )
        if at_least_as_good and strictly_better:
            return True
    return False


def skyline(candidates: Sequence[ExplanationCandidate]) -> List[ExplanationCandidate]:
    """The maximal subset of candidates not Pareto-dominated by any other.

    Implemented by sorting on interestingness (descending, contribution
    descending as tie-break) and sweeping while tracking the best standardized
    contribution seen so far — O(n log n) rather than the quadratic pairwise
    check (the pairwise definition is kept in :func:`is_dominated` and the
    test suite verifies both agree).
    """
    if not candidates:
        return []
    ranked = sorted(
        candidates,
        key=lambda c: (-c.interestingness, -c.standardized_contribution),
    )
    result: List[ExplanationCandidate] = []
    best_contribution = float("-inf")
    index = 0
    n = len(ranked)
    while index < n:
        # Candidates sharing the same interestingness: only those matching the
        # group's best contribution can be non-dominated (within the group,
        # a higher contribution dominates a lower one).
        tie_end = index
        while tie_end < n and ranked[tie_end].interestingness == ranked[index].interestingness:
            tie_end += 1
        group = ranked[index:tie_end]
        group_best = max(c.standardized_contribution for c in group)
        if group_best > best_contribution:
            result.extend(c for c in group if c.standardized_contribution == group_best)
            best_contribution = group_best
        index = tie_end
    return result


def rank_by_weighted_score(candidates: Sequence[ExplanationCandidate],
                           interestingness_weight: float = 1.0,
                           contribution_weight: float = 1.0,
                           top_k: int | None = None) -> List[ExplanationCandidate]:
    """Candidates sorted by the weighted score, optionally truncated to ``top_k``."""
    ranked = sorted(
        candidates,
        key=lambda c: (
            -c.weighted_score(interestingness_weight, contribution_weight),
            -c.interestingness,
            -c.standardized_contribution,
            c.attribute,
            c.row_set.label,
        ),
    )
    if top_k is not None:
        ranked = ranked[:top_k]
    return ranked


def skyline_pairs(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Generic 2-D skyline over (x, y) points, maximizing both; returns indices.

    Exposed for reuse by baselines and tests; mirrors the candidate skyline
    (standard Pareto dominance) but works on raw score pairs.
    """
    order = sorted(range(len(points)), key=lambda i: (-points[i][0], -points[i][1]))
    result: List[int] = []
    best_y = float("-inf")
    index = 0
    n = len(order)
    while index < n:
        tie_end = index
        x_value = points[order[index]][0]
        while tie_end < n and points[order[tie_end]][0] == x_value:
            tie_end += 1
        group = order[index:tie_end]
        group_best = max(points[position][1] for position in group)
        if group_best > best_y:
            result.extend(
                position for position in group if points[position][1] == group_best
            )
            best_y = group_best
        index = tie_end
    return sorted(result)
