"""The process-pool contribution backend over shared mmap frames.

:class:`ParallelBackend` sharded the partition × attribute grid across
*threads*, which wins exactly as far as the shards release the GIL.  The
Python-heavy shard mixes — wide grids of small partitions, mixed-regime KS,
exact-rerun fallbacks — serialize on it, and the ROADMAP's answer is this
backend: the same grid sharding over a ``ProcessPoolExecutor``.

The thing that makes processes affordable is the storage layer.  A worker
never receives a pickled dataframe; it receives a
:class:`~repro.storage.reader.FrameDescriptor` — store path + manifest
version + frame fingerprint + column subset, a few hundred bytes — and
re-opens the dataset itself.  The re-open memory-maps the *same* read-only
column files, so every worker shares one physical copy of the data with the
parent (and, via :func:`~repro.storage.reader.shared_dataset`, one
:class:`Dataset` handle per worker process), and the persisted column
fingerprints mean no worker ever re-hashes a stored column.

Frames that are not storage-backed are handled by policy:

* **Spill** — an in-memory input at or above ``spill_bytes`` (estimated) is
  written once to a content-addressed temp dataset
  (:func:`spill_descriptor`, keyed by the frame fingerprint so repeated
  explains over the same table spill it once per process) and shipped as a
  descriptor like any stored frame.
* **Serial fallback** — below the threshold the process fan-out cannot pay
  for itself, so the whole step runs on the embedded serial
  :class:`~repro.core.backends.incremental.IncrementalBackend` instead.

Submission is *batched*: the partition × attribute grid is cut into
:func:`~repro.core.backends.base.resolve_shard_batch`-sized batches
(``FedexConfig.shard_batch``; automatic by default) and each batch crosses
the pool as one job, so one pickle/submit/result round-trip carries many
pairs — per-pair IPC otherwise dominates wide grids of small partitions.
Every pair keeps its own slot in the batch result, so batching changes how
many futures exist, never a value.

Each worker rebuilds the step from the spec exactly once per backend
(descriptors → mmap frames → re-apply the declarative operation → an
embedded incremental backend), then serves any number of shards from that
cached state.  The backend's heavy derived structure — group-by layout,
join matches, row provenance — lives one level deeper, in a worker-global
:class:`_WorkerStructureCache` keyed by content fingerprints exactly like
the in-process :class:`~repro.session.cache.SessionCache`, so it survives
across backend tokens: the *next step* of a session grouping the same
stored frame by the same keys reuses the structure instead of re-deriving
it.  Because every shard runs the same incremental derivations over the
same values, results are keyed by shard identity and bit-identical to the
serial incremental backend regardless of worker count, batch size,
completion order, or which worker ran what.

Worker loss is survived, not propagated: a batch whose future fails — a
killed child, a broken pool, an unpicklable result — is recomputed serially
in the parent, pair by pair, by the embedded incremental backend, whose
results are bit-identical to what the lost worker would have produced; the
shared pool is discarded so later requests get a fresh one.
"""

from __future__ import annotations

import array
import atexit
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

try:  # POSIX advisory locks guard the work-stealing board between processes
    import fcntl
    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX hosts fall back to batches
    _HAVE_FCNTL = False

from ...errors import StorageError
from ...obs.metrics import REGISTRY, MetricsRegistry, registry_delta
from ...obs.trace import NOOP_TRACER, Tracer, current_tracer
from ...operators.operations import MEASURE_DIVERSITY, MEASURE_EXCEPTIONALITY
from ..interestingness import DiversityMeasure, ExceptionalityMeasure
from ..partition import RowPartition, RowSet
from .base import ContributionBackend, resolve_flag
from .costs import history_key, pair_key, plan_batches
from .incremental import IncrementalBackend
from .parallel import DEFAULT_WORKERS

_MISSING = object()

#: Default spill threshold: in-memory inputs smaller than this run serially
#: (the fork/IPC overhead dwarfs any GIL win on tiny frames); larger ones are
#: spilled to a temp dataset and shared with the workers via mmap.
DEFAULT_SPILL_BYTES = 4 * 1024 * 1024

#: Byte estimate per object-array element (pointer + small python object);
#: only the order of magnitude matters for the spill decision.
_OBJECT_BYTES_ESTIMATE = 64

#: Measures a worker can rebuild by name.  Custom measures carry arbitrary
#: callables whose identity a spec cannot capture, so they stay serial.
_BUILTIN_MEASURES = {
    MEASURE_EXCEPTIONALITY: ExceptionalityMeasure,
    MEASURE_DIVERSITY: DiversityMeasure,
}


class ProcessPoolStats:
    """Process-wide counters of process-backend activity (observability).

    Mirrors :class:`~repro.dataframe.column.FingerprintStats`: the
    equivalence suites reset these, run a whole workload, and assert the
    process path genuinely ran — a regression that silently downgraded
    every request to the serial fallback would otherwise keep the
    equivalence bars vacuously green.
    """

    __slots__ = ("shards_submitted", "shards_completed", "batches_submitted",
                 "serial_retries", "serial_fallbacks", "structure_hits",
                 "structure_misses", "steals", "stolen_pairs",
                 "shared_structure_hits", "shared_structure_stores")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.shards_submitted = 0
        self.shards_completed = 0
        self.batches_submitted = 0
        self.serial_retries = 0
        self.serial_fallbacks = 0
        self.structure_hits = 0
        self.structure_misses = 0
        self.steals = 0
        self.stolen_pairs = 0
        self.shared_structure_hits = 0
        self.shared_structure_stores = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "shards_submitted": self.shards_submitted,
            "shards_completed": self.shards_completed,
            "batches_submitted": self.batches_submitted,
            "serial_retries": self.serial_retries,
            "serial_fallbacks": self.serial_fallbacks,
            "structure_hits": self.structure_hits,
            "structure_misses": self.structure_misses,
            "steals": self.steals,
            "stolen_pairs": self.stolen_pairs,
            "shared_structure_hits": self.shared_structure_hits,
            "shared_structure_stores": self.shared_structure_stores,
        }

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of the counters (pairs with :meth:`delta`)."""
        return self.as_dict()

    def delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a :meth:`snapshot`.

        With :func:`repro.obs.metrics.capture` this replaces the ad-hoc
        before/after arithmetic module-global counters force on callers
        (the counters bleed across tests and benchmarks).
        """
        return {name: value - before.get(name, 0)
                for name, value in self.as_dict().items()}


#: Global process-backend counters (reset freely in tests/benchmarks).
PROCESS_STATS = ProcessPoolStats()


def _collect_process_metrics():
    """Scrape-time samples of the process-backend counters (zero hot-path cost)."""
    for name, value in PROCESS_STATS.as_dict().items():
        yield (f"repro_process_{name}_total", "counter",
               "Process-backend activity counter (see ProcessPoolStats).",
               float(value), {})


REGISTRY.register_collector("process_stats", _collect_process_metrics)

#: Parent-side dispatch histogram: submit-to-first-result wall time of each
#: batch/queue job, labeled by worker pid once the result lands.
_BATCH_SECONDS = REGISTRY.histogram(
    "repro_process_batch_seconds",
    "Submit-to-result wall time of one process-backend batch, by worker.",
    ("worker",))

#: Worker-process-local registry: each batch records its per-pair compute
#: histogram and structure-tier counters here; a per-batch delta
#: (:func:`~repro.obs.metrics.registry_delta`) ships home in the batch
#: stats, and the parent merges it into the global :data:`REGISTRY` under a
#: ``worker`` label — so process-backend runs show up in the same
#: service-level scrape as in-process backends.
WORKER_REGISTRY = MetricsRegistry()
_WORKER_PAIR_SECONDS = WORKER_REGISTRY.histogram(
    "repro_worker_pair_seconds",
    "Per-pair contribution compute time inside one pool worker.")
_WORKER_BATCH_SECONDS = WORKER_REGISTRY.histogram(
    "repro_worker_batch_seconds",
    "Wall time of one batch/queue job inside a pool worker.")
_WORKER_STRUCTURE_EVENTS = WORKER_REGISTRY.counter(
    "repro_worker_structure_events_total",
    "Structure-tier cache events in a pool worker (private LRU and "
    "pool-shared store).",
    ("tier", "event"))

#: structure-delta key → (tier, event) label pair on the worker counter.
_STRUCTURE_EVENT_LABELS = (
    ("structure_hits", ("local", "hit")),
    ("structure_misses", ("local", "miss")),
    ("shared_structure_hits", ("shared", "hit")),
    ("shared_structure_stores", ("shared", "store")),
)


@dataclass(frozen=True)
class StepSpec:
    """The picklable recipe a worker uses to rebuild one exploratory step.

    Inputs travel as frame descriptors (never as data), the operation as its
    declarative self (operations re-apply deterministically, so the worker's
    recomputed output is bit-identical to the parent's), and the measure as
    a registry name.
    """

    descriptors: Tuple[object, ...]
    operation: object
    measure: str
    ks_budget_bytes: Optional[int]
    label: Optional[str] = None
    #: Directory of the pool-shared structure tier; ``None`` keeps workers
    #: on their private LRUs only.
    structure_dir: Optional[str] = None


class ProcessBackend(ContributionBackend):
    """Computes the contribution grid concurrently on a process pool.

    Parameters
    ----------
    step / measure:
        As for every backend.
    workers:
        Worker-process count; defaults to ``min(4, cpu_count)``.  Below 2
        the backend stays serial (one process pool worker is pure overhead).
    context:
        Optional session cache forwarded to the embedded incremental
        backend, so the serial fallback path composes with cross-step
        structure reuse.  Workers never see it — they own their structure.
    ks_budget_bytes:
        Forwarded to every incremental backend (parent and workers) so the
        batched-KS chunking is identical on both sides.
    shard_batch:
        Grid pairs per submitted batch (``FedexConfig.shard_batch``);
        ``None`` resolves ``REPRO_SHARD_BATCH`` and then the automatic
        policy — see :func:`~repro.core.backends.base.resolve_shard_batch`.
    spill_bytes:
        Spill threshold for in-memory inputs (see module docstring);
        ``None`` uses :data:`DEFAULT_SPILL_BYTES`, ``0`` spills everything.
    adaptive_batch:
        Cost-model batch sizing (:func:`~repro.core.backends.costs.plan_batches`):
        batches cover roughly equal predicted cost instead of equal pair
        counts.  ``None`` resolves ``REPRO_ADAPTIVE_BATCH``, then on.
    steal:
        Work-stealing between pool workers over a shared on-disk board;
        ``None`` resolves ``REPRO_STEAL``, then off.  Requires ``fcntl``
        (POSIX); elsewhere the backend silently keeps batched dispatch.
    shared_structures:
        Pool-shared structure tier: worker-built structures are published
        to a content-addressed :class:`~repro.storage.structures.StructureStore`
        shared by every worker (and post-crash replacement pools).
        ``None`` resolves ``REPRO_SHARED_STRUCTURES``, then off.
    crash_shards:
        Test hook: the first ``crash_shards`` submitted *batches* SIGKILL
        their worker mid-batch, exercising the crash-recovery path
        deterministically.  Under stealing, the first queue job dies after
        computing one pair.
    crash_after_steal:
        Test hook: a worker SIGKILLs itself immediately after a successful
        steal, exercising the crash-mid-steal recovery path.
    """

    name = "process"

    def __init__(self, step, measure, workers: Optional[int] = None, context=None,
                 ks_budget_bytes: Optional[int] = None,
                 shard_batch: Optional[int] = None,
                 spill_bytes: Optional[int] = None,
                 adaptive_batch: Optional[bool] = None,
                 steal: Optional[bool] = None,
                 shared_structures: Optional[bool] = None,
                 crash_shards: int = 0,
                 crash_after_steal: bool = False) -> None:
        super().__init__(step, measure)
        self.workers = int(workers) if workers else DEFAULT_WORKERS
        if self.workers < 1:
            self.workers = 1
        self.shard_batch = shard_batch
        self.spill_bytes = DEFAULT_SPILL_BYTES if spill_bytes is None else int(spill_bytes)
        self.adaptive_batch = resolve_flag(adaptive_batch, "REPRO_ADAPTIVE_BATCH", True)
        self.steal = resolve_flag(steal, "REPRO_STEAL", False)
        self.shared_structures = resolve_flag(shared_structures,
                                              "REPRO_SHARED_STRUCTURES", False)
        self._inner = IncrementalBackend(step, measure, context=context,
                                         ks_budget_bytes=ks_budget_bytes)
        self._context = context
        self._ks_budget_bytes = ks_budget_bytes
        self._crash_shards = int(crash_shards)
        self._crash_after_steal = bool(crash_after_steal)
        #: Worker-side state cache key of this backend instance.
        self._token = uuid.uuid4().hex
        # Values pin the partition to keep its id reserved, exactly as in
        # ParallelBackend._futures; the index selects this pair's slot in
        # the batch future's result list.
        self._futures: Dict[Tuple[int, str], Tuple[RowPartition, Future, int]] = {}
        # Batch futures whose worker-side structure counters were already
        # folded into the stats (each batch reports once, but is consumed
        # through many per-pair results).
        self._credited: set = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        # Tracing: the request tracer and submitting span are captured at
        # prefetch time (future consumption happens on the engine thread,
        # but batch spans must parent under the contribution span), plus
        # per-future submit timestamps for the batch span timings.
        self._tracer = NOOP_TRACER
        self._trace_parent = None
        # (submit perf_counter, n_pairs, batch pair list or None for queue
        # jobs) — pair lists attribute measured per-pair seconds to keys.
        self._batch_meta: Dict[Future, Tuple[float, int, Optional[list]]] = {}
        #: Why the backend stayed (or fell back to) serial; None while the
        #: process path is active.  Observability for tests and operators.
        self.fallback_reason: Optional[str] = None
        #: How the batch planner sized this grid's batches
        #: (``fixed``/``env``/``count-auto``/``cost-static``/``cost-history``).
        self.batch_policy: Optional[str] = None
        self.shards_submitted = 0
        self.shards_completed = 0
        self.batches_submitted = 0
        self.serial_retries = 0
        self.structure_hits = 0
        self.structure_misses = 0
        self.steals = 0
        self.stolen_pairs = 0
        self.shared_structure_hits = 0
        self.shared_structure_stores = 0
        # Work-stealing queue state: the published board directory, the
        # pinned flat payload, pair-key → payload-index bookkeeping, merged
        # results, and the outstanding queue-job futures.
        self._queue_board: Optional[Path] = None
        self._queue_payload: Optional[list] = None
        self._queue_index: Dict[Tuple[int, str], int] = {}
        self._queue_results: Dict[int, object] = {}
        self._queue_futures: List[Future] = []
        self._queue_error_kind: Optional[str] = None
        self._queue_finalized = False
        # Measured per-pair seconds awaiting a flush into the session's
        # cost history (merge-on-write via context.store_pair_costs).
        self._pending_costs: Dict[Tuple, float] = {}
        self._history_key: Optional[Tuple] = None

    # ------------------------------------------------------------------ public
    def prefetch(self, grid: Sequence[Tuple[RowPartition, str]],
                 baselines: Dict[str, float],
                 batch_hint: Optional[int] = None) -> None:
        """Shard the partition × attribute grid across the worker processes.

        The grid is cut into :func:`resolve_shard_batch`-sized batches and
        each batch is submitted as *one* job (one pickle/submit/result
        round-trip for many pairs) — per-pair IPC otherwise dominates wide
        grids of small partitions.  Every pair keeps its own result slot, so
        batching never changes a value, only how many futures carry them.

        Builds the picklable step spec (minting descriptors, spilling
        in-memory inputs when warranted); any reason the step cannot cross a
        process boundary — tiny inputs, custom measure, unpicklable
        operation — downgrades the whole request to the serial incremental
        backend and is recorded in :attr:`fallback_reason`.
        """
        if not grid:
            return
        tracer = current_tracer()
        self._tracer = tracer
        self._trace_parent = tracer.current_span()
        with tracer.span("process.prefetch", workers=self.workers,
                         pairs=len(grid)) as pspan:
            if self.workers < 2:
                self.fallback_reason = "pool of 1 worker is pure overhead; staying serial"
                PROCESS_STATS.serial_fallbacks += 1
                pspan.set("fallback_reason", self.fallback_reason)
                return
            spec_blob = self._spec_blob()
            if spec_blob is None:
                PROCESS_STATS.serial_fallbacks += 1
                pspan.set("fallback_reason", self.fallback_reason)
                return
            pool = process_pool(self.workers)
            self._pool = pool
            pending = [(partition, attribute) for partition, attribute in grid
                       if (id(partition), attribute) not in self._futures]
            hint = batch_hint if batch_hint is not None else self.shard_batch
            plan = plan_batches(pending, workers=self.workers,
                                inner=self._inner, shard_batch=hint,
                                adaptive=self.adaptive_batch,
                                history=self._load_history())
            self.batch_policy = plan.policy
            pspan.set("batch_policy", plan.policy)
            if plan.batches:
                pspan.set("batch_size", len(plan.batches[0]))
            traced = tracer.enabled
            stealing = self.steal and _HAVE_FCNTL and len(pending) > 1
            pspan.set("steal", stealing)
            if stealing:
                self._prefetch_stealing(pool, spec_blob, plan, baselines,
                                        pspan, traced)
                pspan.set("batches", self.batches_submitted)
                return
            crash_left = self._crash_shards
            for batch in plan.batches:
                crash = crash_left > 0
                if crash:
                    crash_left -= 1
                payload = [(partition, attribute, baselines[attribute])
                           for partition, attribute in batch]
                try:
                    future = pool.submit(_run_batch, self._token, spec_blob,
                                         payload, crash, traced)
                except Exception as error:
                    # The shared pool died under us (BrokenProcessPool) or was
                    # shut down between lookup and submit (RuntimeError): the
                    # remaining shards run serially.  KeyboardInterrupt and
                    # friends propagate — a cancel must not silently turn into
                    # minutes of serial work.
                    self.fallback_reason = f"shard submission failed: {error}"
                    pspan.set("fallback_reason", self.fallback_reason)
                    _discard_pool(self.workers, pool)
                    break
                self._batch_meta[future] = (time.perf_counter(), len(batch),
                                            list(batch))
                for index, (partition, attribute) in enumerate(batch):
                    self._futures[(id(partition), attribute)] = (partition, future, index)
                self.batches_submitted += 1
                PROCESS_STATS.batches_submitted += 1
                self.shards_submitted += len(batch)
                PROCESS_STATS.shards_submitted += len(batch)
            pspan.set("batches", self.batches_submitted)

    def _load_history(self) -> Optional[Dict[Tuple, float]]:
        """The session's measured pair costs for this step, if it keeps any."""
        hook = getattr(self._context, "pair_costs", None)
        if hook is None or not self.adaptive_batch:
            return None
        try:
            if self._history_key is None:
                self._history_key = history_key(self.step)
            return hook(self._history_key) or None
        except Exception:
            return None

    def _prefetch_stealing(self, pool, spec_blob: bytes, plan, baselines,
                           pspan, traced: bool) -> None:
        """Publish the grid onto a shared board and start one job per worker.

        Each queue job loops claim-compute until the board drains, stealing
        half of the largest in-flight remainder once no unclaimed batch is
        left (see :class:`_BoardClient`).  Results come back keyed by the
        pair's global grid index, so completion order, stealing, and splits
        can never change a value — only which worker computes it.
        """
        payload = []
        for batch in plan.batches:
            for partition, attribute in batch:
                payload.append((partition, attribute, baselines[attribute]))
        try:
            board = _publish_board(payload, plan.batches)
        except Exception as error:
            self.fallback_reason = f"publishing the steal board failed: {error}"
            pspan.set("fallback_reason", self.fallback_reason)
            return
        self._queue_board = board
        self._queue_payload = payload
        self._queue_results = {}
        self._queue_finalized = False
        for index, (partition, attribute, _) in enumerate(payload):
            self._queue_index[(id(partition), attribute)] = index
        jobs = min(self.workers, len(payload))
        for job in range(jobs):
            crash_mode = 0
            if self._crash_after_steal:
                crash_mode = 2
            elif self._crash_shards > 0 and job == 0:
                crash_mode = 1
            try:
                future = pool.submit(_run_queue, self._token, spec_blob,
                                     str(board), traced, crash_mode)
            except Exception as error:
                self.fallback_reason = f"queue job submission failed: {error}"
                pspan.set("fallback_reason", self.fallback_reason)
                _discard_pool(self.workers, pool)
                break
            self._queue_futures.append(future)
            self._batch_meta[future] = (time.perf_counter(), 0, None)
            self.batches_submitted += 1
            PROCESS_STATS.batches_submitted += 1
        self.shards_submitted += len(payload)
        PROCESS_STATS.shards_submitted += len(payload)

    def partition_contributions(self, partition: RowPartition, attribute: str,
                                baseline: float):
        queue_index = self._queue_index.pop((id(partition), attribute), None)
        if queue_index is not None:
            result = self._drain_queue(queue_index)
            if result is not _MISSING:
                self.shards_completed += 1
                PROCESS_STATS.shards_completed += 1
                return result
            # The pair was claimed by a worker that died (or a queue job
            # failed) before its result came home: recompute serially —
            # bit-identical to what the lost worker would have produced.
            self.serial_retries += 1
            PROCESS_STATS.serial_retries += 1
            self._tracer.event(
                "process.serial_retry",
                labels={"kind": self._queue_error_kind or "shard_error"},
                parent=self._trace_parent,
            )
            return self._inner.partition_contributions(partition, attribute,
                                                       baseline)
        entry = self._futures.pop((id(partition), attribute), None)
        if entry is not None:
            _, future, index = entry
            try:
                results, worker_stats = future.result()
                self._credit_worker_stats(future, worker_stats)
                result = results[index]
                self.shards_completed += 1
                PROCESS_STATS.shards_completed += 1
                return result
            except BrokenProcessPool as error:
                # A worker died mid-grid (OOM-kill, crash): the pool is gone
                # for everyone, so drop it from the shared cache and recompute
                # this shard serially — the incremental derivation is
                # deterministic, so the retry is bit-identical to what the
                # lost worker would have returned.
                self.serial_retries += 1
                PROCESS_STATS.serial_retries += 1
                self._tracer.event("process.serial_retry",
                                   labels={"kind": "broken_pool"},
                                   parent=self._trace_parent)
                if self.fallback_reason is None:
                    self.fallback_reason = f"worker lost mid-grid: {error}"
                if self._pool is not None:
                    _discard_pool(self.workers, self._pool)
                    self._pool = None
            except Exception as error:
                # The shard itself failed (e.g. the worker could not resolve
                # a descriptor); the pool is healthy, only this request
                # degrades to the serial path.
                self.serial_retries += 1
                PROCESS_STATS.serial_retries += 1
                self._tracer.event("process.serial_retry",
                                   labels={"kind": "shard_error"},
                                   parent=self._trace_parent)
                if self.fallback_reason is None:
                    self.fallback_reason = f"worker shard failed: {error}"
        return self._inner.partition_contributions(partition, attribute, baseline)

    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        return self._inner.reduced_score(row_set, attribute)

    def stats(self) -> Dict[str, object]:
        """Shard counters + scheduling policy + fallback reason."""
        return {
            "workers": self.workers,
            "shards_submitted": self.shards_submitted,
            "shards_completed": self.shards_completed,
            "batches_submitted": self.batches_submitted,
            "serial_retries": self.serial_retries,
            "structure_hits": self.structure_hits,
            "structure_misses": self.structure_misses,
            "batch_policy": self.batch_policy,
            "steals": self.steals,
            "stolen_pairs": self.stolen_pairs,
            "shared_structure_hits": self.shared_structure_hits,
            "shared_structure_stores": self.shared_structure_stores,
            "fallback_reason": self.fallback_reason,
        }

    # ---------------------------------------------------------------- internals
    def _drain_queue(self, index: int):
        """Wait until pair ``index``'s result arrived, or no job can bring it.

        Queue jobs return ``{global pair index: result}`` maps as they
        drain the board; results are merged as futures complete, in
        completion order — irrelevant for values, which are keyed by index.
        A broken pool (a worker SIGKILLed mid-steal) fails *every*
        outstanding future at once; whatever results already came home
        stay valid, and the rest report ``_MISSING`` for per-pair serial
        retry by the caller.
        """
        while index not in self._queue_results and self._queue_futures:
            done, outstanding = wait(self._queue_futures,
                                     return_when=FIRST_COMPLETED)
            self._queue_futures = list(outstanding)
            for future in done:
                try:
                    results, worker_stats = future.result()
                except BrokenProcessPool as error:
                    self._queue_error_kind = "broken_pool"
                    if self.fallback_reason is None:
                        self.fallback_reason = f"worker lost mid-grid: {error}"
                    if self._pool is not None:
                        _discard_pool(self.workers, self._pool)
                        self._pool = None
                    continue
                except Exception as error:
                    self._queue_error_kind = "shard_error"
                    if self.fallback_reason is None:
                        self.fallback_reason = f"worker queue job failed: {error}"
                    continue
                self._queue_results.update(results)
                self._credit_worker_stats(future, worker_stats)
        if not self._queue_futures:
            self._finalize_queue()
        return self._queue_results.get(index, _MISSING)

    def _finalize_queue(self) -> None:
        """Fold the board's steal counters in and remove it (exactly once).

        The counters live in the board's state file, not in worker results,
        so they survive the very crash the mid-steal test injects: a
        SIGKILLed thief never returns its stats, but its recorded steal is
        already on disk.
        """
        if self._queue_finalized or self._queue_board is None:
            return
        self._queue_finalized = True
        try:
            header = array.array("q")
            with open(self._queue_board / "state.bin", "rb") as handle:
                header.frombytes(handle.read(_HEADER_INTS * 8))
            steals, stolen = int(header[2]), int(header[3])
        except Exception:
            steals = stolen = 0
        self.steals += steals
        self.stolen_pairs += stolen
        PROCESS_STATS.steals += steals
        PROCESS_STATS.stolen_pairs += stolen
        shutil.rmtree(self._queue_board, ignore_errors=True)
        self._queue_board = None
        self._flush_costs()

    def _flush_costs(self) -> None:
        """Merge measured pair timings into the session's cost history."""
        if not self._pending_costs:
            return
        hook = getattr(self._context, "store_pair_costs", None)
        if hook is None:
            self._pending_costs.clear()
            return
        try:
            if self._history_key is None:
                self._history_key = history_key(self.step)
            hook(self._history_key, dict(self._pending_costs))
        except Exception:
            pass
        self._pending_costs.clear()
    def _credit_worker_stats(self, future: Future, worker_stats: Dict[str, int]) -> None:
        """Fold one batch's worker-side structure counters in, exactly once.

        Many per-pair results are served by one batch future; the worker's
        hit/miss delta ships with the result tuple, so the first consumer
        credits it and later consumers of the same future do not double
        count.  When the request is traced, the same once-per-future hook
        records the batch span (submit → first result, measured parent-side)
        and grafts the worker-recorded spans under it.
        """
        if future in self._credited:
            return
        self._credited.add(future)
        hits = int(worker_stats.get("structure_hits", 0))
        misses = int(worker_stats.get("structure_misses", 0))
        shared_hits = int(worker_stats.get("shared_structure_hits", 0))
        shared_stores = int(worker_stats.get("shared_structure_stores", 0))
        self.structure_hits += hits
        self.structure_misses += misses
        self.shared_structure_hits += shared_hits
        self.shared_structure_stores += shared_stores
        PROCESS_STATS.structure_hits += hits
        PROCESS_STATS.structure_misses += misses
        PROCESS_STATS.shared_structure_hits += shared_hits
        PROCESS_STATS.shared_structure_stores += shared_stores
        self._merge_worker_metrics(worker_stats)
        meta = self._batch_meta.pop(future, None)
        self._record_pair_seconds(worker_stats.get("pair_seconds"),
                                  meta[2] if meta is not None else None)
        self._flush_costs()
        if meta is not None:
            _BATCH_SECONDS.labels(
                worker=str(worker_stats.get("pid", "?"))
            ).observe(time.perf_counter() - meta[0])
        if self._tracer.enabled and meta is not None:
            submitted_pc, pairs, _ = meta
            if not pairs:
                pairs = int(worker_stats.get("pairs", 0))
            batch_span = self._tracer.add_span(
                "process.batch", parent=self._trace_parent,
                started_pc=submitted_pc,
                wall_s=time.perf_counter() - submitted_pc,
                pairs=pairs, structure_hits=hits, structure_misses=misses,
            )
            self._tracer.attach_spans(worker_stats.get("spans") or [],
                                      parent=batch_span)

    @staticmethod
    def _merge_worker_metrics(worker_stats: Dict[str, int]) -> None:
        """Fold a batch's shipped registry delta into the global registry.

        Series gain a ``worker`` label (the worker's pid), so the scrape
        endpoint can tell the pool members apart while histograms still
        aggregate across the family.  Best-effort: telemetry merging must
        never fail a dispatch.
        """
        payload = worker_stats.get("metrics")
        if not payload:
            return
        try:
            REGISTRY.merge(payload,
                           labels={"worker": str(worker_stats.get("pid", "?"))})
        except Exception:
            pass

    def _record_pair_seconds(self, seconds, batch) -> None:
        """Stash measured per-pair wall times for the session cost history.

        Batch jobs ship a list aligned with the batch's pair order; queue
        jobs ship ``{global pair index: seconds}`` resolved against the
        published payload.  Either way the entries land in
        ``self._pending_costs`` keyed by the partition/attribute identity
        that :func:`~repro.core.backends.costs.pair_key` derives, and are
        flushed to the session once the step's dispatch settles.
        """
        if not seconds:
            return
        if isinstance(seconds, dict):
            payload = self._queue_payload or []
            for index, value in seconds.items():
                if 0 <= index < len(payload):
                    partition, attribute, _ = payload[index]
                    self._pending_costs[pair_key(partition, attribute)] = float(value)
        elif batch is not None:
            for (partition, attribute), value in zip(batch, seconds):
                self._pending_costs[pair_key(partition, attribute)] = float(value)
    def _spec_blob(self) -> Optional[bytes]:
        measure_name = getattr(self.measure, "name", None)
        builtin = _BUILTIN_MEASURES.get(measure_name)
        if builtin is None or type(self.measure) is not builtin:
            self.fallback_reason = (
                f"measure {measure_name!r} is not a builtin measure a worker "
                "can rebuild by name"
            )
            return None
        descriptors = []
        for index, frame in enumerate(self.step.inputs):
            descriptor = frame.descriptor()
            if descriptor is None:
                size = frame_nbytes(frame)
                if size < self.spill_bytes:
                    self.fallback_reason = (
                        f"input {index} is ~{size} bytes, below the "
                        f"{self.spill_bytes}-byte spill threshold"
                    )
                    return None
                try:
                    descriptor = spill_descriptor(frame)
                except Exception as error:
                    self.fallback_reason = f"spilling input {index} failed: {error}"
                    return None
            descriptors.append(descriptor)
        structure_dir = None
        if self.shared_structures:
            try:
                from ...storage.structures import structure_store_root
                structure_dir = str(structure_store_root())
            except Exception:
                structure_dir = None
        spec = StepSpec(
            descriptors=tuple(descriptors), operation=self.step.operation,
            measure=measure_name, ks_budget_bytes=self._ks_budget_bytes,
            label=getattr(self.step, "label", None),
            structure_dir=structure_dir,
        )
        try:
            return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            self.fallback_reason = f"step spec is not picklable: {error}"
            return None


def frame_nbytes(frame) -> int:
    """Estimated in-memory size of a frame, for the spill decision.

    Numeric/boolean columns answer exactly (``nbytes``); object columns are
    estimated per element — the decision needs an order of magnitude, not an
    audit.
    """
    total = 0
    for column in frame.columns():
        values = column.values
        if values.dtype == object:
            total += int(values.size) * _OBJECT_BYTES_ESTIMATE
        else:
            total += int(values.nbytes)
    return total


# ------------------------------------------------------------- spill store
_SPILL_LOCK = threading.Lock()
_SPILL_ROOT: Optional[Path] = None
_SPILLED: "OrderedDict[str, _SpillEntry]" = OrderedDict()

#: Byte budget of the on-disk spill store; least-recently-used spilled
#: datasets beyond it are deleted (workers holding their mmaps keep reading
#: — POSIX — and an evicted frame simply re-spills on next use).  Without a
#: cap, a long-lived service would keep one temp copy of every distinct
#: in-memory frame it ever explained.
DEFAULT_SPILL_BUDGET_BYTES = 1 << 30
_SPILL_BUDGET_BYTES = int(os.environ.get("REPRO_SPILL_BUDGET_BYTES",
                                         str(DEFAULT_SPILL_BUDGET_BYTES)))


class _SpillEntry:
    """Singleflight slot for one spilled fingerprint: the first caller
    writes, concurrent equal-content callers wait on the event, everyone
    else never blocks (the global lock only guards the dict)."""

    __slots__ = ("ready", "descriptor", "error", "path", "bytes")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.descriptor = None
        self.error: Optional[BaseException] = None
        self.path: Optional[Path] = None
        self.bytes = 0


def _directory_bytes(path: Path) -> int:
    return sum(entry.stat().st_size for entry in path.iterdir() if entry.is_file())


def _evict_spill_overflow(protect: str) -> None:
    """Drop least-recently-used spilled datasets beyond the byte budget.

    ``protect`` is the fingerprint the caller is about to hand out: even if
    it is the oldest entry (concurrent spills finish out of insertion
    order), evicting it would return a descriptor to a deleted path.
    """
    from ...storage.reader import _evict_shared_dataset

    doomed = []
    with _SPILL_LOCK:
        total = sum(e.bytes for e in _SPILLED.values() if e.ready.is_set())
        for fingerprint, entry in list(_SPILLED.items()):
            if total <= _SPILL_BUDGET_BYTES or len(_SPILLED) <= 1:
                break
            if fingerprint == protect:
                continue
            if not entry.ready.is_set() or entry.error is not None:
                continue  # never evict an in-flight write
            del _SPILLED[fingerprint]
            total -= entry.bytes
            doomed.append(entry.path)
    for path in doomed:
        if path is not None:
            _evict_shared_dataset(str(path))
            shutil.rmtree(path, ignore_errors=True)


def spill_descriptor(frame):
    """Write an in-memory frame to a temp dataset; return its descriptor.

    Content-addressed by the frame fingerprint: equal frames (the same
    benchmark table explained by thirty queries) are written once per
    process and every later request reuses the descriptor.  Concurrent
    spills of *different* frames proceed in parallel — only callers of the
    same fingerprint wait for its (single) write.  The store is LRU-bounded
    by :data:`_SPILL_BUDGET_BYTES`; the temp root lives until process exit,
    and workers that still hold an evicted dataset's mmap keep reading
    after the unlink (POSIX semantics).
    """
    from ...storage.reader import shared_dataset
    from ...storage.writer import write_dataset

    fingerprint = frame.fingerprint()
    with _SPILL_LOCK:
        entry = _SPILLED.get(fingerprint)
        owner = entry is None
        if owner:
            entry = _SpillEntry()
            _SPILLED[fingerprint] = entry
            global _SPILL_ROOT
            if _SPILL_ROOT is None:
                _SPILL_ROOT = Path(tempfile.mkdtemp(prefix="repro-spill-"))
                atexit.register(shutil.rmtree, str(_SPILL_ROOT), ignore_errors=True)
            root = _SPILL_ROOT
        else:
            _SPILLED.move_to_end(fingerprint)
    if owner:
        try:
            path = root / f"f{fingerprint}"
            with current_tracer().span("spill.write", rows=frame.num_rows) as span:
                write_dataset(frame, path, overwrite=True)
                entry.descriptor = shared_dataset(path).descriptor()
                entry.path = Path(entry.descriptor.path)
                entry.bytes = _directory_bytes(path)
                span.set("bytes", entry.bytes)
        except BaseException as error:
            entry.error = error
            with _SPILL_LOCK:
                _SPILLED.pop(fingerprint, None)  # let a later caller retry
            raise
        finally:
            entry.ready.set()
        with _SPILL_LOCK:
            if fingerprint in _SPILLED:
                _SPILLED.move_to_end(fingerprint)
        _evict_spill_overflow(protect=fingerprint)
        return entry.descriptor
    with current_tracer().span("spill.wait"):
        entry.ready.wait()
    if entry.error is not None:
        raise StorageError(f"concurrent spill of this frame failed: {entry.error}")
    return entry.descriptor


# ----------------------------------------------------------- shared pools
_POOL_LOCK = threading.Lock()
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _start_method() -> str:
    """The multiprocessing start method of the shared pools.

    ``fork`` when the process is still single-threaded (workers start in
    milliseconds and inherit the imported modules), ``forkserver`` once
    other threads exist — forking a multi-threaded parent (an
    :class:`~repro.service.ExplanationService` worker, say) can hand the
    child third-party locks frozen in a held state, and ``register_at_fork``
    can only re-initialise *this* package's locks.  Overridable via the
    ``REPRO_PROCESS_START_METHOD`` environment variable — everything
    shipped to workers is top-level and picklable, so every method works
    identically, just with different cold starts.
    """
    available = multiprocessing.get_all_start_methods()
    preferred = os.environ.get("REPRO_PROCESS_START_METHOD")
    if preferred:
        if preferred not in available:
            raise ValueError(
                f"REPRO_PROCESS_START_METHOD={preferred!r} is not available; "
                f"choose one of {available}"
            )
        return preferred
    if "fork" in available and threading.active_count() == 1:
        return "fork"
    for method in ("forkserver", "fork"):
        if method in available:
            return method
    return available[0]


def process_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool for a worker count (created on first use).

    Shared across backend instances so a service explaining many steps pays
    the worker start-up once, not once per request.  Every worker is
    spawned *eagerly* at creation: the executor otherwise forks lazily per
    submit, which would let a pool whose start method was chosen while
    single-threaded (``fork``) keep forking later, after the process has
    grown threads — exactly the held-third-party-lock hazard
    :func:`_start_method` decides against.
    """
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(_start_method()),
            )
            # One submit spawns one worker unless an idle one exists;
            # briefly-sleeping warm-ups keep every already-spawned worker
            # busy through the submission loop, forcing the full
            # complement into existence now, under the threading
            # conditions the start method was picked for.
            for _ in range(workers):
                pool.submit(time.sleep, 0.05)
            _POOLS[workers] = pool
        return pool


def _discard_pool(workers: int, pool: ProcessPoolExecutor) -> None:
    """Drop a (broken) pool from the shared cache so the next user rebuilds."""
    with _POOL_LOCK:
        if _POOLS.get(workers) is pool:
            del _POOLS[workers]
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_process_pools() -> None:
    """Shut every shared pool down (tests / interpreter exit)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_process_pools)


def _reinit_after_fork() -> None:
    """Fresh locks and no inherited pool handles in a forked child.

    A parent thread may hold the spill/pool lock at fork time (which would
    deadlock the child the moment it touched either), and a child must
    never talk to executor objects it inherited from the parent.
    """
    global _SPILL_LOCK, _POOL_LOCK, _BOARD_LOCK
    _SPILL_LOCK = threading.Lock()
    _POOL_LOCK = threading.Lock()
    _BOARD_LOCK = threading.Lock()
    _POOLS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


# ------------------------------------------------------------- steal board
# The work-stealing queue between parent and workers.  A board is one
# directory per prefetch: ``pairs.pkl`` holds the pickled flat pair payload
# (published once, read once per worker), ``state.bin`` holds the live
# scheduling state as a flat int64 array, and ``lock`` is the file an
# ``fcntl.flock`` serializes claims through.  No manager process, no
# sockets: claiming a pair is one flock + one small read-modify-write.
#
# ``state.bin`` layout (little-endian int64s):
#   header  [slot capacity, slots used, steals, stolen pairs]
#   slot i  [start, end, next, owner]      (owner -1 until claimed)
# A slot is a contiguous half-open index range [start, end) over the
# payload; ``next`` is the first unclaimed index within it.  Stealing
# splits the victim's *remaining* range in half — the victim keeps the
# front (its next pair is untouched, so per-pair results stay bit-identical
# no matter who computes what), the thief takes the back as a new slot.
_BOARD_LOCK = threading.Lock()
_BOARD_ROOT: Optional[Path] = None
_HEADER_INTS = 4
_SLOT_INTS = 4
#: Extra slot capacity beyond the initial batch count; every steal adds one
#: slot, and a grid can be stolen at most once per remaining pair, so this
#: is far beyond what any real run consumes.
_BOARD_SLOT_HEADROOM = 256


def _board_root() -> Path:
    """Process-lifetime directory for steal boards (one subdir per prefetch)."""
    global _BOARD_ROOT
    with _BOARD_LOCK:
        if _BOARD_ROOT is None:
            root = Path(tempfile.mkdtemp(prefix="repro-steal-"))
            atexit.register(shutil.rmtree, root, ignore_errors=True)
            _BOARD_ROOT = root
        return _BOARD_ROOT


def _publish_board(payload, batches) -> Path:
    """Write one prefetch's pair payload + scheduling state to a fresh board.

    ``batches`` (the cost-planned batches, in payload order) become the
    initial slots, so the board starts exactly where static dispatch would
    — stealing only changes *who* computes a pair, never the pair set.
    """
    board = _board_root() / uuid.uuid4().hex
    board.mkdir()
    with open(board / "pairs.pkl", "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    capacity = len(batches) + _BOARD_SLOT_HEADROOM
    values = [capacity, len(batches), 0, 0]
    offset = 0
    for batch in batches:
        values.extend((offset, offset + len(batch), offset, -1))
        offset += len(batch)
    values.extend([0] * ((capacity - len(batches)) * _SLOT_INTS))
    with open(board / "state.bin", "wb") as handle:
        handle.write(array.array("q", values).tobytes())
    (board / "lock").touch()
    return board


class _BoardClient:
    """One worker's handle on a steal board: claim, advance, steal."""

    __slots__ = ("_lock_fh", "_state_path", "_slot")

    def __init__(self, board_dir: str) -> None:
        board = Path(board_dir)
        self._lock_fh = open(board / "lock", "rb")
        self._state_path = board / "state.bin"
        self._slot: Optional[int] = None

    def _read(self) -> "array.array":
        state = array.array("q")
        with open(self._state_path, "rb") as handle:
            state.frombytes(handle.read())
        return state

    def _write(self, state: "array.array") -> None:
        with open(self._state_path, "r+b") as handle:
            handle.write(state.tobytes())

    def claim_next(self) -> Optional[Tuple[int, bool]]:
        """Claim one payload index, or ``None`` when the board is drained.

        Returns ``(index, stole)``; ``stole`` is True exactly when the
        index came from splitting another worker's remaining range (the
        crash-mid-steal hook keys off it).  Preference order: advance the
        slot this client already owns, claim a never-claimed slot, then
        steal from the victim with the largest remainder — splitting at
        ``end - remainder // 2`` so a remainder of ``r >= 2`` leaves the
        victim ``ceil(r / 2) >= 1`` pairs and never moves its ``next``.
        """
        fcntl.flock(self._lock_fh, fcntl.LOCK_EX)
        try:
            state = self._read()
            used = state[1]
            if self._slot is not None:
                base = _HEADER_INTS + self._slot * _SLOT_INTS
                if state[base + 2] < state[base + 1]:
                    index = int(state[base + 2])
                    state[base + 2] += 1
                    self._write(state)
                    return index, False
                self._slot = None
            pid = os.getpid()
            for slot in range(used):
                base = _HEADER_INTS + slot * _SLOT_INTS
                if state[base + 3] == -1 and state[base + 2] < state[base + 1]:
                    state[base + 3] = pid
                    index = int(state[base + 2])
                    state[base + 2] += 1
                    self._write(state)
                    self._slot = slot
                    return index, False
            victim, best = -1, 1
            for slot in range(used):
                base = _HEADER_INTS + slot * _SLOT_INTS
                remainder = state[base + 1] - state[base + 2]
                if remainder > best:
                    victim, best = slot, remainder
            if victim >= 0 and used < state[0]:
                vbase = _HEADER_INTS + victim * _SLOT_INTS
                end = int(state[vbase + 1])
                mid = end - int(best) // 2
                state[vbase + 1] = mid
                nbase = _HEADER_INTS + used * _SLOT_INTS
                state[nbase] = mid
                state[nbase + 1] = end
                state[nbase + 2] = mid + 1
                state[nbase + 3] = pid
                state[1] = used + 1
                state[2] += 1
                state[3] += end - mid
                self._write(state)
                self._slot = int(used)
                return mid, True
            return None
        finally:
            fcntl.flock(self._lock_fh, fcntl.LOCK_UN)


# ------------------------------------------------------------- worker side
class _WorkerStructureCache:
    """Cross-step structure reuse inside one worker process.

    Implements the same hooks a :class:`~repro.session.cache.SessionCache`
    offers an :class:`IncrementalBackend` (``row_sources`` /
    ``groupby_structure`` / ``left_join_structure``), with the same
    content-addressed keys: frame fingerprints plus the operation's
    declarative signature.  One module-level instance outlives every
    :class:`_WorkerState` — backend tokens change per step, but two steps
    grouping the same stored frame by the same keys resolve to the same
    fingerprints, so the second step's workers reuse the first step's group
    structure instead of re-deriving it (mirroring in-process session
    reuse).

    Keys invalidate themselves: a worker frame is descriptor-resolved, so
    its fingerprint comes from the persisted manifest — a rewritten dataset
    yields a new fingerprint and therefore a fresh entry, never a stale
    one.  The LRU cap bounds a long-lived worker serving many distinct
    steps.
    """

    __slots__ = ("_entries", "_cap", "hits", "misses", "shared",
                 "shared_hits", "shared_stores")

    def __init__(self, cap: int) -> None:
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cap = cap
        self.hits = 0
        self.misses = 0
        #: Optional pool-shared :class:`~repro.storage.structures.StructureStore`
        #: consulted between the in-memory LRU and a rebuild.  The store uses
        #: the *same* content-addressed keys, so an entry built by any worker
        #: (or a pre-crash pool) is valid for every other worker.
        self.shared = None
        self.shared_hits = 0
        self.shared_stores = 0

    def _memo(self, key: Tuple, build) -> object:
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self._entries.move_to_end(key)
            self.hits += 1
            return value
        self.misses += 1
        if self.shared is not None:
            found, value = self.shared.get(key)
            if found:
                self.shared_hits += 1
                self._insert(key, value)
                return value
        value = build()
        self._insert(key, value)
        if self.shared is not None and self.shared.put(key, value):
            self.shared_stores += 1
        return value

    def _insert(self, key: Tuple, value: object) -> None:
        self._entries[key] = value
        while len(self._entries) > self._cap:
            self._entries.popitem(last=False)

    def _input_fingerprints(self, step) -> Tuple[str, ...]:
        return tuple(frame.fingerprint() for frame in step.inputs)

    # The key layouts mirror SessionCache's structure layer, so the sharing
    # semantics (what invalidates, what is reused across which steps) are
    # identical in and out of process.
    def groupby_structure(self, step, build):
        operation = step.operation
        pre_filter = getattr(operation, "pre_filter", None)
        key = (
            "groupby", step.inputs[0].fingerprint(),
            tuple(getattr(operation, "keys", ())),
            pre_filter.signature() if pre_filter is not None else None,
        )
        return self._memo(key, lambda: build(step))

    def row_sources(self, step, build):
        key = ("sources", step.operation.kind, step.operation.signature(),
               self._input_fingerprints(step))
        return self._memo(key, lambda: build(step))

    def left_join_structure(self, step, build):
        key = ("leftjoin", step.operation.signature(),
               self._input_fingerprints(step))
        return self._memo(key, lambda: build(step))


#: Entry cap of the worker structure cache; structures are priced per step,
#: not per byte, so the cap is the simple bound on a worker that serves many
#: distinct steps back to back.
_WORKER_STRUCTURE_CAP = int(os.environ.get("REPRO_WORKER_STRUCTURE_CAP", "32"))

#: The per-worker-process structure cache (survives across backend tokens).
_WORKER_STRUCTURES = _WorkerStructureCache(_WORKER_STRUCTURE_CAP)


class _WorkerState:
    """One rebuilt step + embedded incremental backend inside a worker."""

    __slots__ = ("step", "backend", "shared")

    def __init__(self, step, backend, shared=None) -> None:
        self.step = step
        self.backend = backend
        #: The pool-shared structure store this step's spec asked for (or
        #: None); installed on :data:`_WORKER_STRUCTURES` for the duration
        #: of each job serving this state.
        self.shared = shared


#: Per-worker-process cache of rebuilt states, keyed by backend token.  The
#: cap bounds a worker serving many steps: an evicted state costs one
#: rebuild (the mmap buffers themselves stay cached in shared_dataset, and
#: the heavy derived structure stays cached in _WORKER_STRUCTURES).
_WORKER_STATES: "OrderedDict[str, _WorkerState]" = OrderedDict()
_WORKER_STATE_CAP = 4


def _build_worker_state(spec: StepSpec) -> _WorkerState:
    from ...dataframe.frame import DataFrame
    from ...operators.step import ExploratoryStep

    inputs = [DataFrame.from_descriptor(descriptor) for descriptor in spec.descriptors]
    # The output is recomputed, not shipped: operations are declarative and
    # deterministic, so re-applying them over the shared mmap frames yields
    # the parent's output bit for bit.
    step = ExploratoryStep(inputs, spec.operation, label=spec.label)
    measure = _BUILTIN_MEASURES[spec.measure]()
    # The worker-global structure cache plugs in as the backend's context —
    # group-by/join structure and row provenance are then keyed by content
    # and survive this state's eviction (and the session's next step).
    backend = IncrementalBackend(step, measure, context=_WORKER_STRUCTURES,
                                 ks_budget_bytes=spec.ks_budget_bytes)
    shared = None
    if spec.structure_dir:
        try:
            from ...storage.structures import StructureStore
            shared = StructureStore(Path(spec.structure_dir))
        except Exception:
            shared = None
    return _WorkerState(step, backend, shared=shared)


def _worker_state(token: str, spec_blob: bytes) -> _WorkerState:
    state = _WORKER_STATES.get(token)
    if state is None:
        state = _build_worker_state(pickle.loads(spec_blob))
        _WORKER_STATES[token] = state
        while len(_WORKER_STATES) > _WORKER_STATE_CAP:
            _WORKER_STATES.popitem(last=False)
    else:
        _WORKER_STATES.move_to_end(token)
    return state


def _run_batch(token: str, spec_blob: bytes,
               pairs: Sequence[Tuple[RowPartition, str, float]],
               crash: bool = False, trace: bool = False):
    """One batch of grid shards inside a worker process.

    Returns ``(results, stats)``: one contribution list per
    ``(partition, attribute, baseline)`` pair, in batch order, plus the
    worker's structure-cache hit/miss delta for this batch (exact, because
    a pool worker runs one batch at a time).  When the parent's request is
    traced (``trace``), the batch runs under a worker-local tracer and the
    finished span dicts travel home in ``stats["spans"]``, where the parent
    grafts them under its batch span.

    ``crash`` is the test hook of the crash-recovery suite: it kills the
    worker the way a real failure would (no exception, no cleanup, halfway
    through the batch), so the parent sees a broken pool — with some pairs
    already computed and lost — not an error result.
    """
    state = _worker_state(token, spec_blob)
    _WORKER_STRUCTURES.shared = state.shared
    before = _structure_counters()
    metrics_before = WORKER_REGISTRY.dump()
    crash_at = len(pairs) // 2 if crash else -1
    local = Tracer() if trace else NOOP_TRACER
    results = []
    seconds: List[float] = []
    batch_started = time.perf_counter()
    with local.span("worker.batch", pid=os.getpid(), pairs=len(pairs)) as wspan:
        for index, (partition, attribute, baseline) in enumerate(pairs):
            if index == crash_at:
                os.kill(os.getpid(), signal.SIGKILL)
            started = time.perf_counter()
            results.append(
                state.backend.partition_contributions(partition, attribute, baseline)
            )
            seconds.append(time.perf_counter() - started)
        wspan.set("structure_hits", _WORKER_STRUCTURES.hits - before["structure_hits"])
        wspan.set("structure_misses",
                  _WORKER_STRUCTURES.misses - before["structure_misses"])
    stats = _structure_delta(before)
    stats["pair_seconds"] = seconds
    _record_worker_metrics(time.perf_counter() - batch_started, seconds, stats)
    stats["metrics"] = registry_delta(metrics_before, WORKER_REGISTRY.dump())
    stats["pid"] = os.getpid()
    if trace:
        stats["spans"] = local.export()
    return results, stats


def _structure_counters() -> Dict[str, int]:
    return {
        "structure_hits": _WORKER_STRUCTURES.hits,
        "structure_misses": _WORKER_STRUCTURES.misses,
        "shared_structure_hits": _WORKER_STRUCTURES.shared_hits,
        "shared_structure_stores": _WORKER_STRUCTURES.shared_stores,
    }


def _structure_delta(before: Dict[str, int]) -> Dict[str, int]:
    after = _structure_counters()
    return {name: after[name] - before[name] for name in before}


def _record_worker_metrics(batch_seconds: float, pair_seconds,
                           structure_delta: Dict[str, int]) -> None:
    """Fold one job's timings and structure events into :data:`WORKER_REGISTRY`.

    Runs in the worker right before the per-batch registry delta is taken,
    so the shipped delta carries exactly this job's observations.
    """
    _WORKER_BATCH_SECONDS.observe(batch_seconds)
    values = (pair_seconds.values() if isinstance(pair_seconds, dict)
              else pair_seconds)
    for value in values:
        _WORKER_PAIR_SECONDS.observe(value)
    for key, (tier, event) in _STRUCTURE_EVENT_LABELS:
        amount = int(structure_delta.get(key, 0))
        if amount > 0:
            _WORKER_STRUCTURE_EVENTS.labels(tier=tier, event=event).inc(amount)


def _run_queue(token: str, spec_blob: bytes, board_dir: str,
               trace: bool = False, crash_mode: int = 0):
    """One worker's drain loop over a steal board.

    Unlike :func:`_run_batch`, the pair list is not an argument — the
    worker claims indexes from the shared board until it is empty, so fast
    workers absorb the slow workers' tails.  Returns
    ``({global pair index: result}, stats)``; index keys make the results
    order-independent, and per-index timings ship in
    ``stats["pair_seconds"]`` for the session cost history.

    ``crash_mode`` is the crash-injection hook: ``1`` kills the worker
    after its first computed pair (mid-grid loss), ``2`` kills it
    immediately after a *successful steal* — the stolen range is then
    orphaned with its slot marked claimed, which is exactly the case the
    parent's per-pair serial retry must cover.
    """
    state = _worker_state(token, spec_blob)
    _WORKER_STRUCTURES.shared = state.shared
    before = _structure_counters()
    metrics_before = WORKER_REGISTRY.dump()
    with open(Path(board_dir) / "pairs.pkl", "rb") as handle:
        payload = pickle.load(handle)
    board = _BoardClient(board_dir)
    local = Tracer() if trace else NOOP_TRACER
    results: Dict[int, object] = {}
    seconds: Dict[int, float] = {}
    computed = 0
    queue_started = time.perf_counter()
    with local.span("worker.queue", pid=os.getpid()) as wspan:
        while True:
            claim = board.claim_next()
            if claim is None:
                break
            index, stole = claim
            if stole and crash_mode == 2:
                os.kill(os.getpid(), signal.SIGKILL)
            partition, attribute, baseline = payload[index]
            started = time.perf_counter()
            results[index] = state.backend.partition_contributions(
                partition, attribute, baseline)
            seconds[index] = time.perf_counter() - started
            computed += 1
            if crash_mode == 1 and computed >= 1:
                os.kill(os.getpid(), signal.SIGKILL)
            if crash_mode == 2:
                # Throttle the non-thief: on an under-provisioned host the
                # first worker could otherwise drain the whole board before
                # the second one is ever scheduled, leaving no steal for the
                # injection to crash.
                time.sleep(0.02)
        wspan.set("pairs", computed)
    stats = _structure_delta(before)
    stats["pair_seconds"] = seconds
    stats["pairs"] = computed
    _record_worker_metrics(time.perf_counter() - queue_started, seconds, stats)
    stats["metrics"] = registry_delta(metrics_before, WORKER_REGISTRY.dump())
    stats["pid"] = os.getpid()
    if trace:
        stats["spans"] = local.export()
    return results, stats


def _probe_descriptor(descriptor) -> Dict[str, object]:
    """Worker-side diagnostics: the fingerprint work of resolving a descriptor.

    Ships the re-opened frame's fingerprints back together with the
    process-wide :data:`~repro.dataframe.column.FINGERPRINT_STATS` counters
    (reset first), so tests can assert that a worker resolving a stored
    frame performs **zero** full-column hashes — every fingerprint is
    answered by the persisted digests.
    """
    from ...dataframe.column import FINGERPRINT_STATS
    from ...dataframe.frame import DataFrame

    FINGERPRINT_STATS.reset()
    frame = DataFrame.from_descriptor(descriptor)
    payload: Dict[str, object] = {
        "pid": os.getpid(),
        "frame_fingerprint": frame.fingerprint(),
        "column_fingerprints": {
            name: frame[name].fingerprint() for name in frame.column_names
        },
    }
    payload.update(FINGERPRINT_STATS.as_dict())
    return payload
