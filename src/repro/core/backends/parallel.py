"""The parallel intervention backend: grid sharding over a worker pool.

The contribution phase of Algorithm 1 evaluates a *grid* of independent
units of work — one ``(partition, attribute)`` pair at a time, each pair an
intervention pass over all the partition's sets-of-rows.  The pairs share
read-only precomputed structure (argsorts, factorizations, group partials,
row provenance) but never each other's results, which makes the grid
embarrassingly parallel.

:class:`ParallelBackend` exploits that: the engine announces the full grid
up front via :meth:`~repro.core.backends.base.ContributionBackend.prefetch`,
the backend resolves all shared structure *serially* (so no two workers race
to build the same lazily-cached plan), then submits the grid in batches
sized by the cost model of :mod:`~repro.core.backends.costs` — one job per
batch, many pairs per job, so future/queue overhead is amortized on wide
grids exactly as in the process backend.  Each job delegates to an embedded
:class:`~repro.core.backends.incremental.IncrementalBackend`, so every shard
enjoys the incremental derivations and the batched KS pass; the per-pair
results are keyed by pair identity, which makes the output bit-identical to
running the incremental backend serially regardless of worker count, batch
size, or completion order.

With ``steal`` on, batches become the initial ranges of an in-process steal
board (a plain lock-guarded slot list — the thread cousin of the process
backend's flock-guarded ``state.bin``): each pool thread claims pairs until
the board drains, splitting the largest in-flight remainder in half when
nothing unclaimed is left, so a thread stuck on an expensive tail no longer
idles the rest of the pool.  Stealing moves *who* computes a pair, never
what is computed — results stay keyed by pair identity and bit-identical.

Threads (not processes) are the right pool here: the heavy lifting is NumPy
slicing, sorting-order gathers, ``bincount`` and ``cumsum`` calls that
release the GIL, and threads share the precomputed structure for free where
processes would have to pickle dataframes per shard.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from ...obs.metrics import REGISTRY
from ...obs.trace import NOOP_TRACER, current_tracer
from ..partition import RowPartition, RowSet
from .base import ContributionBackend, resolve_flag
from .costs import history_key, pair_key, plan_batches
from .incremental import IncrementalBackend

#: Worker count used when the caller does not pick one explicitly.
DEFAULT_WORKERS = min(4, os.cpu_count() or 1)

#: Per-job dispatch histogram, the thread-pool sibling of the process
#: backend's worker-labeled series (threads share the parent pid, so the
#: label here is the pool role instead).
_THREAD_JOB_SECONDS = REGISTRY.histogram(
    "repro_parallel_job_seconds",
    "Wall time of one thread-pool contribution job, by dispatch mode.",
    ("mode",))

_MISSING = object()


class _ThreadBoard:
    """The in-process steal board: slot ranges over a flat pair payload.

    Same protocol as the process backend's ``state.bin`` — slots are
    ``[start, end, next, owner]`` half-open ranges, a steal splits the
    largest remaining range at ``end - remainder // 2`` (victim keeps the
    front, so its next claim is untouched) — but the slots are plain lists
    guarded by one :class:`threading.Lock` instead of a flock-guarded file.
    """

    __slots__ = ("_lock", "_slots", "steals", "stolen_pairs")

    def __init__(self, batches: Sequence[Sequence]) -> None:
        self._lock = threading.Lock()
        self._slots: List[List[int]] = []
        offset = 0
        for batch in batches:
            self._slots.append([offset, offset + len(batch), offset, -1])
            offset += len(batch)
        self.steals = 0
        self.stolen_pairs = 0

    def claim_next(self, client: List[int], owner: int) -> Optional[int]:
        """Claim one payload index for ``owner``, or ``None`` when drained.

        ``client`` is the caller's one-slot affinity cell (``[slot or -1]``)
        — preference order mirrors :class:`~.process._BoardClient`: advance
        the owned slot, claim a never-claimed slot, then steal.
        """
        with self._lock:
            if client[0] >= 0:
                slot = self._slots[client[0]]
                if slot[2] < slot[1]:
                    slot[2] += 1
                    return slot[2] - 1
                client[0] = -1
            for number, slot in enumerate(self._slots):
                if slot[3] == -1 and slot[2] < slot[1]:
                    slot[3] = owner
                    slot[2] += 1
                    client[0] = number
                    return slot[2] - 1
            victim, best = -1, 1
            for number, slot in enumerate(self._slots):
                remainder = slot[1] - slot[2]
                if remainder > best:
                    victim, best = number, remainder
            if victim >= 0:
                slot = self._slots[victim]
                end = slot[1]
                mid = end - best // 2
                slot[1] = mid
                self._slots.append([mid, end, mid + 1, owner])
                client[0] = len(self._slots) - 1
                self.steals += 1
                self.stolen_pairs += end - mid
                return mid
            return None


class ParallelBackend(ContributionBackend):
    """Computes the contribution grid concurrently on a thread pool.

    Parameters
    ----------
    step / measure:
        As for every backend: the exploratory step being explained and the
        interestingness measure of its contribution phase.
    workers:
        Number of pool threads; defaults to ``min(4, cpu_count)``.  ``1``
        degenerates to the serial incremental backend plus pool overhead.
    context:
        Optional session cache forwarded to the embedded incremental
        backend, so parallel execution composes with cross-step structure
        reuse (:mod:`repro.session`).  When it also keeps pair-cost history
        (``pair_costs`` / ``store_pair_costs``), measured per-pair timings
        feed the next step's batch plan.
    shard_batch:
        Grid pairs per submitted batch (``FedexConfig.shard_batch``);
        ``None`` resolves ``REPRO_SHARD_BATCH`` and then the cost-model /
        count policies of :func:`~repro.core.backends.costs.plan_batches`.
    adaptive_batch:
        Cost-model batch sizing when ``shard_batch`` is automatic; ``None``
        resolves ``REPRO_ADAPTIVE_BATCH`` and defaults on.
    steal:
        Work-stealing over the in-process board; ``None`` resolves
        ``REPRO_STEAL`` and defaults off.
    """

    name = "parallel"

    def __init__(self, step, measure, workers: Optional[int] = None, context=None,
                 ks_budget_bytes: Optional[int] = None,
                 shard_batch: Optional[int] = None,
                 adaptive_batch: Optional[bool] = None,
                 steal: Optional[bool] = None) -> None:
        super().__init__(step, measure)
        self.workers = int(workers) if workers else DEFAULT_WORKERS
        if self.workers < 1:
            self.workers = 1
        self.shard_batch = shard_batch
        self.adaptive_batch = resolve_flag(adaptive_batch, "REPRO_ADAPTIVE_BATCH", True)
        self.steal = resolve_flag(steal, "REPRO_STEAL", False)
        self._inner = IncrementalBackend(step, measure, context=context,
                                         ks_budget_bytes=ks_budget_bytes)
        self._context = context
        # The partition object is kept in the value to pin its id for the
        # entry's lifetime (mirrors ContributionCalculator._raw_cache): a
        # garbage-collected partition could otherwise donate its reused id
        # to a new partition and hand it a stale future.  The index selects
        # this pair's slot in the batch future's result list.
        self._futures: Dict[Tuple[int, str], Tuple[RowPartition, Future, int]] = {}
        self.batches_submitted = 0
        #: How the batch planner sized this grid's batches
        #: (``fixed``/``env``/``count-auto``/``cost-static``/``cost-history``).
        self.batch_policy: Optional[str] = None
        self.steals = 0
        self.stolen_pairs = 0
        # Stealing-mode state: the flat payload, pair-key → payload-index
        # bookkeeping, the shared results map the queue jobs fill, and the
        # outstanding queue futures the consumer drains.
        self._queue_payload: Optional[list] = None
        self._queue_index: Dict[Tuple[int, str], int] = {}
        self._queue_results: Dict[int, object] = {}
        self._queue_futures: List[Future] = []
        self._board: Optional[_ThreadBoard] = None
        # Measured per-pair seconds awaiting a merge into the session's
        # cost history; guarded by _cost_lock (jobs record concurrently).
        self._pending_costs: Dict[Tuple, float] = {}
        self._cost_lock = threading.Lock()
        self._history_key: Optional[Tuple] = None
        # Tracing: captured at prefetch time — batch jobs run on pool
        # threads where the ambient context variable does not propagate, so
        # the tracer and the submitting span travel on the backend instead.
        self._tracer = NOOP_TRACER
        self._trace_parent = None

    # ------------------------------------------------------------------ public
    def prefetch(self, grid: Sequence[Tuple[RowPartition, str]],
                 baselines: Dict[str, float],
                 batch_hint: Optional[int] = None) -> None:
        """Shard the partition × attribute grid across the worker pool.

        Shared structure (row provenance, group partials, per-attribute
        plans) is materialised serially first — afterwards the batched jobs
        only *read* backend state, so they are safe to run concurrently.
        Pairs are then cut by :func:`plan_batches` — equal predicted cost
        when adaptive, equal count otherwise; each batch walks its pairs in
        grid order on one thread (or, stealing, threads claim pairs from
        the shared board), so the computation per pair — and therefore
        every result — is identical to the serial incremental backend for
        any batch size and any interleaving.
        """
        if not grid:
            return
        tracer = current_tracer()
        self._tracer = tracer
        self._trace_parent = tracer.current_span()
        inner = self._inner
        with tracer.span("parallel.plan", pairs=len(grid)):
            for partition, attribute in grid:
                inner._plan_for(partition.input_index, attribute)
        pending = [(partition, attribute) for partition, attribute in grid
                   if (id(partition), attribute) not in self._futures]
        hint = batch_hint if batch_hint is not None else self.shard_batch
        plan = plan_batches(pending, workers=self.workers, inner=inner,
                            shard_batch=hint, adaptive=self.adaptive_batch,
                            history=self._load_history())
        self.batch_policy = plan.policy
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="fedex-contribution"
        )
        try:
            if self.steal and len(pending) > 1:
                self._prefetch_stealing(executor, plan, baselines)
                return
            for batch in plan.batches:
                payload = [(partition, attribute, baselines[attribute])
                           for partition, attribute in batch]
                future = executor.submit(self._run_batch, payload)
                for index, (partition, attribute) in enumerate(batch):
                    self._futures[(id(partition), attribute)] = (partition, future, index)
                self.batches_submitted += 1
        finally:
            # Pending jobs still run to completion; the pool threads simply
            # retire once the queue drains, so no explicit lifecycle
            # management is needed downstream.
            executor.shutdown(wait=False)

    def partition_contributions(self, partition: RowPartition, attribute: str,
                                baseline: float) -> List[float]:
        queue_index = self._queue_index.pop((id(partition), attribute), None)
        if queue_index is not None:
            result = self._drain_queue(queue_index)
            if result is not _MISSING:
                return result
            # A queue job raised before this pair's result landed (the
            # thread cousin of a lost worker): recompute serially —
            # bit-identical, the incremental derivation is deterministic.
            return self._inner.partition_contributions(partition, attribute,
                                                       baseline)
        entry = self._futures.pop((id(partition), attribute), None)
        if entry is not None:
            return entry[1].result()[entry[2]]
        return self._inner.partition_contributions(partition, attribute, baseline)

    def stats(self) -> Dict[str, object]:
        """Scheduling counters (tests, benchmarks, operators)."""
        return {
            "workers": self.workers,
            "batches_submitted": self.batches_submitted,
            "batch_policy": self.batch_policy,
            "steals": self.steals,
            "stolen_pairs": self.stolen_pairs,
        }

    # ---------------------------------------------------------------- internals
    def _prefetch_stealing(self, executor: ThreadPoolExecutor, plan,
                           baselines) -> None:
        """Publish the grid onto the thread board and start one job per worker."""
        payload = []
        for batch in plan.batches:
            for partition, attribute in batch:
                payload.append((partition, attribute, baselines[attribute]))
        self._queue_payload = payload
        self._queue_results = {}
        self._board = _ThreadBoard(plan.batches)
        for index, (partition, attribute, _) in enumerate(payload):
            self._queue_index[(id(partition), attribute)] = index
        jobs = min(self.workers, len(payload))
        for job in range(jobs):
            future = executor.submit(self._run_queue, job)
            self._queue_futures.append(future)
            self.batches_submitted += 1

    def _drain_queue(self, index: int):
        """Wait until pair ``index``'s result arrived, or no job can bring it."""
        while index not in self._queue_results and self._queue_futures:
            done, outstanding = wait(self._queue_futures,
                                     return_when=FIRST_COMPLETED)
            self._queue_futures = list(outstanding)
            for future in done:
                # A raised job already recorded nothing; its claimed-but-
                # uncomputed pairs surface as _MISSING for serial retry.
                try:
                    future.result()
                except Exception:
                    pass
        if not self._queue_futures:
            self._fold_board()
        return self._queue_results.get(index, _MISSING)

    def _fold_board(self) -> None:
        if self._board is not None:
            self.steals += self._board.steals
            self.stolen_pairs += self._board.stolen_pairs
            self._board = None

    def _run_queue(self, worker: int) -> None:
        """One pool thread's drain loop over the steal board."""
        inner = self._inner
        payload = self._queue_payload
        board = self._board
        client = [-1]
        seconds: Dict[Tuple, float] = {}
        computed = 0
        job_started = time.perf_counter()
        with self._tracer.span("parallel.queue", parent=self._trace_parent,
                               worker=worker) as span:
            while True:
                index = board.claim_next(client, worker)
                if index is None:
                    break
                partition, attribute, baseline = payload[index]
                started = time.perf_counter()
                self._queue_results[index] = inner.partition_contributions(
                    partition, attribute, baseline)
                seconds[pair_key(partition, attribute)] = (
                    time.perf_counter() - started)
                computed += 1
            span.set("pairs", computed)
        _THREAD_JOB_SECONDS.labels(mode="queue").observe(
            time.perf_counter() - job_started)
        self._record_costs(seconds)

    def _run_batch(self, payload: Sequence[Tuple[RowPartition, str, float]]) -> List[List[float]]:
        """One batch of grid pairs on one pool thread, in grid order."""
        inner = self._inner
        results = []
        seconds: Dict[Tuple, float] = {}
        job_started = time.perf_counter()
        with self._tracer.span("parallel.batch", parent=self._trace_parent,
                               pairs=len(payload)):
            for partition, attribute, baseline in payload:
                started = time.perf_counter()
                results.append(
                    inner.partition_contributions(partition, attribute, baseline))
                seconds[pair_key(partition, attribute)] = (
                    time.perf_counter() - started)
        _THREAD_JOB_SECONDS.labels(mode="batch").observe(
            time.perf_counter() - job_started)
        self._record_costs(seconds)
        return results

    def _load_history(self) -> Optional[Dict[Tuple, float]]:
        """The session's measured pair costs for this step, if it keeps any."""
        hook = getattr(self._context, "pair_costs", None)
        if hook is None or not self.adaptive_batch:
            return None
        try:
            if self._history_key is None:
                self._history_key = history_key(self.step)
            return hook(self._history_key) or None
        except Exception:
            return None

    def _record_costs(self, seconds: Dict[Tuple, float]) -> None:
        """Merge one job's measured pair timings into the session history."""
        if not seconds:
            return
        hook = getattr(self._context, "store_pair_costs", None)
        if hook is None:
            return
        with self._cost_lock:
            self._pending_costs.update(seconds)
            pending = dict(self._pending_costs)
            self._pending_costs.clear()
        try:
            if self._history_key is None:
                self._history_key = history_key(self.step)
            hook(self._history_key, pending)
        except Exception:
            pass

    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        return self._inner.reduced_score(row_set, attribute)
