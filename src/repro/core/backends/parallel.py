"""The parallel intervention backend: grid sharding over a worker pool.

The contribution phase of Algorithm 1 evaluates a *grid* of independent
units of work — one ``(partition, attribute)`` pair at a time, each pair an
intervention pass over all the partition's sets-of-rows.  The pairs share
read-only precomputed structure (argsorts, factorizations, group partials,
row provenance) but never each other's results, which makes the grid
embarrassingly parallel.

:class:`ParallelBackend` exploits that: the engine announces the full grid
up front via :meth:`~repro.core.backends.base.ContributionBackend.prefetch`,
the backend resolves all shared structure *serially* (so no two workers race
to build the same lazily-cached plan), then submits the grid in
:func:`~repro.core.backends.base.resolve_shard_batch`-sized batches — one
job per batch, many pairs per job, so future/queue overhead is amortized on
wide grids exactly as in the process backend.  Each job delegates to an
embedded :class:`~repro.core.backends.incremental.IncrementalBackend`, so
every shard enjoys the incremental derivations and the batched KS pass; the
per-pair results are keyed by pair identity, which makes the output
bit-identical to running the incremental backend serially regardless of
worker count, batch size, or completion order.

Threads (not processes) are the right pool here: the heavy lifting is NumPy
slicing, sorting-order gathers, ``bincount`` and ``cumsum`` calls that
release the GIL, and threads share the precomputed structure for free where
processes would have to pickle dataframes per shard.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ...obs.trace import NOOP_TRACER, current_tracer
from ..partition import RowPartition, RowSet
from .base import ContributionBackend, iter_shard_batches, resolve_shard_batch
from .incremental import IncrementalBackend

#: Worker count used when the caller does not pick one explicitly.
DEFAULT_WORKERS = min(4, os.cpu_count() or 1)


class ParallelBackend(ContributionBackend):
    """Computes the contribution grid concurrently on a thread pool.

    Parameters
    ----------
    step / measure:
        As for every backend: the exploratory step being explained and the
        interestingness measure of its contribution phase.
    workers:
        Number of pool threads; defaults to ``min(4, cpu_count)``.  ``1``
        degenerates to the serial incremental backend plus pool overhead.
    context:
        Optional session cache forwarded to the embedded incremental
        backend, so parallel execution composes with cross-step structure
        reuse (:mod:`repro.session`).
    shard_batch:
        Grid pairs per submitted batch (``FedexConfig.shard_batch``);
        ``None`` resolves ``REPRO_SHARD_BATCH`` and then the automatic
        policy — see :func:`~repro.core.backends.base.resolve_shard_batch`.
    """

    name = "parallel"

    def __init__(self, step, measure, workers: Optional[int] = None, context=None,
                 ks_budget_bytes: Optional[int] = None,
                 shard_batch: Optional[int] = None) -> None:
        super().__init__(step, measure)
        self.workers = int(workers) if workers else DEFAULT_WORKERS
        if self.workers < 1:
            self.workers = 1
        self.shard_batch = shard_batch
        self._inner = IncrementalBackend(step, measure, context=context,
                                         ks_budget_bytes=ks_budget_bytes)
        # The partition object is kept in the value to pin its id for the
        # entry's lifetime (mirrors ContributionCalculator._raw_cache): a
        # garbage-collected partition could otherwise donate its reused id
        # to a new partition and hand it a stale future.  The index selects
        # this pair's slot in the batch future's result list.
        self._futures: Dict[Tuple[int, str], Tuple[RowPartition, Future, int]] = {}
        self.batches_submitted = 0
        # Tracing: captured at prefetch time — batch jobs run on pool
        # threads where the ambient context variable does not propagate, so
        # the tracer and the submitting span travel on the backend instead.
        self._tracer = NOOP_TRACER
        self._trace_parent = None

    # ------------------------------------------------------------------ public
    def prefetch(self, grid: Sequence[Tuple[RowPartition, str]],
                 baselines: Dict[str, float],
                 batch_hint: Optional[int] = None) -> None:
        """Shard the partition × attribute grid across the worker pool.

        Shared structure (row provenance, group partials, per-attribute
        plans) is materialised serially first — afterwards the batched jobs
        only *read* backend state, so they are safe to run concurrently.
        Pairs are submitted in :func:`resolve_shard_batch`-sized batches;
        each batch walks its pairs in grid order on one thread, so the
        computation per pair — and therefore every result — is identical to
        the serial incremental backend for any batch size.
        """
        if not grid:
            return
        tracer = current_tracer()
        self._tracer = tracer
        self._trace_parent = tracer.current_span()
        inner = self._inner
        with tracer.span("parallel.plan", pairs=len(grid)):
            for partition, attribute in grid:
                inner._plan_for(partition.input_index, attribute)
        pending = [(partition, attribute) for partition, attribute in grid
                   if (id(partition), attribute) not in self._futures]
        hint = batch_hint if batch_hint is not None else self.shard_batch
        batch_size = resolve_shard_batch(hint, len(pending), self.workers)
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="fedex-contribution"
        )
        try:
            for batch in iter_shard_batches(pending, batch_size):
                payload = [(partition, attribute, baselines[attribute])
                           for partition, attribute in batch]
                future = executor.submit(self._run_batch, payload)
                for index, (partition, attribute) in enumerate(batch):
                    self._futures[(id(partition), attribute)] = (partition, future, index)
                self.batches_submitted += 1
        finally:
            # Pending jobs still run to completion; the pool threads simply
            # retire once the queue drains, so no explicit lifecycle
            # management is needed downstream.
            executor.shutdown(wait=False)

    def partition_contributions(self, partition: RowPartition, attribute: str,
                                baseline: float) -> List[float]:
        entry = self._futures.pop((id(partition), attribute), None)
        if entry is not None:
            return entry[1].result()[entry[2]]
        return self._inner.partition_contributions(partition, attribute, baseline)

    # ---------------------------------------------------------------- internals
    def _run_batch(self, payload: Sequence[Tuple[RowPartition, str, float]]) -> List[List[float]]:
        """One batch of grid pairs on one pool thread, in grid order."""
        inner = self._inner
        with self._tracer.span("parallel.batch", parent=self._trace_parent,
                               pairs=len(payload)):
            return [inner.partition_contributions(partition, attribute, baseline)
                    for partition, attribute, baseline in payload]

    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        return self._inner.reduced_score(row_set, attribute)
