"""Cost-model batch planning for the pooled contribution backends.

The contribution grid is skewed: a pair whose plan is an exact-rerun
fallback costs orders of magnitude more than a pair served by a slice plan
over the same rows, and a 200-set partition costs ~100× a 2-set one.  The
fixed-size batches of :func:`~repro.core.backends.base.resolve_shard_batch`
ignore that entirely — one expensive pair straggles a whole batch while
every other worker idles.

:func:`plan_batches` replaces the fixed cut with *equal-predicted-cost*
contiguous slices:

* every pair gets a **static estimate** from its incremental plan class
  (:meth:`~repro.core.backends.incremental.IncrementalBackend.plan_class`),
  its partition's set count, the input's row count and the target column's
  dtype;
* when the caller supplies **measured history** — per-pair wall-clock
  seconds from an earlier run of the same step, shipped worker→parent in
  batch stats and persisted by the session under the step-signature key —
  measured pairs use their measurement and unmeasured pairs are rescaled
  static estimates (median measured/estimated ratio), so the units agree;
* the grid is then cut into at most ``workers × oversubscription``
  contiguous batches of roughly equal predicted cost.  Contiguity is
  load-bearing: batches stay grid-order slices, so crash retries and
  result bookkeeping are identical to the fixed policy.

An explicit ``shard_batch`` (config knob / prefetch hint) or the
``REPRO_SHARD_BATCH`` environment variable still wins — those are the
"fixed" and "env" policies — and with no cost signal at all the plan
degrades to the old count-based automatic policy.  The chosen policy name
is reported in ``backend.stats()["batch_policy"]``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import DEFAULT_OVERSUBSCRIPTION, resolve_shard_batch

#: Relative cost per (set-of-rows × input row) of one pair, by plan class.
#: Only the ratios matter: slice plans are the vectorised NumPy baseline,
#: group-by partials touch groups rather than rows, left-join right-side
#: plans rebuild reduced outputs, and the exact-rerun fallback re-applies
#: the whole operation per set in python.
PLAN_CLASS_WEIGHTS: Dict[str, float] = {
    "constant": 0.0,
    "groupby": 0.2,
    "slice": 1.0,
    "leftjoin": 3.0,
    "exact": 40.0,
}

#: Extra factor for object-dtype target columns (python-object comparisons
#: instead of vectorised numeric kernels).
OBJECT_DTYPE_FACTOR = 2.0


def pair_key(partition, attribute: str) -> Tuple:
    """Stable identity of one (partition, attribute) grid pair.

    Built from the partition's declarative coordinates rather than object
    identity, so the same logical pair of a re-explained step — fresh
    partition objects, same content — maps onto the cost measured for it
    by a previous run.
    """
    return (
        partition.input_index,
        partition.method,
        partition.source_attribute,
        partition.n_requested,
        len(partition.sets),
        attribute,
    )


def history_key(step) -> Tuple:
    """Session-store key of a step's measured pair costs.

    Mirrors the structure-layer keys: operation kind + declarative
    signature + input content fingerprints, so a rewritten dataset keys a
    fresh history instead of inheriting stale timings.
    """
    operation = step.operation
    return ("paircosts", operation.kind, operation.signature(),
            tuple(frame.fingerprint() for frame in step.inputs))


def estimate_pair_cost(plan_class: str, n_sets: int, n_rows: int,
                       object_dtype: bool = False) -> float:
    """Static cost estimate of one grid pair (arbitrary units)."""
    weight = PLAN_CLASS_WEIGHTS.get(plan_class, PLAN_CLASS_WEIGHTS["slice"])
    cost = weight * max(int(n_sets), 1) * max(int(n_rows), 1)
    if object_dtype:
        cost *= OBJECT_DTYPE_FACTOR
    # Floor: even a constant-score pair pays its dispatch overhead.
    return cost + 1.0


@dataclass
class BatchPlan:
    """The planned batches of one contribution grid.

    ``batches`` are contiguous grid-order slices; ``policy`` names how they
    were sized (``fixed`` / ``env`` / ``count-auto`` / ``cost-static`` /
    ``cost-history``); ``costs`` carries each batch's predicted cost in the
    policy's units (pair counts for the count policies).
    """

    batches: List[List[Tuple[object, str]]]
    policy: str
    costs: List[float]

    @property
    def pairs(self) -> int:
        return sum(len(batch) for batch in self.batches)


def _fixed_plan(pairs: Sequence, size: int, policy: str) -> BatchPlan:
    batches = [list(pairs[start:start + size])
               for start in range(0, len(pairs), size)]
    return BatchPlan(batches, policy, [float(len(batch)) for batch in batches])


def static_pair_cost(inner, partition, attribute: str) -> float:
    """The static estimate of one pair against an incremental backend."""
    step = inner.step
    plan_class = "slice"
    try:
        plan_class = inner.plan_class(partition.input_index, attribute)
    except Exception:
        pass
    n_rows = 0
    object_dtype = False
    if 0 <= partition.input_index < len(step.inputs):
        frame = step.inputs[partition.input_index]
        n_rows = frame.num_rows
        try:
            if attribute in frame:
                object_dtype = frame[attribute].values.dtype == object
        except Exception:
            pass
    return estimate_pair_cost(plan_class, len(partition.sets), n_rows,
                              object_dtype)


def plan_batches(pairs: Sequence[Tuple[object, str]], *, workers: int,
                 inner=None, shard_batch: Optional[int] = None,
                 adaptive: bool = True,
                 history: Optional[Dict[Tuple, float]] = None,
                 oversubscription: int = DEFAULT_OVERSUBSCRIPTION) -> BatchPlan:
    """Cut a contribution grid into batches of roughly equal predicted cost.

    Policy precedence matches :func:`resolve_shard_batch`: an explicit
    ``shard_batch`` → fixed-size slices (``fixed``); the
    ``REPRO_SHARD_BATCH`` environment variable → fixed-size slices
    (``env``); adaptive sizing disabled or no ``inner`` backend to
    classify plans → the count-based automatic policy (``count-auto``);
    otherwise equal-cost slices from static estimates (``cost-static``),
    upgraded to measured history when any pair of the grid was timed
    before (``cost-history``).
    """
    pairs = list(pairs)
    if not pairs:
        return BatchPlan([], "empty", [])
    workers = max(int(workers), 1)
    if shard_batch is not None or os.environ.get("REPRO_SHARD_BATCH"):
        size = resolve_shard_batch(shard_batch, len(pairs), workers,
                                   oversubscription)
        policy = "fixed" if shard_batch is not None else "env"
        return _fixed_plan(pairs, size, policy)
    if not adaptive or inner is None:
        size = resolve_shard_batch(None, len(pairs), workers, oversubscription)
        return _fixed_plan(pairs, size, "count-auto")

    keys = [pair_key(partition, attribute) for partition, attribute in pairs]
    static = [static_pair_cost(inner, partition, attribute)
              for partition, attribute in pairs]
    policy = "cost-static"
    costs = static
    if history:
        matched = [(estimate, history[key])
                   for key, estimate in zip(keys, static) if key in history]
        if matched:
            policy = "cost-history"
            # Rescale unmeasured static estimates into seconds via the
            # median measured/estimated ratio of the covered pairs, so
            # mixed grids compare costs in one unit.
            ratios = sorted(measured / max(estimate, 1e-12)
                            for estimate, measured in matched)
            scale = ratios[len(ratios) // 2]
            costs = [history.get(key, estimate * scale)
                     for key, estimate in zip(keys, static)]
    total = sum(costs)
    if total <= 0:
        size = resolve_shard_batch(None, len(pairs), workers, oversubscription)
        return _fixed_plan(pairs, size, "count-auto")

    slots = min(len(pairs), workers * max(int(oversubscription), 1))
    batches: List[List[Tuple[object, str]]] = []
    batch_costs: List[float] = []
    current: List[Tuple[object, str]] = []
    current_cost = 0.0
    remaining = total
    for index, (pair, cost) in enumerate(zip(pairs, costs)):
        current.append(pair)
        current_cost += cost
        remaining -= cost
        # Cut once this batch holds its fair share of what was left when it
        # started, as long as every remaining slot can still get a pair.
        fair_share = (current_cost + remaining) / max(slots, 1)
        if (slots > 1 and current_cost >= fair_share
                and len(pairs) - index - 1 >= slots - 1):
            batches.append(current)
            batch_costs.append(current_cost)
            current, current_cost = [], 0.0
            slots -= 1
    if current:
        batches.append(current)
        batch_costs.append(current_cost)
    return BatchPlan(batches, policy, batch_costs)
