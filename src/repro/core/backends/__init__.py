"""Pluggable intervention-execution backends for the contribution phase.

The engine front-end (:class:`~repro.core.engine.FedexExplainer`) stays
stable while the execution strategy behind Definition 3.3 is swappable via
``FedexConfig(backend=...)``:

* ``"exact"`` — :class:`ExactRerunBackend`, remove → re-run → re-score (the
  reference oracle);
* ``"incremental"`` — :class:`IncrementalBackend`, batched derivation from
  precomputed per-group partials, row provenance, and shared argsorts (the
  default);
* ``"parallel"`` — :class:`ParallelBackend`, shards the partition ×
  attribute grid across a thread pool, each shard served by an embedded
  incremental backend (``FedexConfig(workers=...)`` picks the pool size);
* ``"process"`` — :class:`ProcessBackend`, the same grid sharding over a
  process pool for Python-heavy shard mixes the GIL serializes: inputs
  travel as mmap frame descriptors (``FedexConfig(spill_bytes=...)``
  governs spilling of in-memory inputs).
"""

from .base import ContributionBackend, available_backends, make_backend
from .exact import ExactRerunBackend
from .incremental import IncrementalBackend
from .parallel import ParallelBackend
from .process import ProcessBackend, shutdown_process_pools

__all__ = [
    "ContributionBackend",
    "ExactRerunBackend",
    "IncrementalBackend",
    "ParallelBackend",
    "ProcessBackend",
    "available_backends",
    "make_backend",
    "shutdown_process_pools",
]
