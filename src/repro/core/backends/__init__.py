"""Pluggable intervention-execution backends for the contribution phase.

The engine front-end (:class:`~repro.core.engine.FedexExplainer`) stays
stable while the execution strategy behind Definition 3.3 is swappable via
``FedexConfig(backend=...)``:

* ``"exact"`` — :class:`ExactRerunBackend`, remove → re-run → re-score (the
  reference oracle);
* ``"incremental"`` — :class:`IncrementalBackend`, batched derivation from
  precomputed per-group partials, row provenance, and shared argsorts (the
  default).
"""

from .base import ContributionBackend, available_backends, make_backend
from .exact import ExactRerunBackend
from .incremental import IncrementalBackend

__all__ = [
    "ContributionBackend",
    "ExactRerunBackend",
    "IncrementalBackend",
    "available_backends",
    "make_backend",
]
