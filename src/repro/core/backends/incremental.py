"""The batched, structure-exploiting intervention backend.

Instead of re-running the operation per set-of-rows (the
:class:`~repro.core.backends.exact.ExactRerunBackend` semantics), this
backend derives every reduced interestingness score from structure that is
precomputed **once per (step, attribute)** and shared across all
interventions:

* **Group-by with decomposable aggregates** (sum / count / mean / min /
  max / median / std): one pass over the input assigns every row a group
  id; per-group counts and sums are precomputed, and each intervention's
  reduced aggregates follow by subtracting the removed rows' per-group
  partials (min/max use a per-group scatter over the surviving rows,
  median reads order statistics off one shared group-major sort, std
  subtracts centered first/second moments) — no re-grouping, no per-group
  python loop.
* **Filter / inner join / union / project**: the operation's row-level
  provenance (:meth:`~repro.operators.operations.Operation.row_mask`) is
  computed once; every intervention's reduced output is a boolean slice of
  the already-materialised output — the operation is never re-run.
* **KS re-scoring**: the exceptionality measure needs the reduced input and
  output columns *sorted*; both argsorts are computed once (and cached on
  the :class:`~repro.dataframe.column.Column`), and each intervention's
  sorted values are obtained by masking the sorted order — dropping rows
  from a sorted array leaves it sorted.  Categorical columns go through
  cached factorisation codes and count subtraction instead.

* **KS re-scoring, batched**: a whole partition's row sets are re-scored
  in one vectorised 2-D pass (:func:`repro.stats.ks.ks_sorted_masked_batch`)
  instead of one 1-D pass per set.

* **Right side of a left join**: removing right rows is *not* a slice of
  the output (left rows whose matches all disappear resurface as
  unmatched), but the join's match structure — pairs plus per-left-row
  match counts, computed once — determines every reduced output exactly,
  so no re-join is ever run.

Whenever the (operation, measure, attribute) combination falls outside the
structures above — custom measures, OLAP operations — the backend
transparently delegates to an embedded :class:`ExactRerunBackend`, so it is
*always* safe to use.

The slicing and KS paths reproduce the exact backend bit-for-bit (they apply
the same numpy operations to the same value multisets); the group-by path
differs only by float summation order, which equivalence tests bound at
``1e-9``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...dataframe.column import Column
from ...dataframe.frame import DataFrame
from ...dataframe.groupby import composite_key_codes
from ...operators.operations import GroupBy, Join
from ...stats.dispersion import coefficient_of_variation
from ...stats.ks import (
    ks_columns,
    ks_from_value_counts,
    ks_from_value_counts_batch,
    ks_sorted_masked_batch,
    ks_two_sample_sorted,
)
from ..interestingness import DiversityMeasure, ExceptionalityMeasure
from ..partition import RowSet
from .base import ContributionBackend
from .exact import ExactRerunBackend

_UNSET = object()

#: Plan type name → cost class of :meth:`IncrementalBackend.plan_class`
#: (the batch planner's vocabulary; ``None`` plans are ``"exact"``).
_PLAN_CLASSES = {
    "_ConstantScorePlan": "constant",
    "_GroupByAggregatePlan": "groupby",
    "_SliceExceptionalityPlan": "slice",
    "_SliceDiversityPlan": "slice",
    "_LeftJoinRightPlan": "leftjoin",
}


class IncrementalBackend(ContributionBackend):
    """Derives all interventions of a step from shared precomputed structure.

    An optional ``context`` (a :class:`~repro.session.cache.SessionCache` or
    anything with the same ``groupby_structure`` / ``row_sources`` hooks)
    memoizes the per-step shared structure across steps of an exploration
    session, keyed by content fingerprints of the inputs.
    """

    name = "incremental"

    def __init__(self, step, measure, context=None,
                 ks_budget_bytes: Optional[int] = None) -> None:
        super().__init__(step, measure)
        self._context = context
        self._ks_budget_bytes = ks_budget_bytes
        self._fallback = ExactRerunBackend(step, measure)
        self._plans: Dict[Tuple[int, str], object] = {}
        self._row_sources = _UNSET
        self._groupby_structure = _UNSET
        self._left_join_structure = _UNSET

    # ------------------------------------------------------------------ public
    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        plan = self._plan_for(row_set.input_index, attribute)
        if plan is None:
            return self._fallback.reduced_score(row_set, attribute)
        return plan.reduced_score(row_set)

    def partition_contributions(self, partition, attribute: str,
                                baseline: float) -> List[float]:
        """Raw contributions of a whole partition, batched when possible.

        Plans exposing ``reduced_scores_batch`` (the KS-based exceptionality
        plan) re-score every set-of-rows of the partition in one vectorised
        2-D pass instead of one 1-D pass per set; other plans and the exact
        fallback keep the per-set walk of the base class.
        """
        plan = self._plan_for(partition.input_index, attribute)
        batch = getattr(plan, "reduced_scores_batch", None)
        if batch is not None and partition.sets:
            scores = batch(partition.sets)
            return [baseline - float(score) for score in scores]
        return super().partition_contributions(partition, attribute, baseline)

    # ------------------------------------------------------------------- plans
    def _plan_for(self, input_index: int, attribute: str):
        """The (cached) incremental strategy for one (input, attribute) pair.

        ``None`` means no incremental strategy applies and the exact rerun
        backend must be used.
        """
        key = (input_index, attribute)
        if key not in self._plans:
            self._plans[key] = self._build_plan(input_index, attribute)
        return self._plans[key]

    def _build_plan(self, input_index: int, attribute: str):
        measure_type = type(self.measure)
        operation = self.step.operation

        if (measure_type is DiversityMeasure and isinstance(operation, GroupBy)
                and input_index == 0):
            specs = operation.decomposable_aggregates()
            if specs is None:
                return None
            if attribute not in self.step.output:
                # Schema is data-independent: the attribute stays absent from
                # every reduced output, so the measure always scores 0.
                return _ConstantScorePlan(0.0)
            if attribute not in specs:
                # Grouping-key columns materialise as object arrays, which the
                # diversity measure scores 0 regardless of the intervention.
                return _ConstantScorePlan(0.0)
            structure = self._groupby()
            if structure is None:
                return None
            agg, source = specs[attribute]
            return _GroupByAggregatePlan(self.step, attribute, structure, agg, source)

        sources = self._sources()
        if sources is None or input_index >= len(sources) or sources[input_index] is None:
            if (measure_type in (ExceptionalityMeasure, DiversityMeasure)
                    and isinstance(operation, Join) and operation.how == "left"
                    and input_index == 1):
                # The right side of a left join is not a slice of the output
                # (removals resurrect unmatched left rows), but the match
                # structure determines the reduced output exactly.
                structure = self._left_join()
                if structure is not None:
                    return _left_join_right_plan(self.step, attribute, structure,
                                                 measure_type is DiversityMeasure)
            return None
        if measure_type is ExceptionalityMeasure:
            return _SliceExceptionalityPlan(self.step, attribute, input_index,
                                            sources[input_index],
                                            ks_budget_bytes=self._ks_budget_bytes)
        if measure_type is DiversityMeasure:
            return _SliceDiversityPlan(self.step, attribute, input_index,
                                       sources[input_index])
        return None

    def plan_class(self, input_index: int, attribute: str) -> str:
        """Cheap cost class of one ``(input, attribute)`` pair.

        Mirrors the branch structure of :meth:`_build_plan` without building
        a plan object, so the batch planner
        (:func:`~repro.core.backends.costs.plan_batches`) can price a whole
        grid before any heavy structure exists.  Returns one of
        ``"constant"`` / ``"groupby"`` / ``"slice"`` / ``"leftjoin"`` /
        ``"exact"`` — an already-built plan answers from its type, so the
        classification never disagrees with a plan the backend holds.
        """
        plan = self._plans.get((input_index, attribute), _UNSET)
        if plan is not _UNSET:
            if plan is None:
                return "exact"
            return _PLAN_CLASSES.get(type(plan).__name__, "slice")
        measure_type = type(self.measure)
        operation = self.step.operation
        if (measure_type is DiversityMeasure and isinstance(operation, GroupBy)
                and input_index == 0):
            if operation.decomposable_aggregates() is None:
                return "exact"
            if (attribute not in self.step.output
                    or attribute not in operation.decomposable_aggregates()):
                return "constant"
            return "groupby"
        sources = self._sources()
        if sources is None or input_index >= len(sources) or sources[input_index] is None:
            if (measure_type in (ExceptionalityMeasure, DiversityMeasure)
                    and isinstance(operation, Join) and operation.how == "left"
                    and input_index == 1):
                return "leftjoin"
            return "exact"
        if measure_type in (ExceptionalityMeasure, DiversityMeasure):
            return "slice"
        return "exact"

    def _sources(self) -> Optional[List[Optional[np.ndarray]]]:
        if self._row_sources is _UNSET:
            if self._context is not None:
                self._row_sources = self._context.row_sources(
                    self.step, lambda step: step.operation.row_mask(step.inputs)
                )
            else:
                self._row_sources = self.step.operation.row_mask(self.step.inputs)
        return self._row_sources

    def _groupby(self) -> Optional["_GroupByStructure"]:
        if self._groupby_structure is _UNSET:
            if self._context is not None:
                self._groupby_structure = self._context.groupby_structure(
                    self.step, _GroupByStructure.build
                )
            else:
                self._groupby_structure = _GroupByStructure.build(self.step)
        return self._groupby_structure

    def _left_join(self) -> Optional["_LeftJoinStructure"]:
        if self._left_join_structure is _UNSET:
            hook = getattr(self._context, "left_join_structure", None)
            if hook is not None:
                self._left_join_structure = hook(self.step, _LeftJoinStructure.build)
            else:
                self._left_join_structure = _LeftJoinStructure.build(self.step)
        return self._left_join_structure


class _ConstantScorePlan:
    """A reduced score that no intervention can change."""

    def __init__(self, score: float) -> None:
        self._score = score

    def reduced_score(self, row_set: RowSet) -> float:
        return self._score


def _removal_mask(row_set: RowSet, n_rows: int) -> np.ndarray:
    """Boolean mask over the intervened input marking the removed rows."""
    removed = np.zeros(n_rows, dtype=bool)
    indices = np.asarray(row_set.indices, dtype=np.int64)
    if indices.size:
        indices = indices[(indices >= 0) & (indices < n_rows)]
        removed[indices] = True
    return removed


def _removal_matrix(row_sets: Sequence[RowSet], n_rows: int) -> np.ndarray:
    """Stacked removal masks — row ``i`` marks the rows removed by set ``i``."""
    removed = np.zeros((len(row_sets), n_rows), dtype=bool)
    for position, row_set in enumerate(row_sets):
        indices = np.asarray(row_set.indices, dtype=np.int64)
        if indices.size:
            indices = indices[(indices >= 0) & (indices < n_rows)]
            removed[position, indices] = True
    return removed


# --------------------------------------------------------------------- group-by
class _GroupByStructure:
    """Shared group assignment of the input rows of a group-by step.

    Every row of the (pre-filtered) input gets a dense group id; rows that
    the group-by skips — failing the pre-filter, or holding a missing value
    in a key column — get id ``-1``.  The ids are derived from the cached
    per-column factorisations, so the whole structure costs one pass over
    the key columns.
    """

    def __init__(self, row_gid: np.ndarray, n_groups: int, group_sizes: np.ndarray) -> None:
        self.row_gid = row_gid
        self.n_groups = n_groups
        self.group_sizes = group_sizes

    @classmethod
    def build(cls, step) -> Optional["_GroupByStructure"]:
        operation = step.operation
        frame = step.inputs[0]
        n_rows = frame.num_rows
        if any(key not in frame for key in operation.keys):
            return None
        if operation.pre_filter is not None:
            # predicate_mask so stored (mmap) inputs get chunk pruning here too.
            active = frame.predicate_mask(operation.pre_filter)
        else:
            active = np.ones(n_rows, dtype=bool)
        combined, any_null = composite_key_codes(frame, operation.keys)
        valid = active & ~any_null
        row_gid = np.full(n_rows, -1, dtype=np.int64)
        n_groups = 0
        if valid.any():
            _, inverse = np.unique(combined[valid], return_inverse=True)
            row_gid[valid] = inverse
            n_groups = int(inverse.max()) + 1
        group_sizes = np.bincount(row_gid[valid], minlength=n_groups)
        return cls(row_gid, n_groups, group_sizes)


class _GroupByAggregatePlan:
    """Reduced diversity of one aggregate column via per-group partials.

    ``sum``/``count``/``mean`` subtract the removed rows' per-group partial
    count and sum from the precomputed totals; ``min``/``max`` rescan the
    surviving values with one vectorised scatter; ``median`` reads the
    middle order statistics of each group off one shared group-major value
    sort (dropping rows keeps the per-group runs sorted); ``std`` subtracts
    partial first and second moments of the values *centered on the full
    per-group means* (centering keeps the moment subtraction numerically
    stable where raw sums-of-squares would cancel catastrophically).  Groups
    whose rows are all removed vanish from the reduced output (as
    re-grouping would make them); surviving groups whose aggregated values
    are all missing yield NaN, which the coefficient of variation ignores —
    both matching the exact group-by.
    """

    def __init__(self, step, attribute: str, structure: _GroupByStructure, agg: str,
                 source_column: Optional[str]) -> None:
        self._structure = structure
        self._agg = agg
        self._n_rows = step.inputs[0].num_rows
        # Score of the untouched step, exactly as the diversity measure
        # computes it on the materialised output.  Returned verbatim for
        # no-op interventions (sets disjoint from the grouped rows, e.g.
        # fully outside the pre-filter) so their contribution is exactly
        # 0.0 — the same float the exact rerun produces — rather than
        # subtraction noise that could leak past the positive-contribution
        # filter.
        self._full_score = coefficient_of_variation(
            step.output[attribute].values.astype(float)
        )
        if agg != "count":
            values = step.inputs[0][source_column].values.astype(float)
            usable = (structure.row_gid >= 0) & ~np.isnan(values)
            self._value_rows = np.flatnonzero(usable)
            self._value_gids = structure.row_gid[self._value_rows]
            self._values = values[self._value_rows]
            self._count_g = np.bincount(self._value_gids, minlength=structure.n_groups)
            self._sum_g = np.bincount(self._value_gids, weights=self._values,
                                      minlength=structure.n_groups)
        if agg == "median":
            # Group-major, value-ascending order of the usable rows: group
            # ``g`` occupies one contiguous sorted run, and any row removal
            # leaves every run sorted.
            order = np.lexsort((self._values, self._value_gids))
            self._median_rows = self._value_rows[order]
            self._median_gids = self._value_gids[order]
            self._median_values = self._values[order]
        elif agg == "std":
            with np.errstate(invalid="ignore", divide="ignore"):
                means = self._sum_g / self._count_g
            means = np.where(self._count_g > 0, means, 0.0)
            self._centered = self._values - means[self._value_gids]
            self._centered_sq = self._centered * self._centered
            self._csum_g = np.bincount(self._value_gids, weights=self._centered,
                                       minlength=structure.n_groups)
            self._csumsq_g = np.bincount(self._value_gids, weights=self._centered_sq,
                                         minlength=structure.n_groups)

    def reduced_score(self, row_set: RowSet) -> float:
        structure = self._structure
        removed = _removal_mask(row_set, self._n_rows)
        removed_gids = structure.row_gid[removed & (structure.row_gid >= 0)]
        if removed_gids.size == 0:
            # No grouped row is removed: the reduced output IS the output.
            return self._full_score
        removed_sizes = np.bincount(removed_gids, minlength=structure.n_groups)
        reduced_sizes = structure.group_sizes - removed_sizes
        alive = reduced_sizes > 0

        if self._agg == "count":
            values = reduced_sizes[alive].astype(float)
            return coefficient_of_variation(values)

        if self._agg == "median":
            return self._reduced_median(removed, alive)

        removed_values = removed[self._value_rows]
        if self._agg == "std":
            return self._reduced_std(removed_values, alive)
        if self._agg in ("sum", "mean"):
            count_rem = np.bincount(self._value_gids[removed_values],
                                    minlength=structure.n_groups)
            sum_rem = np.bincount(self._value_gids[removed_values],
                                  weights=self._values[removed_values],
                                  minlength=structure.n_groups)
            counts = self._count_g - count_rem
            sums = self._sum_g - sum_rem
            with np.errstate(invalid="ignore", divide="ignore"):
                values = sums / counts if self._agg == "mean" else sums.astype(float)
            values = np.where(counts > 0, values, np.nan)
            return coefficient_of_variation(values[alive])

        # min / max: one scatter pass over the surviving values.  Empty groups
        # are detected by count, not by the scatter sentinel, so legitimate
        # +/-inf values survive as the exact rerun would produce them.
        kept = ~removed_values
        sentinel = np.inf if self._agg == "min" else -np.inf
        per_group = np.full(structure.n_groups, sentinel, dtype=float)
        scatter = np.minimum.at if self._agg == "min" else np.maximum.at
        scatter(per_group, self._value_gids[kept], self._values[kept])
        kept_counts = np.bincount(self._value_gids[kept], minlength=structure.n_groups)
        values = np.where(kept_counts > 0, per_group, np.nan)
        return coefficient_of_variation(values[alive])

    def _reduced_median(self, removed: np.ndarray, alive: np.ndarray) -> float:
        """Per-group medians of the surviving values via shared order statistics.

        ``self._median_values`` is group-major and value-ascending, so after
        masking out the removed rows group ``g`` holds the kept-value run
        ``[offset_g, offset_g + count_g)`` and its median is the mean of the
        (up to two) middle elements — the exact floats ``np.median`` produces
        on the re-grouped values.
        """
        n_groups = self._structure.n_groups
        kept = ~removed[self._median_rows]
        kept_values = self._median_values[kept]
        counts = np.bincount(self._median_gids[kept], minlength=n_groups)
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        top = max(kept_values.size - 1, 0)
        low = np.minimum(offsets + (counts - 1) // 2, top)
        high = np.minimum(offsets + counts // 2, top)
        if kept_values.size:
            medians = 0.5 * (kept_values[low] + kept_values[high])
        else:
            medians = np.zeros(n_groups)
        values = np.where(counts > 0, medians, np.nan)
        return coefficient_of_variation(values[alive])

    def _reduced_std(self, removed_values: np.ndarray, alive: np.ndarray) -> float:
        """Per-group sample std via subtraction of centered moment partials.

        With values centered on the full per-group mean, the surviving sum of
        squared deviations about the *surviving* mean is ``S2 − S1²/n`` (the
        shift identity), so no rescan is needed.  Tiny negative residues from
        float cancellation are clipped to zero before the square root.
        """
        n_groups = self._structure.n_groups
        count_rem = np.bincount(self._value_gids[removed_values], minlength=n_groups)
        csum_rem = np.bincount(self._value_gids[removed_values],
                               weights=self._centered[removed_values], minlength=n_groups)
        csumsq_rem = np.bincount(self._value_gids[removed_values],
                                 weights=self._centered_sq[removed_values],
                                 minlength=n_groups)
        counts = self._count_g - count_rem
        s1 = self._csum_g - csum_rem
        s2 = self._csumsq_g - csumsq_rem
        with np.errstate(invalid="ignore", divide="ignore"):
            variance = (s2 - s1 * s1 / counts) / (counts - 1)
        deviations = np.sqrt(np.maximum(variance, 0.0))
        # Matching the exact group-by: one usable value -> std 0.0, no usable
        # value (but surviving rows) -> NaN.
        values = np.where(counts > 1, deviations, np.where(counts == 1, 0.0, np.nan))
        return coefficient_of_variation(values[alive])


# ---------------------------------------------------------------------- slicing
def _keep_output_rows(sources: np.ndarray, removed: np.ndarray) -> np.ndarray:
    """Output rows that survive removing ``removed`` rows of the intervened input."""
    keep = np.ones(sources.size, dtype=bool)
    derived = sources >= 0
    keep[derived] = ~removed[sources[derived]]
    return keep


def _keep_output_rows_batch(sources: np.ndarray, removed: np.ndarray) -> np.ndarray:
    """Batched :func:`_keep_output_rows`: one surviving-output mask per removal row."""
    keep = np.ones((removed.shape[0], sources.size), dtype=bool)
    derived = sources >= 0
    keep[:, derived] = ~removed[:, sources[derived]]
    return keep


class _SliceDiversityPlan:
    """Reduced diversity of an output column of a row-sliceable operation."""

    def __init__(self, step, attribute: str, input_index: int, sources: np.ndarray) -> None:
        self._n_rows = step.inputs[input_index].num_rows
        self._sources = sources
        column = step.output[attribute] if attribute in step.output else None
        if column is None or not column.is_numeric:
            self._values = None
        else:
            self._values = column.values.astype(float)

    def reduced_score(self, row_set: RowSet) -> float:
        if self._values is None:
            return 0.0
        removed = _removal_mask(row_set, self._n_rows)
        keep = _keep_output_rows(self._sources, removed)
        return coefficient_of_variation(self._values[keep])


class _SliceExceptionalityPlan:
    """Reduced exceptionality (Eq. 1) of a row-sliceable operation's column.

    One :class:`_KSPair` per input dataframe containing the attribute; the
    reduced score is the maximum KS over the pairs (single input → plain
    Eq. 1, join → the input holding the attribute, union → the paper's max).
    """

    def __init__(self, step, attribute: str, input_index: int, sources: np.ndarray,
                 ks_budget_bytes: Optional[int] = None) -> None:
        self._n_rows = step.inputs[input_index].num_rows
        self._sources = sources
        self._pairs: List[_KSPair] = []
        if attribute in step.output:
            output_column = step.output[attribute]
            for position, frame in enumerate(step.inputs):
                if attribute in frame:
                    self._pairs.append(_KSPair(
                        frame[attribute], output_column,
                        before_is_reduced=(position == input_index),
                        ks_budget_bytes=ks_budget_bytes,
                    ))

    def reduced_score(self, row_set: RowSet) -> float:
        if not self._pairs:
            return 0.0
        removed = _removal_mask(row_set, self._n_rows)
        keep = _keep_output_rows(self._sources, removed)
        return max(pair.reduced_ks(removed, keep) for pair in self._pairs)

    def reduced_scores_batch(self, row_sets: Sequence[RowSet]) -> np.ndarray:
        """Reduced exceptionality of every set-of-rows in one 2-D KS pass."""
        if not self._pairs:
            return np.zeros(len(row_sets))
        removed = _removal_matrix(row_sets, self._n_rows)
        keep = _keep_output_rows_batch(self._sources, removed)
        scores = self._pairs[0].reduced_ks_batch(removed, keep)
        for pair in self._pairs[1:]:
            scores = np.maximum(scores, pair.reduced_ks_batch(removed, keep))
        return scores


class _KSPair:
    """KS distance between a (possibly reduced) input column and the sliced output.

    Three regimes, mirroring :func:`repro.stats.ks.ks_columns`:

    * numeric vs numeric — both argsorts cached, per-intervention sorted
      values obtained by masking the sorted order;
    * categorical vs categorical — cached factorisation codes, reduced value
      counts by subtraction, KS over the shared (full) support;
    * mixed — reduced :class:`Column` views fed to :func:`ks_columns`.
    """

    def __init__(self, before: Column, after: Column, before_is_reduced: bool,
                 ks_budget_bytes: Optional[int] = None) -> None:
        self._before = before
        self._after = after
        self._before_is_reduced = before_is_reduced
        self._ks_budget_bytes = ks_budget_bytes
        numeric_before = before.is_numeric or before.is_boolean
        numeric_after = after.is_numeric or after.is_boolean
        if numeric_before and numeric_after:
            self._mode = "numeric"
            self._sorted_before, self._before_rows = _sorted_clean(before)
            self._sorted_after, self._after_rows = _sorted_clean(after)
        elif before.is_categorical and after.is_categorical:
            self._mode = "categorical"
            codes_b, uniques_b = before.factorize()
            codes_o, uniques_o = after.factorize()
            self._codes_before, self._codes_after = codes_b, codes_o
            self._counts_before = np.bincount(codes_b[codes_b >= 0],
                                              minlength=len(uniques_b)).astype(float)
            self._counts_after = np.bincount(codes_o[codes_o >= 0],
                                             minlength=len(uniques_o)).astype(float)
            support = np.union1d(np.asarray(uniques_b, dtype=str),
                                 np.asarray(uniques_o, dtype=str))
            self._support_size = support.size
            self._positions_before = np.searchsorted(support, np.asarray(uniques_b, dtype=str))
            self._positions_after = np.searchsorted(support, np.asarray(uniques_o, dtype=str))
        else:
            self._mode = "mixed"

    def reduced_ks(self, removed: np.ndarray, keep_output: np.ndarray) -> float:
        if self._mode == "numeric":
            before = self._sorted_before
            if self._before_is_reduced:
                before = before[~removed[self._before_rows]]
            after = self._sorted_after[keep_output[self._after_rows]]
            return ks_two_sample_sorted(before, after)
        if self._mode == "categorical":
            counts_before = self._counts_before
            if self._before_is_reduced:
                removed_codes = self._codes_before[removed & (self._codes_before >= 0)]
                counts_before = counts_before - np.bincount(
                    removed_codes, minlength=counts_before.size
                )
            dropped_codes = self._codes_after[~keep_output & (self._codes_after >= 0)]
            counts_after = self._counts_after - np.bincount(
                dropped_codes, minlength=self._counts_after.size
            )
            return ks_from_value_counts(
                counts_before, self._positions_before,
                counts_after, self._positions_after, self._support_size,
            )
        before = self._before
        if self._before_is_reduced:
            before = Column._from_trusted(before.name, before.values[~removed], before.kind)
        after = Column._from_trusted(
            self._after.name, self._after.values[keep_output], self._after.kind
        )
        return ks_columns(before, after)

    def reduced_ks_batch(self, removed: np.ndarray, keep_output: np.ndarray) -> np.ndarray:
        """Batched :meth:`reduced_ks` over stacked removal / keep masks.

        The numeric and categorical regimes run as single vectorised 2-D
        passes (:func:`ks_sorted_masked_batch` /
        :func:`ks_from_value_counts_batch`) and reproduce the per-set path
        bit-for-bit: the per-set counts are the same integers and the
        divisions/cumsums apply the same float operations row-wise.  The
        mixed regime has no batched form and walks the sets.
        """
        n_sets = removed.shape[0]
        if self._mode == "numeric":
            keep_before = None
            if self._before_is_reduced:
                keep_before = ~removed[:, self._before_rows]
            keep_after = keep_output[:, self._after_rows]
            return ks_sorted_masked_batch(self._sorted_before, keep_before,
                                          self._sorted_after, keep_after,
                                          budget_bytes=self._ks_budget_bytes)
        if self._mode == "categorical":
            if self._before_is_reduced:
                counts_before = self._counts_before[None, :] - _scatter_counts(
                    removed, self._codes_before, self._counts_before.size
                )
            else:
                counts_before = np.broadcast_to(
                    self._counts_before, (n_sets, self._counts_before.size)
                )
            counts_after = self._counts_after[None, :] - _scatter_counts(
                ~keep_output, self._codes_after, self._counts_after.size
            )
            return ks_from_value_counts_batch(
                counts_before, self._positions_before,
                counts_after, self._positions_after, self._support_size,
                budget_bytes=self._ks_budget_bytes,
            )
        return np.asarray([
            self.reduced_ks(removed[position], keep_output[position])
            for position in range(n_sets)
        ])


def _scatter_counts(selected: np.ndarray, codes: np.ndarray, size: int) -> np.ndarray:
    """Per-set value counts of the selected rows of a factorised column.

    ``selected`` is an ``(n_sets, n_rows)`` boolean matrix; rows with code
    ``< 0`` (missing values) never count.  One flat ``bincount`` over
    ``set * size + code`` replaces a per-set bincount loop.
    """
    n_sets = selected.shape[0]
    valid = codes >= 0
    valid_codes = codes[valid]
    set_index, position_index = np.nonzero(selected[:, valid])
    flat = set_index * size + valid_codes[position_index]
    return np.bincount(flat, minlength=n_sets * size).reshape(n_sets, size).astype(float)


# -------------------------------------------------------------------- left join
class _LeftJoinStructure:
    """Match structure of a left join, shared by all right-side interventions.

    ``left_idx`` / ``right_idx`` are the input rows of every matched output
    pair (in output order), ``unmatched_left`` the sorted left rows the join
    appends after the pairs, and ``match_counts`` how many pairs each left
    row participates in — enough to derive, for any removal of right rows,
    exactly which pairs survive and which left rows resurface as unmatched.
    """

    def __init__(self, left_idx: np.ndarray, right_idx: np.ndarray,
                 unmatched_left: np.ndarray, n_left: int) -> None:
        self.left_idx = left_idx
        self.right_idx = right_idx
        self.unmatched_left = unmatched_left
        self.n_left = n_left
        self.match_counts = np.bincount(left_idx, minlength=n_left)

    @classmethod
    def build(cls, step) -> Optional["_LeftJoinStructure"]:
        operation = step.operation
        if any(key not in frame for frame in step.inputs for key in operation.on):
            return None
        left_idx, right_idx, unmatched_left = operation.match_rows(step.inputs)
        return cls(left_idx, right_idx, unmatched_left, step.inputs[0].num_rows)


def _left_join_right_plan(step, attribute: str, structure: _LeftJoinStructure,
                          diversity: bool) -> Optional["_LeftJoinRightPlan"]:
    """Build the right-side plan, or ``None`` when the attribute's source
    column in the output cannot be resolved (fall back to exact rerun)."""
    plan = _LeftJoinRightPlan(step, attribute, structure, diversity)
    return plan if plan.supported else None


class _LeftJoinRightPlan:
    """Reduced score of a left-join step under right-side row removals.

    Removing a set of right rows removes their matched pairs from the
    output and *resurrects* every left row whose matches are all gone as an
    unmatched row (left values, null right values) — so the reduced output
    is not a slice of the materialised output, but it is fully determined
    by the match structure:

    * surviving pairs — mask the pair arrays with ``~removed[right_idx]``
      (subsequence order equals the rerun's pair order, because removing
      rows preserves the stable sort order of the survivors);
    * unmatched tail — the original unmatched left rows merged (sorted)
      with the newly resurfaced ones, exactly as the rerun would emit them.

    The reduced output column for the scored attribute is assembled from
    these pieces with the same concatenation the join materialisation uses
    (bit-identical values, same order), then scored with the same measure
    primitives — KS against the untouched left column and/or the reduced
    right column for exceptionality, coefficient of variation for
    diversity.
    """

    def __init__(self, step, attribute: str, structure: _LeftJoinStructure,
                 diversity: bool) -> None:
        left, right = step.inputs[0], step.inputs[1]
        operation = step.operation
        self._attribute = attribute
        self._structure = structure
        self._diversity = diversity
        self._n_right = right.num_rows
        self.supported = True
        self._out_kind = None
        self._pair_values: Optional[np.ndarray] = None
        self._left_tail_values: Optional[np.ndarray] = None
        self._filler_numeric = False
        self._before_left: Optional[Column] = None
        self._before_right: Optional[Column] = None

        if attribute in step.output:
            # Which input column materialises this output column, mirroring
            # the join's collision-suffix naming.
            keys = list(operation.on)
            collisions = (set(left.column_names) & set(right.column_names)) - set(keys)
            source = None
            for name in left.column_names:
                out_name = name + "_left" if name in collisions else name
                if out_name == attribute:
                    source = ("left", name)
                    break
            if source is None:
                for name in right.column_names:
                    if name in keys:
                        continue
                    out_name = name + "_right" if name in collisions else name
                    if out_name == attribute:
                        source = ("right", name)
                        break
            if source is None:
                self.supported = False
                return
            side, src_name = source
            self._out_kind = step.output[attribute].kind
            if side == "left":
                src = left[src_name]
                self._pair_values = src.values[structure.left_idx]
                self._left_tail_values = src.values
            else:
                src = right[src_name]
                self._pair_values = src.values[structure.right_idx]
                self._filler_numeric = src.is_numeric

        if not diversity:
            # The exceptionality measure compares the reduced output against
            # every *input* column named like the attribute: the untouched
            # left column, and/or the right column minus the removed rows.
            if attribute in left:
                self._before_left = left[attribute]
            if attribute in right:
                self._before_right = right[attribute]

    # ------------------------------------------------------------------ scoring
    def reduced_score(self, row_set: RowSet) -> float:
        structure = self._structure
        removed = _removal_mask(row_set, self._n_right)
        keep_pairs = ~removed[structure.right_idx]
        surviving = np.bincount(structure.left_idx[keep_pairs],
                                minlength=structure.n_left)
        newly_unmatched = np.flatnonzero(
            (structure.match_counts > 0) & (surviving == 0)
        )
        if newly_unmatched.size:
            unmatched = np.sort(np.concatenate([structure.unmatched_left,
                                                newly_unmatched]))
        else:
            unmatched = structure.unmatched_left

        if self._diversity:
            if self._out_kind != "numeric":
                # Absent or non-numeric output column: diversity scores 0
                # regardless of the intervention, as the measure would.
                return 0.0
            values = self._reduced_output_values(keep_pairs, unmatched)
            return coefficient_of_variation(values.astype(float))

        if self._pair_values is None:
            return 0.0  # attribute absent from the (schema-stable) output
        after = Column._from_trusted(
            self._attribute, self._reduced_output_values(keep_pairs, unmatched),
            self._out_kind,
        )
        scores = []
        if self._before_left is not None:
            scores.append(ks_columns(self._before_left, after))
        if self._before_right is not None:
            before = Column._from_trusted(
                self._attribute, self._before_right.values[~removed],
                self._before_right.kind,
            )
            scores.append(ks_columns(before, after))
        return max(scores) if scores else 0.0

    def _reduced_output_values(self, keep_pairs: np.ndarray,
                               unmatched: np.ndarray) -> np.ndarray:
        """The reduced output column's values, in the rerun's exact order."""
        pair_values = self._pair_values[keep_pairs]
        if unmatched.size == 0:
            # The materialisation concatenates the unmatched tail only when
            # it is non-empty; mirroring that keeps dtype promotion (e.g.
            # int64 pairs + NaN filler -> float64) identical.
            return pair_values
        if self._left_tail_values is not None:
            tail = self._left_tail_values[unmatched]
        elif self._filler_numeric:
            tail = np.full(unmatched.size, np.nan, dtype=float)
        else:
            tail = np.asarray([None] * unmatched.size, dtype=object)
        return np.concatenate([pair_values, tail])


def _sorted_clean(column: Column) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted non-NaN float values of a column plus their source row indices.

    Uses the column's cached argsort; NaNs sort last, so the clean prefix is
    a slice.  The row-index array lets callers translate a row-level keep
    mask into a mask over the sorted values.
    """
    order = column.sorted_order()
    values = column.values.astype(float)[order]
    n_clean = int((~np.isnan(values)).sum())
    return values[:n_clean], order[:n_clean]


