"""The batched, structure-exploiting intervention backend.

Instead of re-running the operation per set-of-rows (the
:class:`~repro.core.backends.exact.ExactRerunBackend` semantics), this
backend derives every reduced interestingness score from structure that is
precomputed **once per (step, attribute)** and shared across all
interventions:

* **Group-by with decomposable aggregates** (sum / count / mean / min /
  max): one pass over the input assigns every row a group id; per-group
  counts and sums are precomputed, and each intervention's reduced
  aggregates follow by subtracting the removed rows' per-group partials
  (min/max use a per-group scatter over the surviving rows) — no
  re-grouping, no per-group python loop.
* **Filter / inner join / union / project**: the operation's row-level
  provenance (:meth:`~repro.operators.operations.Operation.row_mask`) is
  computed once; every intervention's reduced output is a boolean slice of
  the already-materialised output — the operation is never re-run.
* **KS re-scoring**: the exceptionality measure needs the reduced input and
  output columns *sorted*; both argsorts are computed once (and cached on
  the :class:`~repro.dataframe.column.Column`), and each intervention's
  sorted values are obtained by masking the sorted order — dropping rows
  from a sorted array leaves it sorted.  Categorical columns go through
  cached factorisation codes and count subtraction instead.

Whenever the (operation, measure, attribute) combination falls outside the
structures above — non-decomposable aggregates such as ``median``/``std``,
custom measures, removals from the right side of a left join, OLAP
operations — the backend transparently delegates to an embedded
:class:`ExactRerunBackend`, so it is *always* safe to use.

The slicing and KS paths reproduce the exact backend bit-for-bit (they apply
the same numpy operations to the same value multisets); the group-by path
differs only by float summation order, which equivalence tests bound at
``1e-9``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...dataframe.column import Column
from ...dataframe.frame import DataFrame
from ...dataframe.groupby import composite_key_codes
from ...operators.operations import GroupBy
from ...stats.dispersion import coefficient_of_variation
from ...stats.ks import ks_columns, ks_from_value_counts, ks_two_sample_sorted
from ..interestingness import DiversityMeasure, ExceptionalityMeasure
from ..partition import RowSet
from .base import ContributionBackend
from .exact import ExactRerunBackend

_UNSET = object()


class IncrementalBackend(ContributionBackend):
    """Derives all interventions of a step from shared precomputed structure."""

    name = "incremental"

    def __init__(self, step, measure) -> None:
        super().__init__(step, measure)
        self._fallback = ExactRerunBackend(step, measure)
        self._plans: Dict[Tuple[int, str], object] = {}
        self._row_sources = _UNSET
        self._groupby_structure = _UNSET

    # ------------------------------------------------------------------ public
    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        plan = self._plan_for(row_set.input_index, attribute)
        if plan is None:
            return self._fallback.reduced_score(row_set, attribute)
        return plan.reduced_score(row_set)

    # ------------------------------------------------------------------- plans
    def _plan_for(self, input_index: int, attribute: str):
        """The (cached) incremental strategy for one (input, attribute) pair.

        ``None`` means no incremental strategy applies and the exact rerun
        backend must be used.
        """
        key = (input_index, attribute)
        if key not in self._plans:
            self._plans[key] = self._build_plan(input_index, attribute)
        return self._plans[key]

    def _build_plan(self, input_index: int, attribute: str):
        measure_type = type(self.measure)
        operation = self.step.operation

        if (measure_type is DiversityMeasure and isinstance(operation, GroupBy)
                and input_index == 0):
            specs = operation.decomposable_aggregates()
            if specs is None:
                return None
            if attribute not in self.step.output:
                # Schema is data-independent: the attribute stays absent from
                # every reduced output, so the measure always scores 0.
                return _ConstantScorePlan(0.0)
            if attribute not in specs:
                # Grouping-key columns materialise as object arrays, which the
                # diversity measure scores 0 regardless of the intervention.
                return _ConstantScorePlan(0.0)
            structure = self._groupby()
            if structure is None:
                return None
            agg, source = specs[attribute]
            return _GroupByAggregatePlan(self.step, attribute, structure, agg, source)

        sources = self._sources()
        if sources is None or input_index >= len(sources) or sources[input_index] is None:
            return None
        if measure_type is ExceptionalityMeasure:
            return _SliceExceptionalityPlan(self.step, attribute, input_index,
                                            sources[input_index])
        if measure_type is DiversityMeasure:
            return _SliceDiversityPlan(self.step, attribute, input_index,
                                       sources[input_index])
        return None

    def _sources(self) -> Optional[List[Optional[np.ndarray]]]:
        if self._row_sources is _UNSET:
            self._row_sources = self.step.operation.row_mask(self.step.inputs)
        return self._row_sources

    def _groupby(self) -> Optional["_GroupByStructure"]:
        if self._groupby_structure is _UNSET:
            self._groupby_structure = _GroupByStructure.build(self.step)
        return self._groupby_structure


class _ConstantScorePlan:
    """A reduced score that no intervention can change."""

    def __init__(self, score: float) -> None:
        self._score = score

    def reduced_score(self, row_set: RowSet) -> float:
        return self._score


def _removal_mask(row_set: RowSet, n_rows: int) -> np.ndarray:
    """Boolean mask over the intervened input marking the removed rows."""
    removed = np.zeros(n_rows, dtype=bool)
    indices = np.asarray(row_set.indices, dtype=np.int64)
    if indices.size:
        indices = indices[(indices >= 0) & (indices < n_rows)]
        removed[indices] = True
    return removed


# --------------------------------------------------------------------- group-by
class _GroupByStructure:
    """Shared group assignment of the input rows of a group-by step.

    Every row of the (pre-filtered) input gets a dense group id; rows that
    the group-by skips — failing the pre-filter, or holding a missing value
    in a key column — get id ``-1``.  The ids are derived from the cached
    per-column factorisations, so the whole structure costs one pass over
    the key columns.
    """

    def __init__(self, row_gid: np.ndarray, n_groups: int, group_sizes: np.ndarray) -> None:
        self.row_gid = row_gid
        self.n_groups = n_groups
        self.group_sizes = group_sizes

    @classmethod
    def build(cls, step) -> Optional["_GroupByStructure"]:
        operation = step.operation
        frame = step.inputs[0]
        n_rows = frame.num_rows
        if any(key not in frame for key in operation.keys):
            return None
        if operation.pre_filter is not None:
            active = np.asarray(operation.pre_filter.mask(frame), dtype=bool)
        else:
            active = np.ones(n_rows, dtype=bool)
        combined, any_null = composite_key_codes(frame, operation.keys)
        valid = active & ~any_null
        row_gid = np.full(n_rows, -1, dtype=np.int64)
        n_groups = 0
        if valid.any():
            _, inverse = np.unique(combined[valid], return_inverse=True)
            row_gid[valid] = inverse
            n_groups = int(inverse.max()) + 1
        group_sizes = np.bincount(row_gid[valid], minlength=n_groups)
        return cls(row_gid, n_groups, group_sizes)


class _GroupByAggregatePlan:
    """Reduced diversity of one aggregate column via per-group partials.

    ``sum``/``count``/``mean`` subtract the removed rows' per-group partial
    count and sum from the precomputed totals; ``min``/``max`` rescan the
    surviving values with one vectorised scatter.  Groups whose rows are all
    removed vanish from the reduced output (as re-grouping would make them);
    surviving groups whose aggregated values are all missing yield NaN, which
    the coefficient of variation ignores — both matching the exact group-by.
    """

    def __init__(self, step, attribute: str, structure: _GroupByStructure, agg: str,
                 source_column: Optional[str]) -> None:
        self._structure = structure
        self._agg = agg
        self._n_rows = step.inputs[0].num_rows
        # Score of the untouched step, exactly as the diversity measure
        # computes it on the materialised output.  Returned verbatim for
        # no-op interventions (sets disjoint from the grouped rows, e.g.
        # fully outside the pre-filter) so their contribution is exactly
        # 0.0 — the same float the exact rerun produces — rather than
        # subtraction noise that could leak past the positive-contribution
        # filter.
        self._full_score = coefficient_of_variation(
            step.output[attribute].values.astype(float)
        )
        if agg != "count":
            values = step.inputs[0][source_column].values.astype(float)
            usable = (structure.row_gid >= 0) & ~np.isnan(values)
            self._value_rows = np.flatnonzero(usable)
            self._value_gids = structure.row_gid[self._value_rows]
            self._values = values[self._value_rows]
            self._count_g = np.bincount(self._value_gids, minlength=structure.n_groups)
            self._sum_g = np.bincount(self._value_gids, weights=self._values,
                                      minlength=structure.n_groups)

    def reduced_score(self, row_set: RowSet) -> float:
        structure = self._structure
        removed = _removal_mask(row_set, self._n_rows)
        removed_gids = structure.row_gid[removed & (structure.row_gid >= 0)]
        if removed_gids.size == 0:
            # No grouped row is removed: the reduced output IS the output.
            return self._full_score
        removed_sizes = np.bincount(removed_gids, minlength=structure.n_groups)
        reduced_sizes = structure.group_sizes - removed_sizes
        alive = reduced_sizes > 0

        if self._agg == "count":
            values = reduced_sizes[alive].astype(float)
            return coefficient_of_variation(values)

        removed_values = removed[self._value_rows]
        if self._agg in ("sum", "mean"):
            count_rem = np.bincount(self._value_gids[removed_values],
                                    minlength=structure.n_groups)
            sum_rem = np.bincount(self._value_gids[removed_values],
                                  weights=self._values[removed_values],
                                  minlength=structure.n_groups)
            counts = self._count_g - count_rem
            sums = self._sum_g - sum_rem
            with np.errstate(invalid="ignore", divide="ignore"):
                values = sums / counts if self._agg == "mean" else sums.astype(float)
            values = np.where(counts > 0, values, np.nan)
            return coefficient_of_variation(values[alive])

        # min / max: one scatter pass over the surviving values.  Empty groups
        # are detected by count, not by the scatter sentinel, so legitimate
        # +/-inf values survive as the exact rerun would produce them.
        kept = ~removed_values
        sentinel = np.inf if self._agg == "min" else -np.inf
        per_group = np.full(structure.n_groups, sentinel, dtype=float)
        scatter = np.minimum.at if self._agg == "min" else np.maximum.at
        scatter(per_group, self._value_gids[kept], self._values[kept])
        kept_counts = np.bincount(self._value_gids[kept], minlength=structure.n_groups)
        values = np.where(kept_counts > 0, per_group, np.nan)
        return coefficient_of_variation(values[alive])


# ---------------------------------------------------------------------- slicing
def _keep_output_rows(sources: np.ndarray, removed: np.ndarray) -> np.ndarray:
    """Output rows that survive removing ``removed`` rows of the intervened input."""
    keep = np.ones(sources.size, dtype=bool)
    derived = sources >= 0
    keep[derived] = ~removed[sources[derived]]
    return keep


class _SliceDiversityPlan:
    """Reduced diversity of an output column of a row-sliceable operation."""

    def __init__(self, step, attribute: str, input_index: int, sources: np.ndarray) -> None:
        self._n_rows = step.inputs[input_index].num_rows
        self._sources = sources
        column = step.output[attribute] if attribute in step.output else None
        if column is None or not column.is_numeric:
            self._values = None
        else:
            self._values = column.values.astype(float)

    def reduced_score(self, row_set: RowSet) -> float:
        if self._values is None:
            return 0.0
        removed = _removal_mask(row_set, self._n_rows)
        keep = _keep_output_rows(self._sources, removed)
        return coefficient_of_variation(self._values[keep])


class _SliceExceptionalityPlan:
    """Reduced exceptionality (Eq. 1) of a row-sliceable operation's column.

    One :class:`_KSPair` per input dataframe containing the attribute; the
    reduced score is the maximum KS over the pairs (single input → plain
    Eq. 1, join → the input holding the attribute, union → the paper's max).
    """

    def __init__(self, step, attribute: str, input_index: int, sources: np.ndarray) -> None:
        self._n_rows = step.inputs[input_index].num_rows
        self._sources = sources
        self._pairs: List[_KSPair] = []
        if attribute in step.output:
            output_column = step.output[attribute]
            for position, frame in enumerate(step.inputs):
                if attribute in frame:
                    self._pairs.append(_KSPair(
                        frame[attribute], output_column,
                        before_is_reduced=(position == input_index),
                    ))

    def reduced_score(self, row_set: RowSet) -> float:
        if not self._pairs:
            return 0.0
        removed = _removal_mask(row_set, self._n_rows)
        keep = _keep_output_rows(self._sources, removed)
        return max(pair.reduced_ks(removed, keep) for pair in self._pairs)


class _KSPair:
    """KS distance between a (possibly reduced) input column and the sliced output.

    Three regimes, mirroring :func:`repro.stats.ks.ks_columns`:

    * numeric vs numeric — both argsorts cached, per-intervention sorted
      values obtained by masking the sorted order;
    * categorical vs categorical — cached factorisation codes, reduced value
      counts by subtraction, KS over the shared (full) support;
    * mixed — reduced :class:`Column` views fed to :func:`ks_columns`.
    """

    def __init__(self, before: Column, after: Column, before_is_reduced: bool) -> None:
        self._before = before
        self._after = after
        self._before_is_reduced = before_is_reduced
        numeric_before = before.is_numeric or before.is_boolean
        numeric_after = after.is_numeric or after.is_boolean
        if numeric_before and numeric_after:
            self._mode = "numeric"
            self._sorted_before, self._before_rows = _sorted_clean(before)
            self._sorted_after, self._after_rows = _sorted_clean(after)
        elif before.is_categorical and after.is_categorical:
            self._mode = "categorical"
            codes_b, uniques_b = before.factorize()
            codes_o, uniques_o = after.factorize()
            self._codes_before, self._codes_after = codes_b, codes_o
            self._counts_before = np.bincount(codes_b[codes_b >= 0],
                                              minlength=len(uniques_b)).astype(float)
            self._counts_after = np.bincount(codes_o[codes_o >= 0],
                                             minlength=len(uniques_o)).astype(float)
            support = np.union1d(np.asarray(uniques_b, dtype=str),
                                 np.asarray(uniques_o, dtype=str))
            self._support_size = support.size
            self._positions_before = np.searchsorted(support, np.asarray(uniques_b, dtype=str))
            self._positions_after = np.searchsorted(support, np.asarray(uniques_o, dtype=str))
        else:
            self._mode = "mixed"

    def reduced_ks(self, removed: np.ndarray, keep_output: np.ndarray) -> float:
        if self._mode == "numeric":
            before = self._sorted_before
            if self._before_is_reduced:
                before = before[~removed[self._before_rows]]
            after = self._sorted_after[keep_output[self._after_rows]]
            return ks_two_sample_sorted(before, after)
        if self._mode == "categorical":
            counts_before = self._counts_before
            if self._before_is_reduced:
                removed_codes = self._codes_before[removed & (self._codes_before >= 0)]
                counts_before = counts_before - np.bincount(
                    removed_codes, minlength=counts_before.size
                )
            dropped_codes = self._codes_after[~keep_output & (self._codes_after >= 0)]
            counts_after = self._counts_after - np.bincount(
                dropped_codes, minlength=self._counts_after.size
            )
            return ks_from_value_counts(
                counts_before, self._positions_before,
                counts_after, self._positions_after, self._support_size,
            )
        before = self._before
        if self._before_is_reduced:
            before = Column._from_trusted(before.name, before.values[~removed], before.kind)
        after = Column._from_trusted(
            self._after.name, self._after.values[keep_output], self._after.kind
        )
        return ks_columns(before, after)


def _sorted_clean(column: Column) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted non-NaN float values of a column plus their source row indices.

    Uses the column's cached argsort; NaNs sort last, so the clean prefix is
    a slice.  The row-index array lets callers translate a row-level keep
    mask into a mask over the sorted values.
    """
    order = column.sorted_order()
    values = column.values.astype(float)[order]
    n_clean = int((~np.isnan(values)).sum())
    return values[:n_clean], order[:n_clean]


