"""The intervention-execution backend protocol.

FEDEX's contribution phase (Definition 3.3) asks one question over and over:
*what would the interestingness of column ``A`` be if the set-of-rows ``R``
were removed from the input?*  A :class:`ContributionBackend` answers that
question — it separates **what** the contribution phase computes (the reduced
interestingness score ``I_A(D_in − R, q, d'_out)``) from **how** it is
computed:

* :class:`~repro.core.backends.exact.ExactRerunBackend` removes the rows,
  re-runs the operation, and re-scores — the literal reading of the paper,
  kept as the reference oracle;
* :class:`~repro.core.backends.incremental.IncrementalBackend` exploits the
  operation's structure (per-group partial aggregates, row-provenance
  slicing, shared argsorts, batched KS) to derive every intervention of a
  partition without re-running anything;
* :class:`~repro.core.backends.parallel.ParallelBackend` shards the
  partition × attribute grid across a thread pool, delegating each shard to
  an embedded incremental backend;
* :class:`~repro.core.backends.process.ProcessBackend` shards the same grid
  across a *process* pool for the Python-heavy mixes the GIL serializes,
  shipping inputs as mmap frame descriptors instead of pickled data.

Backends are stateful per step: they are constructed once per
``(step, measure)`` pair and may precompute and cache whatever sharable
structure they like across row sets, attributes, and partitions.
"""

from __future__ import annotations

import inspect
import math
import os
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from ...errors import ExplanationError
from ...operators.step import ExploratoryStep
from ..interestingness import InterestingnessMeasure
from ..partition import RowPartition, RowSet


#: Backend used when the caller does not pick one explicitly.
DEFAULT_BACKEND = "incremental"

#: Batches per worker targeted by automatic shard batching: enough slack for
#: the pool to load-balance uneven shards, few enough that submit/result
#: round-trips stop dominating wide grids of small partitions.
DEFAULT_OVERSUBSCRIPTION = 4


def resolve_shard_batch(shard_batch: Optional[int], grid_size: int,
                        workers: int,
                        oversubscription: int = DEFAULT_OVERSUBSCRIPTION) -> int:
    """The effective shard-batch size for one contribution grid.

    An explicit ``shard_batch`` (config knob / prefetch hint) wins; ``None``
    consults the ``REPRO_SHARD_BATCH`` environment variable (CI sweeps), and
    failing that falls back to the automatic policy
    ``ceil(grid_size / (workers × oversubscription))`` — every worker gets
    roughly ``oversubscription`` batches, so one pickle/submit/result round
    carries many (partition, attribute) pairs without starving the pool of
    load-balancing slack.  Always at least 1.
    """
    if shard_batch is None:
        env = os.environ.get("REPRO_SHARD_BATCH")
        if env:
            try:
                shard_batch = int(env)
            except ValueError:
                raise ExplanationError(
                    f"REPRO_SHARD_BATCH={env!r} is not an integer"
                ) from None
    if shard_batch is not None:
        return max(1, int(shard_batch))
    if grid_size <= 0:
        return 1
    return max(1, math.ceil(grid_size / max(workers * oversubscription, 1)))


def resolve_flag(value: Optional[bool], env_name: str, default: bool) -> bool:
    """Resolve a tri-state backend flag: explicit value > environment > default.

    The scheduling knobs (``adaptive_batch`` / ``steal`` /
    ``shared_structures``) follow the ``shard_batch`` precedence: a config
    value set either way wins, ``None`` consults the environment variable
    (CI sweeps), and an unset environment falls back to the built-in
    default.  Unparseable environment values raise — a typoed CI variable
    must not silently pick a policy.
    """
    if value is not None:
        return bool(value)
    env = os.environ.get(env_name)
    if env is None or env == "":
        return default
    lowered = env.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ExplanationError(f"{env_name}={env!r} is not a boolean flag")


def iter_shard_batches(grid: Sequence[Tuple[RowPartition, str]],
                       batch_size: int) -> Iterator[Sequence[Tuple[RowPartition, str]]]:
    """Consecutive ``batch_size``-sized slices of the grid, in grid order.

    Order is load-bearing for determinism bookkeeping: every pooled backend
    keys results by (partition identity, attribute), and slicing — rather
    than striding — keeps each batch's pairs adjacent, so a failed batch
    retried serially walks the pairs in exactly the order the engine will
    request them.
    """
    for start in range(0, len(grid), batch_size):
        yield grid[start:start + batch_size]


class ContributionBackend(ABC):
    """Computes reduced interestingness scores for row-set interventions.

    Subclasses implement :meth:`reduced_score`; the contribution itself is
    always ``baseline − reduced_score`` (Definition 3.3), with the baseline
    owned and cached by the calling
    :class:`~repro.core.contribution.ContributionCalculator`.
    """

    #: Registry name of the backend (the value of ``FedexConfig.backend``).
    name: str = "backend"

    def __init__(self, step: ExploratoryStep, measure: InterestingnessMeasure) -> None:
        self.step = step
        self.measure = measure

    @abstractmethod
    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        """``I_A(D_in − R, q, d'_out)`` — interestingness after removing ``row_set``."""

    def contribution(self, row_set: RowSet, attribute: str, baseline: float) -> float:
        """``C(R, A, Q) = I_A(Q) − I_A(D_in − R, q, d'_out)`` for one set-of-rows."""
        return baseline - self.reduced_score(row_set, attribute)

    def partition_contributions(self, partition: RowPartition, attribute: str,
                                baseline: float) -> List[float]:
        """Raw contributions of every candidate set-of-rows of a partition.

        The default walks the sets one by one; backends that can batch a whole
        partition (sharing precomputed structure between its sets) override
        this.
        """
        return [self.contribution(row_set, attribute, baseline) for row_set in partition.sets]

    def prefetch(self, grid: Sequence[Tuple[RowPartition, str]],
                 baselines: Dict[str, float],
                 batch_hint: Optional[int] = None) -> None:
        """Announce the full partition × attribute grid of the contribution phase.

        The engine calls this once, before asking for any
        :meth:`partition_contributions`, with every ``(partition, attribute)``
        pair it is about to request and the per-attribute baselines.  The
        default is a no-op; backends that shard work across an executor (the
        parallel and process backends) override it to start computing the
        whole grid concurrently so the subsequent per-pair calls become waits
        on already-running work.

        ``batch_hint`` is the caller's shard-batch preference (the value of
        ``FedexConfig.shard_batch``): how many grid pairs one submitted job
        should carry.  ``None`` lets the backend decide (see
        :func:`resolve_shard_batch`); serial backends ignore it entirely.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.step.operation.describe()})"


def available_backends() -> Dict[str, Type[ContributionBackend]]:
    """Mapping from backend name to backend class."""
    from .exact import ExactRerunBackend
    from .incremental import IncrementalBackend
    from .parallel import ParallelBackend
    from .process import ProcessBackend

    return {
        ExactRerunBackend.name: ExactRerunBackend,
        IncrementalBackend.name: IncrementalBackend,
        ParallelBackend.name: ParallelBackend,
        ProcessBackend.name: ProcessBackend,
    }


def resolve_backend_class(name: str) -> Type[ContributionBackend]:
    """Look a backend class up by registered name, with a helpful error."""
    registry = available_backends()
    if name not in registry:
        raise ExplanationError(
            f"unknown contribution backend {name!r}; available: {sorted(registry)}"
        )
    return registry[name]


def make_backend(backend: Union[str, ContributionBackend, Type[ContributionBackend]],
                 step: ExploratoryStep,
                 measure: InterestingnessMeasure,
                 options: Optional[Dict[str, object]] = None) -> ContributionBackend:
    """Resolve a backend specification into a backend instance for one step.

    ``backend`` may be a registered name (``"exact"`` / ``"incremental"`` /
    ``"parallel"``), a :class:`ContributionBackend` subclass, or an
    already-constructed instance (returned as-is — useful for tests that want
    to inspect backend state).  ``options`` carries optional keyword
    arguments (``workers``, ``context``, ...); each is forwarded only to
    backends whose constructor accepts a parameter of that name, so callers
    can pass one option dict regardless of the backend chosen.
    """
    if isinstance(backend, ContributionBackend):
        return backend
    if isinstance(backend, type) and issubclass(backend, ContributionBackend):
        cls = backend
    else:
        cls = resolve_backend_class(backend)
    return cls(step, measure, **_supported_options(cls, options))


def _supported_options(cls: Type[ContributionBackend],
                       options: Optional[Dict[str, object]]) -> Dict[str, object]:
    """The subset of ``options`` the backend class constructor understands."""
    if not options:
        return {}
    parameters = inspect.signature(cls.__init__).parameters
    return {name: value for name, value in options.items()
            if name in parameters and value is not None}
