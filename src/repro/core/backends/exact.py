"""The rerun-per-row-set backend — the paper's literal intervention semantics.

For every set-of-rows the backend removes the rows from the input, re-applies
the step's operation to the reduced input(s), and re-scores the
interestingness of the requested attribute on the reduced materialisation.
This is ``C(R, A, Q)`` exactly as Definition 3.3 states it, which makes this
backend the reference oracle the incremental backend is validated against.

The one optimisation retained here is memoisation: the reduced inputs/output
pair is cached per set-of-rows identity, because every output attribute
scored against the same intervention reuses the same reduced materialisation.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ...dataframe.frame import DataFrame
from ..partition import RowSet
from .base import ContributionBackend


class ExactRerunBackend(ContributionBackend):
    """Re-runs the operation from scratch for every intervention."""

    name = "exact"

    def __init__(self, step, measure) -> None:
        super().__init__(step, measure)
        self._reduced_cache: Dict[Tuple, Tuple] = {}

    def reduced_score(self, row_set: RowSet, attribute: str) -> float:
        reduced_inputs, reduced_output = self.reduced_step(row_set)
        return self.measure.score(reduced_inputs, self.step, reduced_output, attribute)

    def reduced_step(self, row_set: RowSet) -> Tuple[Sequence[DataFrame], DataFrame]:
        """Inputs and output of the step after removing ``row_set`` (cached).

        The memo key is the *actual removed-row content* — the input index
        plus the raw index bytes — never the set's display label: rendered
        labels round (binning intervals keep three significant digits), so
        two different sets of different partition granularities can share a
        label, and a label-based key would serve one set the other's stale
        materialisation.
        """
        indices = np.asarray(row_set.indices, dtype=np.int64)
        cache_key = (row_set.input_index, indices.tobytes())
        if cache_key in self._reduced_cache:
            return self._reduced_cache[cache_key]
        target_input = self.step.inputs[row_set.input_index]
        reduced_input = target_input.remove_rows(row_set.indices)
        reduced_inputs: Sequence[DataFrame] = self.step.with_inputs_replaced(
            row_set.input_index, reduced_input
        )
        reduced_output = self.step.rerun(reduced_inputs)
        result = (reduced_inputs, reduced_output)
        self._reduced_cache[cache_key] = result
        return result
