"""Natural-language caption templates (paper §3.7, "Generating captioned visualizations").

Each explanation family has a template; the attribute name, the label of the
chosen set-of-rows, and the quantities shown in the chart are plugged in:

* exceptionality — "See that the column 'A' presents a significant change in
  distribution.  In particular, 'label' (in green) is X times more frequent:
  a% before and b% after."
* diversity — "See that the column 'A' presents a significant diversity.  In
  particular, groups with 'B'='label' (in green) have a relatively low/high
  'A' value: z standard deviations lower/higher than the mean (m)."
"""

from __future__ import annotations


def exceptionality_caption(attribute: str, label: str, before_fraction: float,
                           after_fraction: float) -> str:
    """Caption for an exceptionality (filter/join/union) explanation.

    ``before_fraction`` and ``after_fraction`` are the relative frequencies of
    the chosen set-of-rows in the input and output dataframes (0–1).
    """
    before_pct = 100.0 * before_fraction
    after_pct = 100.0 * after_fraction
    direction = "more" if after_fraction >= before_fraction else "less"
    ratio = _frequency_ratio(before_fraction, after_fraction)
    return (
        f"See that the column '{attribute}' presents a significant change in distribution. "
        f"In particular, '{label}' (in green) is {ratio} {direction} frequent: "
        f"{_fmt_pct(before_pct)} before and {_fmt_pct(after_pct)} after."
    )


def diversity_caption(attribute: str, group_attribute: str, label: str, group_value: float,
                      overall_mean: float, z_score: float) -> str:
    """Caption for a diversity (group-by) explanation.

    ``group_value`` is the mean aggregated value of the chosen set-of-rows,
    ``overall_mean`` the mean of the aggregated column, and ``z_score`` the
    standardized distance between the two.
    """
    direction = "low" if z_score < 0 else "high"
    comparative = "lower" if z_score < 0 else "higher"
    return (
        f"See that the column '{attribute}' presents a significant diversity. "
        f"In particular, groups with '{group_attribute}'='{label}' (in green) have a relatively "
        f"{direction} '{attribute}' value ({_fmt_value(group_value)}): "
        f"{abs(z_score):.1f} standard deviations {comparative} than the mean "
        f"({_fmt_value(overall_mean)})."
    )


def generic_caption(attribute: str, label: str, measure_name: str,
                    interestingness: float, standardized_contribution: float) -> str:
    """Fallback caption for custom interestingness measures."""
    return (
        f"The column '{attribute}' scores {interestingness:.3f} on the '{measure_name}' measure; "
        f"the rows where '{label}' (in green) contribute most "
        f"(standardized contribution {standardized_contribution:.2f})."
    )


def _frequency_ratio(before_fraction: float, after_fraction: float) -> str:
    """"17 times" style multiplier between the two frequencies."""
    low, high = sorted((before_fraction, after_fraction))
    if low <= 0:
        return "infinitely"
    ratio = high / low
    if ratio >= 10:
        return f"{ratio:.0f} times"
    if ratio >= 1.05:
        return f"{ratio:.1f} times"
    return "about equally"


def _fmt_pct(value: float) -> str:
    if value >= 10:
        return f"{value:.0f}%"
    return f"{value:.1f}%"


def _fmt_value(value: float) -> str:
    if value != value:
        return "nan"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}".rstrip("0").rstrip(".")
