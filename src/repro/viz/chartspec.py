"""Declarative chart specifications.

The paper renders explanations with matplotlib; matplotlib is not available
here, so explanations carry a *chart spec* instead — a small declarative
object holding exactly the data the paper's figures show.  Specs can be
rendered as ASCII charts (:mod:`repro.viz.render_text`) or exported to plain
dictionaries / JSON (:mod:`repro.viz.export`) for any plotting front-end.

Two spec types mirror the paper's two explanation visualizations (§3.7):

* :class:`SideBySideBarChart` — exceptionality explanations: per-group value
  frequencies before and after the operation, with the chosen set-of-rows
  highlighted (Figure 2a).
* :class:`BarChartWithReference` — diversity explanations: the aggregated
  value of every group, a horizontal reference line at the overall mean, and
  the chosen set-of-rows highlighted (Figure 2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError


class ChartSpecError(ReproError):
    """A chart specification is malformed."""


@dataclass
class SideBySideBarChart:
    """Side-by-side before/after frequency bars (exceptionality explanations)."""

    title: str
    x_label: str
    categories: List[str]
    before: List[float]
    after: List[float]
    highlight_index: Optional[int] = None
    before_label: str = "Before"
    after_label: str = "After"
    y_label: str = "Frequency (%)"
    kind: str = field(default="side_by_side_bars", init=False)

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.before) or len(self.categories) != len(self.after):
            raise ChartSpecError(
                "categories, before, and after must have equal lengths "
                f"({len(self.categories)}, {len(self.before)}, {len(self.after)})"
            )
        if self.highlight_index is not None and not (
            0 <= self.highlight_index < len(self.categories)
        ):
            raise ChartSpecError(
                f"highlight_index {self.highlight_index} out of range for "
                f"{len(self.categories)} categories"
            )

    @property
    def highlighted_category(self) -> Optional[str]:
        """The highlighted (green) category, when any."""
        if self.highlight_index is None:
            return None
        return self.categories[self.highlight_index]

    def to_dict(self) -> Dict:
        """Plain-dict representation (JSON-serialisable)."""
        return {
            "kind": self.kind,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "categories": list(self.categories),
            "series": [
                {"label": self.before_label, "values": list(self.before)},
                {"label": self.after_label, "values": list(self.after)},
            ],
            "highlight_index": self.highlight_index,
        }


@dataclass
class BarChartWithReference:
    """Per-group bars with a horizontal reference (mean) line (diversity explanations)."""

    title: str
    x_label: str
    y_label: str
    categories: List[str]
    values: List[float]
    reference_value: Optional[float] = None
    reference_label: str = "mean"
    highlight_index: Optional[int] = None
    kind: str = field(default="bars_with_reference", init=False)

    def __post_init__(self) -> None:
        if len(self.categories) != len(self.values):
            raise ChartSpecError(
                f"categories and values must have equal lengths "
                f"({len(self.categories)}, {len(self.values)})"
            )
        if self.highlight_index is not None and not (
            0 <= self.highlight_index < len(self.categories)
        ):
            raise ChartSpecError(
                f"highlight_index {self.highlight_index} out of range for "
                f"{len(self.categories)} categories"
            )

    @property
    def highlighted_category(self) -> Optional[str]:
        """The highlighted (green) category, when any."""
        if self.highlight_index is None:
            return None
        return self.categories[self.highlight_index]

    def to_dict(self) -> Dict:
        """Plain-dict representation (JSON-serialisable)."""
        return {
            "kind": self.kind,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "categories": list(self.categories),
            "values": list(self.values),
            "reference": (
                {"label": self.reference_label, "value": self.reference_value}
                if self.reference_value is not None
                else None
            ),
            "highlight_index": self.highlight_index,
        }


ChartSpec = SideBySideBarChart | BarChartWithReference
