"""Export chart specifications and explanations to plain data formats.

Downstream tools (a notebook extension, a plotting service, or the original
matplotlib renderer) can consume the exported dictionaries / JSON documents
directly; the schema matches ``ChartSpec.to_dict``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from .chartspec import ChartSpec


def chart_to_dict(spec: ChartSpec) -> Dict:
    """Dictionary form of a chart spec (alias of ``spec.to_dict`` for symmetry)."""
    return spec.to_dict()


def chart_to_json(spec: ChartSpec, indent: int = 2) -> str:
    """JSON document of a single chart spec."""
    return json.dumps(spec.to_dict(), indent=indent, default=_jsonify)


def charts_to_json(specs: Iterable[ChartSpec], indent: int = 2) -> str:
    """JSON array of several chart specs."""
    return json.dumps([spec.to_dict() for spec in specs], indent=indent, default=_jsonify)


def save_charts(specs: Iterable[ChartSpec], path: str | Path) -> Path:
    """Write chart specs to a JSON file and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(charts_to_json(list(specs)), encoding="utf-8")
    return path


def _jsonify(value):
    """Coerce numpy scalars and other exotic values to JSON-friendly types."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)
