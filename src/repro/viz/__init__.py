"""Visualization substrate: declarative chart specs, ASCII rendering, export."""

from .chartspec import BarChartWithReference, ChartSpec, ChartSpecError, SideBySideBarChart
from .export import chart_to_dict, chart_to_json, charts_to_json, save_charts
from .render_text import render_bars_with_reference, render_chart, render_side_by_side

__all__ = [
    "BarChartWithReference",
    "ChartSpec",
    "ChartSpecError",
    "SideBySideBarChart",
    "chart_to_dict",
    "chart_to_json",
    "charts_to_json",
    "render_bars_with_reference",
    "render_chart",
    "render_side_by_side",
    "save_charts",
]
