"""ASCII rendering of chart specifications.

The notebook front-end of the original system draws matplotlib figures; this
renderer produces the terminal-friendly equivalent so explanations remain a
self-contained, human-readable artefact in this environment.  The highlighted
set-of-rows is marked with ``*`` (the paper colours it green).
"""

from __future__ import annotations

from typing import List

from .chartspec import BarChartWithReference, ChartSpec, SideBySideBarChart

_DEFAULT_WIDTH = 40


def render_chart(spec: ChartSpec, width: int = _DEFAULT_WIDTH) -> str:
    """Render any chart spec as an ASCII chart."""
    if isinstance(spec, SideBySideBarChart):
        return render_side_by_side(spec, width=width)
    if isinstance(spec, BarChartWithReference):
        return render_bars_with_reference(spec, width=width)
    raise TypeError(f"unsupported chart spec type: {type(spec).__name__}")


def render_side_by_side(spec: SideBySideBarChart, width: int = _DEFAULT_WIDTH) -> str:
    """Render before/after frequency bars, one category per pair of lines."""
    lines: List[str] = [spec.title, ""]
    max_value = max([*spec.before, *spec.after, 1e-12])
    label_width = max((len(c) for c in spec.categories), default=0)
    label_width = max(label_width, len(spec.before_label), len(spec.after_label))
    for index, category in enumerate(spec.categories):
        marker = "*" if index == spec.highlight_index else " "
        before_bar = _bar(spec.before[index], max_value, width)
        after_bar = _bar(spec.after[index], max_value, width)
        lines.append(f"{marker} {category:<{label_width}} | {spec.before_label:<6} {before_bar} {_fmt(spec.before[index])}")
        lines.append(f"  {'':<{label_width}} | {spec.after_label:<6} {after_bar} {_fmt(spec.after[index])}")
    lines.append("")
    lines.append(f"x: {spec.x_label}    y: {spec.y_label}    (* = highlighted set-of-rows)")
    return "\n".join(lines)


def render_bars_with_reference(spec: BarChartWithReference, width: int = _DEFAULT_WIDTH) -> str:
    """Render per-group bars plus the reference (mean) line."""
    lines: List[str] = [spec.title, ""]
    finite = [v for v in spec.values if v == v]  # drop NaNs
    low = min(finite + [0.0]) if finite else 0.0
    high = max(finite + [0.0]) if finite else 1.0
    if spec.reference_value is not None:
        low = min(low, spec.reference_value)
        high = max(high, spec.reference_value)
    span = (high - low) or 1.0
    label_width = max((len(c) for c in spec.categories), default=0)
    for index, category in enumerate(spec.categories):
        marker = "*" if index == spec.highlight_index else " "
        value = spec.values[index]
        bar = _bar(value - low, span, width) if value == value else "(missing)"
        lines.append(f"{marker} {category:<{label_width}} | {bar} {_fmt(value)}")
    if spec.reference_value is not None:
        offset = int(round((spec.reference_value - low) / span * width))
        lines.append(f"  {'':<{label_width}} | {' ' * offset}^ {spec.reference_label} = {_fmt(spec.reference_value)}")
    lines.append("")
    lines.append(f"x: {spec.x_label}    y: {spec.y_label}    (* = highlighted set-of-rows)")
    return "\n".join(lines)


def _bar(value: float, max_value: float, width: int) -> str:
    if max_value <= 0 or value != value:
        return ""
    length = int(round(max(0.0, value) / max_value * width))
    return "#" * max(length, 0)


def _fmt(value: float) -> str:
    if value != value:
        return "nan"
    if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
        return f"{value:.3g}"
    return f"{value:.2f}".rstrip("0").rstrip(".")
