"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that a
caller can catch everything coming out of the package with a single except
clause, while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class DataFrameError(ReproError):
    """Base class for errors raised by the dataframe substrate."""


class ColumnError(DataFrameError):
    """A column was malformed, missing, or used with an incompatible dtype."""


class SchemaError(DataFrameError):
    """Two dataframes (or a dataframe and an operation) disagree on schema."""


class LengthMismatchError(DataFrameError):
    """Columns of different lengths were combined into one dataframe."""


class OperationError(ReproError):
    """An EDA operation specification is invalid or cannot be applied."""


class QueryParseError(OperationError):
    """A textual query could not be parsed into an EDA operation."""


class ExplanationError(ReproError):
    """The explanation engine was configured or invoked incorrectly."""


class PartitionError(ExplanationError):
    """A row partition is invalid (overlapping sets, unknown attribute, ...)."""


class MeasureError(ExplanationError):
    """An interestingness measure is unknown or not applicable to a step."""


class ServiceError(ReproError):
    """The multi-tenant explanation service was misused or is unavailable."""


class ServiceOverloadError(ServiceError):
    """A request was shed by per-tenant admission control (``admission="reject"``)."""


class ServingError(ServiceError):
    """The HTTP serving front end (``repro.serving``) rejected a request."""

    #: HTTP status the front end maps this error family to.
    http_status = 500


class ServingAuthError(ServingError):
    """A request carried a missing or invalid bearer token."""

    http_status = 401


class ServingRequestError(ServingError):
    """A request document is malformed (bad JSON, bad query, bad overrides)."""

    http_status = 400


class UnknownDatasetError(ServingRequestError):
    """A query referenced a dataset name the server cannot resolve."""

    http_status = 404


class ServerDrainingError(ServingError):
    """The server is draining and accepts no new explanation requests."""

    http_status = 503


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class StorageError(ReproError):
    """An on-disk dataset (``repro.storage``) is malformed or cannot be used."""


class BaselineError(ReproError):
    """A baseline system (SeeDB / RATH / IO) was misconfigured."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with inconsistent parameters."""
