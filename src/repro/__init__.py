"""repro — a full reproduction of FEDEX (VLDB 2022).

FEDEX explains data-exploration steps: given an EDA operation (filter,
group-by, join, union) it finds the most interesting columns of the result
and the sets-of-rows of the input that contribute most to that
interestingness, and renders them as captioned visualizations.

Quickstart::

    from repro import ExplainableDataFrame, Comparison
    from repro.datasets import load_spotify

    songs = ExplainableDataFrame(load_spotify(n_rows=20_000, seed=0))
    popular = songs.filter(Comparison("popularity", ">", 65))
    print(popular.explain().render_text())

Subpackages
-----------
``repro.dataframe``   columnar dataframe substrate (pandas replacement)
``repro.operators``   EDA operations, exploratory steps, SQL-ish parser
``repro.stats``       KS statistic, dispersion, ranking metrics
``repro.core``        the FEDEX algorithms (Algorithm 1)
``repro.viz``         chart specs, ASCII rendering, JSON export
``repro.explain``     one-line explanation wrapper
``repro.obs``         telemetry: structured traces + central metrics registry
``repro.session``     session layer: shared cache store + per-tenant views
``repro.service``     multi-tenant serving front end (workers, admission)
``repro.serving``     asyncio HTTP front end, replica fleet, shared cache tier
``repro.storage``     chunked columnar dataset store (mmap frames, pushdown)
``repro.baselines``   SeeDB, RATH-style, Interestingness-Only baselines
``repro.datasets``    synthetic Spotify / Bank / Products+Sales generators
``repro.workloads``   the paper's 30 evaluation queries
``repro.experiments`` harnesses regenerating every figure of the paper
"""

from .core.config import FedexConfig, exact_config, sampling_config
from .core.engine import ExplanationReport, FedexExplainer, explain_step
from .core.explanation import Explanation
from .dataframe import Between, Column, Comparison, DataFrame, IsIn
from .explain.explainable import ExplainableDataFrame, explain_dataframe
from .obs import tracing
from .operators import ExploratoryStep, Filter, GroupBy, Join, Union, parse_query
from .service import ExplanationService, ServiceConfig
from .serving import ExplanationServer, ReplicaFleet, SharedCacheTier, TokenAuthenticator
from .session import CacheStore, ExplanationSession, SessionCache
from .storage import DatasetStore

__version__ = "1.0.0"

__all__ = [
    "Between",
    "CacheStore",
    "Column",
    "Comparison",
    "DataFrame",
    "DatasetStore",
    "ExplainableDataFrame",
    "Explanation",
    "ExplanationReport",
    "ExplanationServer",
    "ExplanationService",
    "ExplanationSession",
    "ExploratoryStep",
    "FedexConfig",
    "FedexExplainer",
    "Filter",
    "GroupBy",
    "IsIn",
    "Join",
    "ReplicaFleet",
    "ServiceConfig",
    "SessionCache",
    "SharedCacheTier",
    "TokenAuthenticator",
    "Union",
    "__version__",
    "exact_config",
    "explain_dataframe",
    "explain_step",
    "parse_query",
    "sampling_config",
    "tracing",
]
