"""CSV input/output for the dataframe substrate.

The paper's datasets are distributed as Kaggle CSV files; users of this
reproduction can load their own CSVs through :func:`read_csv` and persist
generated synthetic datasets with :func:`write_csv`.

Ingest is vectorised: the file is tokenised by the C-accelerated ``csv``
module (which also understands quoted fields, so delimiters, quotes, and
newlines embedded in values survive), and each column is type-inferred and
converted with one bulk ``astype`` instead of a python-level loop per cell.
Round-trip fidelity rules:

* values containing the delimiter, quotes, or newlines are quoted on write
  and re-assembled on read;
* missing values (numeric NaN, categorical ``None``) are written as empty
  fields and read back as missing — an *empty or whitespace-only* field is
  always missing;
* floats round-trip exactly (``repr`` precision, ``-0.0`` and ``±inf``
  included); integral floats are still written without a decimal point.

For bulk/repeated loading, convert once to the columnar dataset format
instead: :func:`repro.storage.csv_to_dataset`.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Sequence

import numpy as np

from ..errors import DataFrameError
from .column import KIND_CATEGORICAL, Column
from .frame import DataFrame


def read_csv(path: str | Path, delimiter: str = ",", numeric_columns: Sequence[str] | None = None,
             max_rows: int | None = None) -> DataFrame:
    """Load a CSV file into a :class:`DataFrame`.

    Column types are inferred: a column whose non-empty values all parse as
    floats becomes numeric, otherwise it is categorical.  ``numeric_columns``
    forces specific columns to be numeric (unparsable entries become NaN).

    Parameters
    ----------
    path:
        CSV file path.
    delimiter:
        Field delimiter, ``","`` by default.
    numeric_columns:
        Columns to coerce to numeric regardless of inference.
    max_rows:
        Optional cap on the number of data rows read.
    """
    path = Path(path)
    if not path.exists():
        raise DataFrameError(f"CSV file not found: {path}")
    forced_numeric = set(numeric_columns or [])

    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFrameError(f"CSV file {path} is empty") from None
        if max_rows is None:
            rows = list(reader)
        else:
            rows = []
            for row in reader:
                if len(rows) >= max_rows:
                    break
                rows.append(row)

    width = len(header)
    padded = [row + [""] * (width - len(row)) if len(row) < width else row for row in rows]
    transposed = list(zip(*padded)) if padded else [()] * width
    columns = [
        _build_column(name, transposed[position], force_numeric=name in forced_numeric)
        for position, name in enumerate(header)
    ]
    return DataFrame(columns)


def write_csv(frame: DataFrame, path: str | Path, delimiter: str = ",") -> Path:
    """Write a dataframe to a CSV file and return the path.

    Fields containing the delimiter, quotes, or newlines are quoted (the
    ``csv`` module's minimal quoting), so :func:`read_csv` reconstructs
    them exactly; missing values are written as empty fields.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = frame.column_names
    lists = [frame[name].tolist() for name in names]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for index in range(frame.num_rows):
            writer.writerow([_format_value(values[index]) for values in lists])
    return path


def _build_column(name: str, raw_values: Sequence[str], force_numeric: bool) -> Column:
    """Infer a column's type from its raw string fields and build the Column.

    The fast path converts the whole column with one ``astype(float)`` over
    the stripped fields (empties standing in as NaN).  When the bulk cast
    rejects something numpy cannot parse but ``float()`` can (underscored
    literals, "Infinity"), a python-level pass settles it, preserving the
    original cell-by-cell inference semantics.
    """
    if not raw_values:
        if force_numeric:
            return Column(name, np.asarray([], dtype=float))
        # No rows carry no type evidence; historical behaviour is numeric.
        return Column(name, np.asarray([], dtype=float))
    cells = np.asarray(raw_values, dtype=object)
    stripped = np.char.strip(cells.astype(str))
    empty = stripped == ""
    try:
        numeric = np.where(empty, "nan", stripped).astype(np.float64)
        return Column(name, numeric)
    except ValueError:
        pass

    slow = _python_float_column(stripped, empty, force_numeric)
    if slow is not None:
        return Column(name, slow)

    # Categorical: keep the original (unstripped) text of non-empty fields;
    # whitespace-only fields are missing.
    values = cells.copy()
    values[empty] = None
    return Column._from_trusted(name, values, KIND_CATEGORICAL)


def _python_float_column(stripped: np.ndarray, empty: np.ndarray,
                         force_numeric: bool) -> np.ndarray | None:
    """Cell-by-cell ``float()`` fallback; None when the column is not numeric."""
    parsed = np.full(stripped.shape[0], np.nan, dtype=float)
    for index, value in enumerate(stripped.tolist()):
        if empty[index]:
            continue
        try:
            parsed[index] = float(value)
        except ValueError:
            if not force_numeric:
                return None
    return parsed


def _format_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if math.isnan(value):
            return ""
        # Integral floats print without the decimal point — except -0.0
        # (whose sign would be lost) and magnitudes beyond exact integer
        # representation (repr round-trips those precisely).
        if (
            math.isfinite(value) and value == int(value)
            and abs(value) < 1e16 and not (value == 0 and math.copysign(1.0, value) < 0)
        ):
            return str(int(value))
        return repr(value)
    return str(value)
