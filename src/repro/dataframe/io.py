"""CSV input/output for the dataframe substrate.

The paper's datasets are distributed as Kaggle CSV files; users of this
reproduction can load their own CSVs through :func:`read_csv` and persist
generated synthetic datasets with :func:`write_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from ..errors import DataFrameError
from .column import Column
from .frame import DataFrame


def read_csv(path: str | Path, delimiter: str = ",", numeric_columns: Sequence[str] | None = None,
             max_rows: int | None = None) -> DataFrame:
    """Load a CSV file into a :class:`DataFrame`.

    Column types are inferred: a column whose non-empty values all parse as
    floats becomes numeric, otherwise it is categorical.  ``numeric_columns``
    forces specific columns to be numeric (unparsable entries become NaN).

    Parameters
    ----------
    path:
        CSV file path.
    delimiter:
        Field delimiter, ``","`` by default.
    numeric_columns:
        Columns to coerce to numeric regardless of inference.
    max_rows:
        Optional cap on the number of data rows read.
    """
    path = Path(path)
    if not path.exists():
        raise DataFrameError(f"CSV file not found: {path}")
    forced_numeric = set(numeric_columns or [])

    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataFrameError(f"CSV file {path} is empty") from None
        raw: Dict[str, List[str]] = {name: [] for name in header}
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            for position, name in enumerate(header):
                raw[name].append(row[position] if position < len(row) else "")

    columns = []
    for name in header:
        columns.append(_build_column(name, raw[name], force_numeric=name in forced_numeric))
    return DataFrame(columns)


def write_csv(frame: DataFrame, path: str | Path, delimiter: str = ",") -> Path:
    """Write a dataframe to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = frame.to_rows()
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(frame.column_names)
        for row in rows:
            writer.writerow([_format_value(row[name]) for name in frame.column_names])
    return path


def _build_column(name: str, raw_values: List[str], force_numeric: bool) -> Column:
    """Infer a column type from its raw string values and build the Column."""
    parsed: List[float | None] = []
    numeric = True
    for value in raw_values:
        stripped = value.strip()
        if stripped == "":
            parsed.append(None)
            continue
        try:
            parsed.append(float(stripped))
        except ValueError:
            numeric = False
            if not force_numeric:
                break
            parsed.append(None)

    if numeric or force_numeric:
        filled = [np.nan if v is None else v for v in parsed]
        # Pad in case inference bailed out early (cannot happen when numeric).
        while len(filled) < len(raw_values):
            filled.append(np.nan)
        return Column(name, np.asarray(filled, dtype=float))

    values = [value.strip() if value.strip() != "" else None for value in raw_values]
    return Column(name, np.asarray(values, dtype=object))


def _format_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if np.isnan(value):
            return ""
        if value == int(value):
            return str(int(value))
        return repr(value)
    return str(value)
