"""The :class:`DataFrame` — the relational substrate used throughout the repo.

The paper implements FEDEX on top of pandas [53].  pandas is not available in
this environment, so the repository ships its own small columnar dataframe
engine built on NumPy.  It supports exactly the relational semantics the
FEDEX algorithms need:

* named, typed columns (:class:`~repro.dataframe.column.Column`)
* row selection via predicates or explicit indices (filter, intervention)
* projection, renaming, sorting, head/tail
* group-by with the aggregations used by the paper's workloads
  (mean, sum, count, min, max) — see :mod:`repro.dataframe.groupby`
* inner join and union — see :mod:`repro.dataframe.join`
* uniform row sampling — see :mod:`repro.dataframe.sampling`
* CSV I/O — see :mod:`repro.dataframe.io`

Dataframes are treated as immutable: every operation returns a new frame.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from ..errors import ColumnError, SchemaError
from .column import Column, ensure_same_length
from .predicates import Predicate


class DataFrame:
    """An ordered collection of equally-long named columns.

    Parameters
    ----------
    columns:
        Either a mapping from column name to values / :class:`Column`, or an
        iterable of :class:`Column` objects.  Column order is preserved.
    """

    __slots__ = ("_columns", "_order", "_scan")

    def __init__(self, columns: Mapping[str, Any] | Iterable[Column] | None = None) -> None:
        self._columns: Dict[str, Column] = {}
        self._order: List[str] = []
        # Optional chunk-statistics scan attached by repro.storage when the
        # frame is opened from an on-disk dataset; every derived frame is a
        # plain in-memory frame again (row positions change), so the scan is
        # never inherited.
        self._scan = None
        if columns is None:
            return
        if isinstance(columns, Mapping):
            items = [
                value if isinstance(value, Column) else Column(name, value)
                for name, value in columns.items()
            ]
        else:
            items = list(columns)
        for column in items:
            if not isinstance(column, Column):
                raise ColumnError(f"expected Column instances, got {type(column).__name__}")
            if column.name in self._columns:
                raise SchemaError(f"duplicate column name {column.name!r}")
            self._columns[column.name] = column
            self._order.append(column.name)
        ensure_same_length(self._columns.values())

    # -------------------------------------------------------------- basic API
    @property
    def column_names(self) -> List[str]:
        """Names of the columns, in order (the schema ``A(d)``)."""
        return list(self._order)

    @property
    def num_rows(self) -> int:
        """Number of rows in the dataframe."""
        if not self._order:
            return 0
        return len(self._columns[self._order[0]])

    @property
    def num_columns(self) -> int:
        """Number of columns in the dataframe."""
        return len(self._order)

    @property
    def shape(self) -> tuple:
        """(rows, columns) shape tuple."""
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        if name not in self._columns:
            raise ColumnError(f"unknown column {name!r}; available: {self._order}")
        return self._columns[name]

    def __iter__(self):
        return iter(self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self._order != other._order or self.num_rows != other.num_rows:
            return False
        return all(self._columns[name] == other._columns[name] for name in self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataFrame(rows={self.num_rows}, columns={self._order})"

    def columns(self) -> List[Column]:
        """The column objects, in schema order."""
        return [self._columns[name] for name in self._order]

    def fingerprint(self, column_fingerprint=None) -> str:
        """Stable content fingerprint of the dataframe.

        Combines the per-column fingerprints in schema order, so two frames
        match exactly when they have the same schema and equal values — the
        identity the session caches (:mod:`repro.session`) key dataframes by.
        Recomputed on every call; see :meth:`Column.fingerprint`.
        ``column_fingerprint`` optionally replaces the per-column hashing
        (the session cache passes its request-scoped memoized variant).
        """
        hash_column = column_fingerprint or (lambda column: column.fingerprint())
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(self.num_rows).encode())
        for column in self.columns():
            digest.update(hash_column(column).encode())
        return digest.hexdigest()

    def column_kinds(self) -> Dict[str, str]:
        """Mapping from column name to its logical kind."""
        return {name: self._columns[name].kind for name in self._order}

    def numeric_columns(self) -> List[str]:
        """Names of the numeric columns."""
        return [name for name in self._order if self._columns[name].is_numeric]

    def categorical_columns(self) -> List[str]:
        """Names of the categorical columns."""
        return [name for name in self._order if self._columns[name].is_categorical]

    # ------------------------------------------------------------ construction
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]], column_order: Sequence[str] | None = None) -> "DataFrame":
        """Build a dataframe from a list of row dictionaries."""
        if not rows:
            # No rows carry no type evidence: empty columns are object-kind,
            # consistent with _guess_dtype on an empty value list.
            return cls({
                name: np.asarray([], dtype=object) for name in (column_order or [])
            })
        names = list(column_order) if column_order else list(rows[0].keys())
        data = {name: [row.get(name) for row in rows] for name in names}
        return cls({name: np.asarray(values, dtype=_guess_dtype(values)) for name, values in data.items()})

    def copy(self) -> "DataFrame":
        """Deep copy of the dataframe."""
        return DataFrame([column.copy() for column in self.columns()])

    def with_column(self, column: Column) -> "DataFrame":
        """Return a new dataframe with ``column`` added (or replaced)."""
        if self._order and len(column) != self.num_rows:
            raise ColumnError(
                f"new column {column.name!r} has {len(column)} rows, dataframe has {self.num_rows}"
            )
        columns = [self._columns[name] for name in self._order if name != column.name]
        columns.append(column)
        return DataFrame(columns)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        """Return a new dataframe with columns renamed according to ``mapping``."""
        return DataFrame([
            self._columns[name].rename(mapping.get(name, name)) for name in self._order
        ])

    def select(self, names: Sequence[str]) -> "DataFrame":
        """Project onto the given columns, in the given order."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise ColumnError(f"unknown columns {missing}; available: {self._order}")
        return DataFrame([self._columns[name] for name in names])

    def drop(self, names: Sequence[str]) -> "DataFrame":
        """Return a new dataframe without the given columns."""
        to_drop = set(names)
        return DataFrame([self._columns[name] for name in self._order if name not in to_drop])

    # ------------------------------------------------------------ row selection
    def attach_scan(self, scan) -> "DataFrame":
        """Attach a dataset scan (chunk-statistics pushdown) to this frame.

        Called by :mod:`repro.storage` when the frame is opened from an
        on-disk dataset; :meth:`predicate_mask` then prunes whole chunks via
        the persisted footer statistics before evaluating a predicate.
        """
        self._scan = scan
        return self

    def descriptor(self):
        """Picklable handle of a storage-backed frame, or ``None``.

        A frame opened from an on-disk dataset (:mod:`repro.storage`) can be
        described by a tiny :class:`~repro.storage.reader.FrameDescriptor`
        (store path + manifest version + frame fingerprint + column subset)
        that another process resolves back into an mmap-backed frame over
        the *same* kernel pages — see :meth:`from_descriptor`.  Plain
        in-memory frames, and frames derived from a stored one (whose rows
        no longer match the dataset), return ``None``.
        """
        if self._scan is None:
            return None
        from ..storage.reader import frame_descriptor

        return frame_descriptor(self, self._scan)

    @classmethod
    def from_descriptor(cls, descriptor) -> "DataFrame":
        """Resolve a :meth:`descriptor` back into an mmap-backed frame.

        Validated against the descriptor's pinned manifest version and frame
        fingerprint; see :func:`repro.storage.reader.frame_from_descriptor`.
        """
        from ..storage.reader import frame_from_descriptor

        return frame_from_descriptor(descriptor)

    def predicate_mask(self, predicate: Predicate) -> np.ndarray:
        """Boolean row mask of ``predicate``, with chunk pruning when possible.

        Identical to ``predicate.mask(self)`` bit for bit; when the frame is
        backed by an on-disk dataset (:mod:`repro.storage`), chunks whose
        footer statistics prove no row can match are skipped without being
        materialised or evaluated.
        """
        scan = self._scan
        if scan is not None:
            return scan.mask(self, predicate)
        return np.asarray(predicate.mask(self), dtype=bool)

    def filter(self, predicate: Predicate) -> "DataFrame":
        """Rows satisfying ``predicate`` (the relational selection operator)."""
        keep = self.predicate_mask(predicate)
        return self.mask(keep)

    def mask(self, keep: np.ndarray) -> "DataFrame":
        """Rows where the boolean array ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape[0] != self.num_rows:
            raise ColumnError(
                f"mask length {keep.shape[0]} does not match row count {self.num_rows}"
            )
        return DataFrame([column.mask(keep) for column in self.columns()])

    def take(self, indices: Sequence[int]) -> "DataFrame":
        """Rows at the given positional indices, in order."""
        idx = np.asarray(indices, dtype=np.int64)
        return DataFrame([column.take(idx) for column in self.columns()])

    def remove_rows(self, indices: Sequence[int]) -> "DataFrame":
        """Dataframe with the rows at ``indices`` removed.

        This is the intervention primitive used by the contribution function:
        ``D_in − R`` for a set-of-rows ``R`` given by positional indices.
        """
        drop = np.zeros(self.num_rows, dtype=bool)
        idx = np.asarray(list(indices), dtype=np.int64)
        if idx.size:
            idx = idx[(idx >= 0) & (idx < self.num_rows)]
            drop[idx] = True
        return self.mask(~drop)

    def head(self, n: int = 5) -> "DataFrame":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.num_rows)))

    def tail(self, n: int = 5) -> "DataFrame":
        """Last ``n`` rows."""
        start = max(self.num_rows - n, 0)
        return self.take(np.arange(start, self.num_rows))

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        """Rows sorted by the given column."""
        order = self[by].sorted_order()
        if not ascending:
            order = order[::-1]
        return self.take(order)

    # ------------------------------------------------------------- conversions
    def to_rows(self) -> List[Dict[str, Any]]:
        """Materialise the dataframe as a list of row dictionaries."""
        lists = {name: self._columns[name].tolist() for name in self._order}
        return [
            {name: lists[name][i] for name in self._order} for i in range(self.num_rows)
        ]

    def to_dict(self) -> Dict[str, list]:
        """Materialise the dataframe as ``{column: list of values}``."""
        return {name: self._columns[name].tolist() for name in self._order}

    def row(self, index: int) -> Dict[str, Any]:
        """A single row as a dictionary."""
        return {name: self._columns[name][index] for name in self._order}

    # --------------------------------------------------------------- delegates
    def groupby(self, by: Sequence[str] | str, aggregations: Mapping[str, Sequence[str]] | None = None,
                include_count: bool = False) -> "DataFrame":
        """Group-by with aggregations; see :func:`repro.dataframe.groupby.groupby`."""
        from .groupby import groupby as _groupby

        return _groupby(self, by, aggregations, include_count=include_count)

    def join(self, other: "DataFrame", on: str | Sequence[str], how: str = "inner",
             suffixes: tuple = ("_left", "_right")) -> "DataFrame":
        """Join with another dataframe; see :func:`repro.dataframe.join.join`."""
        from .join import join as _join

        return _join(self, other, on, how=how, suffixes=suffixes)

    def union(self, other: "DataFrame") -> "DataFrame":
        """Union (row concatenation) with another dataframe."""
        from .join import union as _union

        return _union(self, other)

    def sample(self, n: int, seed: int | None = None) -> "DataFrame":
        """Uniform row sample without replacement; see :mod:`repro.dataframe.sampling`."""
        from .sampling import uniform_sample

        return uniform_sample(self, n, seed=seed)

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Summary statistics (count / mean / std / min / max / distinct) per column."""
        summary: Dict[str, Dict[str, float]] = {}
        for name in self._order:
            column = self._columns[name]
            entry: Dict[str, float] = {
                "count": float(len(column) - int(column.null_mask().sum())),
                "distinct": float(column.n_unique()),
            }
            if column.is_numeric:
                entry.update(
                    mean=column.mean(), std=column.std(), min=column.min(), max=column.max()
                )
            summary[name] = entry
        return summary


def _guess_dtype(values: Sequence[Any]):
    """Pick a numpy dtype for a list of python values (object for mixed/str).

    An empty list carries no type evidence, so it stays ``object`` rather than
    defaulting to a numeric dtype.  Because ``bool`` is a subclass of ``int``
    in python, a bool/int mix must be caught explicitly: coercing it to
    ``int64`` would silently turn ``True``/``False`` into ``1``/``0``.
    """
    if not values:
        return object
    has_str = any(isinstance(v, str) for v in values)
    has_none = any(v is None for v in values)
    if has_str or has_none:
        return object
    has_bool = any(isinstance(v, bool) for v in values)
    if has_bool:
        return bool if all(isinstance(v, bool) for v in values) else object
    if all(isinstance(v, int) for v in values):
        return np.int64
    return float


def concat_frames(frames: Sequence[DataFrame]) -> DataFrame:
    """Concatenate dataframes with identical schemas row-wise."""
    if not frames:
        return DataFrame()
    result = frames[0]
    for frame in frames[1:]:
        result = result.union(frame)
    return result
