"""Typed, immutable-by-convention column backed by a NumPy array.

The dataframe substrate stores every column as a :class:`Column`: a thin
wrapper around a one-dimensional ``numpy.ndarray`` that remembers a logical
*kind* (numeric, categorical, boolean) and provides the vectorised operations
the rest of the library needs (comparisons, value counts, frequency
distributions, missing-value handling).

The paper's algorithms only ever need relational column semantics, so this is
deliberately a small surface: enough to express filter predicates, group-by
keys, aggregations, and distribution comparisons.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ColumnError
from ..obs.metrics import REGISTRY as _METRICS_REGISTRY

#: Logical column kinds recognised by the substrate.
KIND_NUMERIC = "numeric"
KIND_CATEGORICAL = "categorical"
KIND_BOOLEAN = "boolean"

_VALID_KINDS = (KIND_NUMERIC, KIND_CATEGORICAL, KIND_BOOLEAN)


class FingerprintStats:
    """Process-wide counters of column fingerprint work (observability).

    ``full_hashes`` counts fingerprints computed by hashing the raw values;
    ``full_hash_max_rows`` tracks the largest column fully hashed since the
    last :meth:`reset`; ``persisted_hits`` counts fingerprints answered from
    a persisted storage fingerprint without touching the values.  The
    storage benchmarks use these to prove that the warm mmap explain path
    never re-hashes a stored column.
    """

    __slots__ = ("full_hashes", "full_hash_max_rows", "persisted_hits")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.full_hashes = 0
        self.full_hash_max_rows = 0
        self.persisted_hits = 0

    def as_dict(self) -> dict:
        return {
            "full_hashes": self.full_hashes,
            "full_hash_max_rows": self.full_hash_max_rows,
            "persisted_hits": self.persisted_hits,
        }

    def snapshot(self) -> dict:
        """A point-in-time copy of the counters (pairs with :meth:`delta`)."""
        return self.as_dict()

    def delta(self, before: dict) -> dict:
        """Counter increments since a :meth:`snapshot`.

        ``full_hash_max_rows`` is a high-water mark, not a counter, so the
        delta reports its *current* value — subtracting two maxima means
        nothing.  With :func:`repro.obs.metrics.capture` this replaces the
        ad-hoc before/after arithmetic the module-global counters force on
        callers (they bleed across tests otherwise).
        """
        payload = {name: value - before.get(name, 0)
                   for name, value in self.as_dict().items()}
        payload["full_hash_max_rows"] = self.full_hash_max_rows
        return payload


#: Global fingerprint counters (reset freely in tests/benchmarks).
FINGERPRINT_STATS = FingerprintStats()


def _collect_fingerprint_metrics():
    """Scrape-time samples of the fingerprint counters (zero hot-path cost)."""
    yield ("repro_fingerprint_full_hashes_total", "counter",
           "Column fingerprints computed by hashing the raw values.",
           float(FINGERPRINT_STATS.full_hashes), {})
    yield ("repro_fingerprint_persisted_hits_total", "counter",
           "Column fingerprints answered from persisted storage digests.",
           float(FINGERPRINT_STATS.persisted_hits), {})
    yield ("repro_fingerprint_full_hash_max_rows", "gauge",
           "Largest column fully hashed since the last reset.",
           float(FINGERPRINT_STATS.full_hash_max_rows), {})


_METRICS_REGISTRY.register_collector("fingerprint_stats", _collect_fingerprint_metrics)


def infer_kind(values: np.ndarray) -> str:
    """Infer the logical kind of a numpy array.

    Booleans map to ``boolean``, any integer/float dtype to ``numeric`` and
    everything else (strings, objects) to ``categorical``.
    """
    if values.dtype == np.bool_:
        return KIND_BOOLEAN
    if np.issubdtype(values.dtype, np.number):
        return KIND_NUMERIC
    return KIND_CATEGORICAL


def _coerce_array(values: Any) -> np.ndarray:
    """Convert arbitrary input (list, tuple, ndarray) to a 1-D numpy array."""
    if isinstance(values, np.ndarray):
        array = values
    else:
        array = np.asarray(list(values) if not isinstance(values, (list, tuple)) else values)
    if array.ndim != 1:
        raise ColumnError(f"columns must be one-dimensional, got shape {array.shape}")
    if array.dtype == np.object_:
        # Normalise python objects to strings so comparisons are well-defined.
        array = np.asarray([_normalise_object(v) for v in array], dtype=object)
    return array


def _normalise_object(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, (np.str_, str)):
        return str(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    return str(value)


class Column:
    """A named, typed column of values.

    Parameters
    ----------
    name:
        Attribute name (``A`` in the paper's notation).
    values:
        Any one-dimensional sequence of values.
    kind:
        Optional logical kind override; inferred from the dtype when omitted.
    """

    __slots__ = ("name", "kind", "_data", "_loader", "_length",
                 "_persisted_fingerprint", "_factorized", "_sorted_order")

    def __init__(self, name: str, values: Any, kind: str | None = None) -> None:
        if not isinstance(name, str) or not name:
            raise ColumnError("column name must be a non-empty string")
        array = _coerce_array(values)
        resolved_kind = kind if kind is not None else infer_kind(array)
        if resolved_kind not in _VALID_KINDS:
            raise ColumnError(
                f"unknown column kind {resolved_kind!r}; expected one of {_VALID_KINDS}"
            )
        self.name = name
        self.kind = resolved_kind
        self._data = array
        self._loader = None
        self._length = None
        self._persisted_fingerprint = None
        self._factorized = None
        self._sorted_order = None

    @classmethod
    def _from_trusted(cls, name: str, values: np.ndarray, kind: str) -> "Column":
        """Internal fast constructor for arrays already produced by this class.

        Skips the per-element normalisation of object arrays; only used when
        the values are a slice/copy of an existing column's array (take, mask,
        concat, copy, rename), which is the hot path of the intervention
        computation.
        """
        column = cls.__new__(cls)
        column.name = name
        column.kind = kind
        column._data = values
        column._loader = None
        column._length = None
        column._persisted_fingerprint = None
        column._factorized = None
        column._sorted_order = None
        return column

    @classmethod
    def from_storage(cls, name: str, kind: str, length: int, *,
                     values: Optional[np.ndarray] = None,
                     loader: Optional[Callable[[], np.ndarray]] = None,
                     fingerprint: Optional[str] = None,
                     factorized: Optional[Tuple] = None) -> "Column":
        """Build a storage-backed column (see :mod:`repro.storage`).

        Exactly one of ``values`` (an already memory-mapped, read-only
        array) or ``loader`` (a zero-argument callable materialising the
        values on first touch; it must return a *read-only* array) is
        required.  ``fingerprint`` is the persisted content fingerprint
        recorded when the column was written: because the backing array is
        read-only, the content cannot drift, so :meth:`fingerprint` returns
        it without re-hashing the values.  ``factorized`` optionally seeds
        the factorization cache from persisted dictionary codes.
        """
        if (values is None) == (loader is None):
            raise ColumnError("from_storage needs exactly one of values/loader")
        if values is not None and values.flags.writeable:
            raise ColumnError("storage-backed columns must wrap read-only arrays")
        column = cls.__new__(cls)
        column.name = name
        column.kind = kind
        column._data = values
        column._loader = loader
        column._length = int(length)
        column._persisted_fingerprint = fingerprint
        column._factorized = factorized
        column._sorted_order = None
        return column

    # ------------------------------------------------------------------ dunder
    @property
    def values(self) -> np.ndarray:
        """The backing array; storage-backed columns materialise on first touch."""
        data = self._data
        if data is None:
            data = self._loader()
            self._data = data
        return data

    def __len__(self) -> int:
        if self._data is None:
            return self._length
        return int(self._data.shape[0])

    def __iter__(self):
        return iter(self.values.tolist())

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            value = self.values[int(index)]
            return value.item() if isinstance(value, np.generic) else value
        return Column._from_trusted(self.name, self.values[index], self.kind)

    def __eq__(self, other: object) -> bool:  # pragma: no cover - convenience
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.kind == other.kind
            and len(self) == len(other)
            and bool(np.all(self.values == other.values))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(str(v) for v in self.values[:5].tolist())
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column({self.name!r}, kind={self.kind}, n={len(self)}, [{preview}{suffix}])"

    # ------------------------------------------------------------- predicates
    @property
    def is_numeric(self) -> bool:
        """True when the column holds numeric (int/float) values."""
        return self.kind == KIND_NUMERIC

    @property
    def is_categorical(self) -> bool:
        """True when the column holds categorical (string/object) values."""
        return self.kind == KIND_CATEGORICAL

    @property
    def is_boolean(self) -> bool:
        """True when the column holds boolean values."""
        return self.kind == KIND_BOOLEAN

    # ------------------------------------------------------------ construction
    def rename(self, name: str) -> "Column":
        """Return a copy of this column under a different name."""
        return Column._from_trusted(name, self.values, self.kind)

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column containing ``values[indices]`` in order."""
        return Column._from_trusted(self.name, self.values[indices], self.kind)

    def mask(self, keep: np.ndarray) -> "Column":
        """Return a new column with only the rows where ``keep`` is True."""
        if keep.dtype != np.bool_:
            raise ColumnError("mask requires a boolean array")
        if keep.shape[0] != len(self):
            raise ColumnError(
                f"mask length {keep.shape[0]} does not match column length {len(self)}"
            )
        return Column._from_trusted(self.name, self.values[keep], self.kind)

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns (used by union and join materialisation)."""
        if self.kind != other.kind:
            # Mixed kinds degrade to categorical, mirroring relational union
            # semantics where heterogenous columns become strings.
            left = np.asarray([str(v) for v in self.values], dtype=object)
            right = np.asarray([str(v) for v in other.values], dtype=object)
            return Column(self.name, np.concatenate([left, right]), kind=KIND_CATEGORICAL)
        return Column._from_trusted(
            self.name, np.concatenate([self.values, other.values]), self.kind
        )

    def copy(self) -> "Column":
        """Return a deep copy of the column."""
        return Column._from_trusted(self.name, self.values.copy(), self.kind)

    # -------------------------------------------------------------- statistics
    def null_mask(self) -> np.ndarray:
        """Boolean array marking missing values (NaN for numeric, None for categorical)."""
        if self.is_numeric:
            return np.isnan(self.values.astype(float))
        if self.is_boolean:
            return np.zeros(len(self), dtype=bool)
        # Object arrays: element-wise comparison against None is vectorised.
        return np.asarray(self.values == np.asarray(None, dtype=object), dtype=bool)

    def dropna_values(self) -> np.ndarray:
        """Values of the column with missing entries removed."""
        return self.values[~self.null_mask()]

    def factorize(self) -> tuple:
        """Integer codes and unique values of the column.

        Returns ``(codes, uniques)`` where ``codes`` is an int64 array with
        ``codes[i]`` the index of row ``i``'s value in ``uniques`` and ``-1``
        for missing values.  ``uniques`` is a list of python values in sorted
        order.  This is the vectorised workhorse behind value counts,
        group-by, joins, and the frequency partitioner.  The result is cached
        on the column (columns are immutable by convention).
        """
        if self._factorized is not None:
            return self._factorized
        self._factorized = self._compute_factorization()
        return self._factorized

    def _compute_factorization(self) -> tuple:
        missing = self.null_mask()
        codes = np.full(len(self), -1, dtype=np.int64)
        present = ~missing
        if not present.any():
            return codes, []
        if self.is_numeric or self.is_boolean:
            observed = self.values[present].astype(float)
            uniques, inverse = np.unique(observed, return_inverse=True)
            codes[present] = inverse
            return codes, [u.item() for u in uniques]
        observed = np.asarray([str(v) for v in self.values[present]], dtype=object)
        uniques, inverse = np.unique(observed.astype(str), return_inverse=True)
        codes[present] = inverse
        return codes, [str(u) for u in uniques]

    def fingerprint(self) -> str:
        """Stable content fingerprint of the column (name, kind, and values).

        Two columns carry the same fingerprint exactly when they hold equal
        values under the same name and kind, regardless of object identity —
        the keying primitive of the session-level caches
        (:mod:`repro.session`).  The hash is recomputed from the raw values on
        every call (it is *not* cached on the column), so an in-place
        mutation of the backing array changes the fingerprint and session
        caches treat the mutated column as new content.

        Storage-backed columns (:meth:`from_storage`) are the exception:
        their backing buffer is a read-only mmap (or a read-only
        materialisation of one), so the content provably cannot have
        drifted and the fingerprint persisted at write time is returned
        without touching the data.  The shortcut deactivates itself the
        moment the backing array is writeable again (e.g. a caller flipped
        the flag), falling back to a full hash.
        """
        persisted = self._persisted_fingerprint
        if persisted is not None:
            data = self._data
            if data is None or not data.flags.writeable:
                FINGERPRINT_STATS.persisted_hits += 1
                return persisted
        FINGERPRINT_STATS.full_hashes += 1
        FINGERPRINT_STATS.full_hash_max_rows = max(
            FINGERPRINT_STATS.full_hash_max_rows, len(self)
        )
        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"{len(self.name)}:".encode())
        digest.update(self.name.encode())
        digest.update(self.kind.encode())
        values = self.values
        digest.update(f"{values.size}:".encode())
        if self.is_numeric or self.is_boolean:
            # The dtype tag keeps byte-identical arrays of different dtypes
            # (e.g. int64 vs float64 zeros) from colliding.
            digest.update(values.dtype.str.encode())
            digest.update(np.ascontiguousarray(values).tobytes())
        elif values.size:
            # Object arrays: hash a canonical string rendering, vectorised
            # (a python-level loop here dominates warm-path session costs).
            # ``astype("U")`` renders every value through ``str()`` into a
            # fixed-width UCS-4 array whose raw buffer is hashed directly.
            # The combination hashed — the dtype tag (width + byte order),
            # the fixed-width records, the per-value character lengths, and
            # the missing-value mask — decodes uniquely: a record pins every
            # codepoint up to trailing-NUL padding, the character length
            # disambiguates genuine trailing NUL characters from padding,
            # and the mask separates None from any string (including "").
            # No splitting ambiguity is possible, so ["a\x00b"] can never
            # collide with ["a", "b"].
            null = self.null_mask()
            cleaned = values
            if null.any():
                cleaned = values.copy()
                cleaned[null] = ""
            rendered = cleaned.astype("U")
            digest.update(rendered.dtype.str.encode())
            digest.update(rendered.tobytes())
            digest.update(np.char.str_len(rendered).astype(np.int64).tobytes())
            digest.update(null.tobytes())
        return digest.hexdigest()

    def sorted_order(self) -> np.ndarray:
        """Stable argsort of the values, cached on the column.

        Numeric and boolean columns sort by float value with NaN last (the
        ``np.argsort`` convention); categorical columns sort by the string
        rendering of each value.  The cache makes repeated order-dependent
        computations — :meth:`DataFrame.sort_values` and the incremental
        contribution backend's KS re-scoring, which derives the sorted values
        of every row-set intervention from one shared argsort — pay the
        ``O(n log n)`` sort exactly once per column.
        """
        if self._sorted_order is None:
            if self.is_numeric or self.is_boolean:
                self._sorted_order = np.argsort(self.values.astype(float), kind="stable")
            else:
                keys = np.asarray([str(v) for v in self.values])
                self._sorted_order = np.argsort(keys, kind="stable")
        return self._sorted_order

    def unique(self) -> list:
        """Distinct non-missing values (sorted)."""
        return self.factorize()[1]

    def n_unique(self) -> int:
        """Number of distinct non-missing values."""
        return len(self.factorize()[1])

    def value_counts(self) -> dict:
        """Mapping from value to the number of rows holding that value."""
        codes, uniques = self.factorize()
        if not uniques:
            return {}
        counts = np.bincount(codes[codes >= 0], minlength=len(uniques))
        return {value: int(count) for value, count in zip(uniques, counts)}

    def frequencies(self) -> dict:
        """Mapping from value to relative frequency (sums to 1 over non-missing rows)."""
        counts = self.value_counts()
        total = sum(counts.values())
        if total == 0:
            return {}
        return {value: count / total for value, count in counts.items()}

    def to_float(self) -> np.ndarray:
        """Return the values as a float array; raises for categorical columns."""
        if not (self.is_numeric or self.is_boolean):
            raise ColumnError(f"column {self.name!r} is not numeric")
        return self.values.astype(float)

    def min(self) -> float:
        """Minimum of the non-missing numeric values."""
        values = self.dropna_values()
        return float(np.min(values.astype(float))) if len(values) else float("nan")

    def max(self) -> float:
        """Maximum of the non-missing numeric values."""
        values = self.dropna_values()
        return float(np.max(values.astype(float))) if len(values) else float("nan")

    def mean(self) -> float:
        """Mean of the non-missing numeric values."""
        values = self.dropna_values()
        return float(np.mean(values.astype(float))) if len(values) else float("nan")

    def std(self, ddof: int = 1) -> float:
        """Sample standard deviation of the non-missing numeric values."""
        values = self.dropna_values()
        if len(values) <= ddof:
            return 0.0
        return float(np.std(values.astype(float), ddof=ddof))

    def sum(self) -> float:
        """Sum of the non-missing numeric values."""
        values = self.dropna_values()
        return float(np.sum(values.astype(float))) if len(values) else 0.0

    def tolist(self) -> list:
        """Return the values as a plain python list."""
        return [v.item() if isinstance(v, np.generic) else v for v in self.values]


def column_from_mapping(name: str, mapping: Mapping[Any, Any], keys: Sequence[Any]) -> Column:
    """Build a column by looking up each key of ``keys`` in ``mapping``.

    Convenience used by the many-to-one partitioner and dataset generators to
    derive one column from another (e.g. year -> decade).
    """
    values = [mapping.get(key) for key in keys]
    return Column(name, np.asarray(values, dtype=object))


def ensure_same_length(columns: Iterable[Column]) -> int:
    """Verify all columns have the same length and return that length."""
    lengths = {len(column) for column in columns}
    if not lengths:
        return 0
    if len(lengths) > 1:
        raise ColumnError(f"columns have mismatching lengths: {sorted(lengths)}")
    return lengths.pop()
