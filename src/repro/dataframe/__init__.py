"""Columnar dataframe substrate (pandas replacement) built on NumPy.

Public surface::

    from repro.dataframe import DataFrame, Column, read_csv, write_csv
    from repro.dataframe import Comparison, IsIn, Between, And, Or, Not
"""

from .column import (
    KIND_BOOLEAN,
    KIND_CATEGORICAL,
    KIND_NUMERIC,
    Column,
    column_from_mapping,
)
from .frame import DataFrame, concat_frames
from .groupby import AGGREGATIONS, aggregation_column_name, group_indices, groupby
from .io import read_csv, write_csv
from .join import join, union
from .predicates import (
    And,
    Between,
    Comparison,
    IsIn,
    IsNull,
    Not,
    Or,
    Predicate,
    RowIndexPredicate,
)
from .sampling import stratified_sample, uniform_sample, upsample_with_replacement

__all__ = [
    "AGGREGATIONS",
    "And",
    "Between",
    "Column",
    "Comparison",
    "DataFrame",
    "IsIn",
    "IsNull",
    "KIND_BOOLEAN",
    "KIND_CATEGORICAL",
    "KIND_NUMERIC",
    "Not",
    "Or",
    "Predicate",
    "RowIndexPredicate",
    "aggregation_column_name",
    "column_from_mapping",
    "concat_frames",
    "group_indices",
    "groupby",
    "join",
    "read_csv",
    "stratified_sample",
    "uniform_sample",
    "union",
    "upsample_with_replacement",
    "write_csv",
]
