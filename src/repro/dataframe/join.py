"""Join and union operators for the dataframe substrate.

The paper's workloads use inner joins (Products ⋈ Sales on item / county /
store, Table 2 queries 1–3) and unions.  Joins are implemented as hash joins
on the key column(s); unions align columns by name.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import OperationError, SchemaError
from .column import Column
from .frame import DataFrame

_SUPPORTED_HOW = ("inner", "left")


def join(left: DataFrame, right: DataFrame, on: str | Sequence[str], how: str = "inner",
         suffixes: Tuple[str, str] = ("_left", "_right")) -> DataFrame:
    """Hash join of two dataframes on equality of the key column(s).

    Parameters
    ----------
    left, right:
        The input dataframes.
    on:
        Key column name (or list of names) present in both inputs.
    how:
        ``"inner"`` (default) or ``"left"``.
    suffixes:
        Suffixes appended to non-key columns whose names collide.

    Returns
    -------
    DataFrame
        The joined dataframe.  Key columns appear once; other columns keep
        their names unless they collide, in which case the suffixes are used.
    """
    if how not in _SUPPORTED_HOW:
        raise OperationError(f"unsupported join type {how!r}; expected one of {_SUPPORTED_HOW}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left:
            raise SchemaError(f"join key {key!r} missing from left dataframe")
        if key not in right:
            raise SchemaError(f"join key {key!r} missing from right dataframe")

    left_idx, right_idx, unmatched_left = _match_rows(left, right, keys)

    columns: List[Column] = []
    collisions = (set(left.column_names) & set(right.column_names)) - set(keys)

    for name in left.column_names:
        out_name = name + suffixes[0] if name in collisions else name
        taken = left[name].take(left_idx)
        if how == "left" and unmatched_left.size:
            extra = left[name].take(unmatched_left)
            taken = taken.concat(extra)
        columns.append(taken.rename(out_name))

    n_unmatched = int(unmatched_left.size) if how == "left" else 0
    for name in right.column_names:
        if name in keys:
            continue
        out_name = name + suffixes[1] if name in collisions else name
        taken = right[name].take(right_idx)
        if n_unmatched:
            filler = _null_column(out_name, right[name], n_unmatched)
            taken = taken.concat(filler)
        columns.append(taken.rename(out_name))

    return DataFrame(columns)


def union(top: DataFrame, bottom: DataFrame) -> DataFrame:
    """Row-wise union (concatenation) of two dataframes.

    Columns are aligned by name; the output schema is the union of both
    schemas, with missing values filled in for columns absent from one side.
    """
    names: List[str] = list(top.column_names)
    for name in bottom.column_names:
        if name not in names:
            names.append(name)

    columns: List[Column] = []
    for name in names:
        if name in top and name in bottom:
            columns.append(top[name].concat(bottom[name]))
        elif name in top:
            filler = _null_column(name, top[name], bottom.num_rows)
            columns.append(top[name].concat(filler))
        else:
            filler = _null_column(name, bottom[name], top.num_rows)
            columns.append(filler.concat(bottom[name]))
    return DataFrame(columns)


def _match_rows(left: DataFrame, right: DataFrame, keys: Sequence[str]) -> Tuple:
    """Matched (left_indices, right_indices) pairs plus unmatched left row indices.

    Both sides' key columns are rendered as composite string keys, after which
    the match is a sorted-array lookup (searchsorted) — no per-row python
    loop.  Rows with a missing value in any key column never match.
    """
    left_keys, left_missing = _composite_keys(left, keys)
    right_keys, right_missing = _composite_keys(right, keys)

    left_positions = np.flatnonzero(~left_missing)
    right_present_positions = np.flatnonzero(~right_missing)
    left_values = left_keys[left_positions]
    right_values = right_keys[right_present_positions]

    order = np.argsort(right_values, kind="stable")
    sorted_right = right_values[order]
    right_positions = right_present_positions[order]

    start = np.searchsorted(sorted_right, left_values, side="left")
    stop = np.searchsorted(sorted_right, left_values, side="right")
    match_counts = stop - start
    matched_mask = match_counts > 0

    if matched_mask.any():
        counts = match_counts[matched_mask]
        starts = start[matched_mask]
        left_idx = np.repeat(left_positions[matched_mask], counts)
        # Positions into sorted_right for every match: each left row expands
        # to the run [start, stop) of its key, built without a python loop.
        offsets = np.arange(int(counts.sum())) - np.repeat(np.cumsum(counts) - counts, counts)
        gather = np.repeat(starts, counts) + offsets
        right_idx = right_positions[gather]
    else:
        left_idx = np.zeros(0, dtype=np.int64)
        right_idx = np.zeros(0, dtype=np.int64)

    unmatched = np.concatenate([
        left_positions[~matched_mask], np.flatnonzero(left_missing)
    ])
    unmatched.sort()
    return left_idx.astype(np.int64), right_idx.astype(np.int64), unmatched.astype(np.int64)


def _composite_keys(frame: DataFrame, keys: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Composite key per row plus a mask of rows with a missing key part.

    A single numeric key stays numeric (no string conversion — this is the
    common, hot case: the workload joins on ``item`` / ``store`` / ``county``);
    multi-column or categorical keys are rendered as '\\x1f'-joined strings.
    """
    missing = np.zeros(frame.num_rows, dtype=bool)
    for key in keys:
        missing |= frame[key].null_mask()

    if len(keys) == 1:
        column = frame[keys[0]]
        if column.is_numeric or column.is_boolean:
            values = column.values.astype(float)
            return np.where(missing, np.nan, values), missing

    parts = []
    for key in keys:
        column = frame[key]
        if column.is_numeric or column.is_boolean:
            parts.append(column.values.astype(float).astype("U32"))
        else:
            parts.append(np.asarray([str(v) for v in column.values], dtype=str))
    if not parts:
        combined = np.asarray([""] * frame.num_rows, dtype=str)
    else:
        combined = parts[0]
        for part in parts[1:]:
            combined = np.char.add(np.char.add(combined, "\x1f"), part)
    return combined, missing


def _null_column(name: str, template: Column, length: int) -> Column:
    """A column of ``length`` missing values with the same kind as ``template``."""
    if template.is_numeric:
        return Column(name, np.full(length, np.nan, dtype=float))
    return Column(name, np.asarray([None] * length, dtype=object), kind=template.kind)
