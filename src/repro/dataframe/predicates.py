"""Filter predicates for the dataframe substrate.

A predicate maps a :class:`~repro.dataframe.frame.DataFrame` to a boolean
numpy mask.  Predicates are small declarative objects so that EDA operations
(:class:`~repro.operators.operations.Filter`) can be described, inspected,
printed in captions, and re-applied to modified inputs — all of which the
FEDEX contribution computation relies on (it removes a set of rows and
re-runs the *same* operation).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from ..errors import OperationError

#: Comparison operators accepted by :class:`Comparison`.
OPERATORS = ("==", "!=", ">", ">=", "<", "<=")


class Predicate(ABC):
    """Base class of the predicate algebra."""

    @abstractmethod
    def mask(self, frame) -> np.ndarray:
        """Return a boolean array selecting the rows that satisfy the predicate."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering used in captions and reprs."""

    def signature(self) -> str:
        """Faithful content identity of the predicate, for cache keys.

        Unlike :meth:`describe` — which may summarise for readability —
        the signature must distinguish any two predicates that can select
        different rows.  The default delegates to :meth:`describe`, which
        is faithful for the scalar predicates; predicates whose description
        is lossy (:class:`RowIndexPredicate`) and the combinators (whose
        children may be lossy) override it.
        """
        return self.describe()

    # Combinators -----------------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class Comparison(Predicate):
    """``column <op> value`` comparison predicate."""

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in OPERATORS:
            raise OperationError(f"unsupported comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def mask(self, frame) -> np.ndarray:
        column = frame[self.column]
        values = column.values
        value = self.value
        if column.is_numeric:
            values = values.astype(float)
            value = float(value)
        if self.op == "==":
            return values == value
        if self.op == "!=":
            return values != value
        if self.op == ">":
            return values.astype(float) > float(value)
        if self.op == ">=":
            return values.astype(float) >= float(value)
        if self.op == "<":
            return values.astype(float) < float(value)
        return values.astype(float) <= float(value)

    def describe(self) -> str:
        value = f"{self.value!r}" if isinstance(self.value, str) else f"{self.value}"
        return f"{self.column} {self.op} {value}"


class IsIn(Predicate):
    """``column IN (v1, v2, ...)`` membership predicate."""

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        if not values:
            raise OperationError("IsIn requires at least one value")
        self.column = column
        self.values = list(values)

    def mask(self, frame) -> np.ndarray:
        column = frame[self.column]
        allowed = set(self.values)
        return np.asarray([v in allowed for v in column.tolist()], dtype=bool)

    def describe(self) -> str:
        return f"{self.column} in {self.values}"


class Between(Predicate):
    """``low <= column < high`` half-open interval predicate."""

    def __init__(self, column: str, low: float, high: float, inclusive_high: bool = False) -> None:
        self.column = column
        self.low = float(low)
        self.high = float(high)
        self.inclusive_high = inclusive_high

    def mask(self, frame) -> np.ndarray:
        values = frame[self.column].to_float()
        upper = values <= self.high if self.inclusive_high else values < self.high
        return (values >= self.low) & upper

    def describe(self) -> str:
        upper = "<=" if self.inclusive_high else "<"
        return f"{self.low} <= {self.column} {upper} {self.high}"


class IsNull(Predicate):
    """Rows whose value in ``column`` is missing."""

    def __init__(self, column: str) -> None:
        self.column = column

    def mask(self, frame) -> np.ndarray:
        return frame[self.column].null_mask()

    def describe(self) -> str:
        return f"{self.column} is null"


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, predicates: Sequence[Predicate]) -> None:
        if not predicates:
            raise OperationError("And requires at least one predicate")
        self.predicates = list(predicates)

    def mask(self, frame) -> np.ndarray:
        result = self.predicates[0].mask(frame)
        for predicate in self.predicates[1:]:
            result = result & predicate.mask(frame)
        return result

    def describe(self) -> str:
        return " and ".join(f"({p.describe()})" for p in self.predicates)

    def signature(self) -> str:
        return " and ".join(f"({p.signature()})" for p in self.predicates)


class Or(Predicate):
    """Disjunction of predicates."""

    def __init__(self, predicates: Sequence[Predicate]) -> None:
        if not predicates:
            raise OperationError("Or requires at least one predicate")
        self.predicates = list(predicates)

    def mask(self, frame) -> np.ndarray:
        result = self.predicates[0].mask(frame)
        for predicate in self.predicates[1:]:
            result = result | predicate.mask(frame)
        return result

    def describe(self) -> str:
        return " or ".join(f"({p.describe()})" for p in self.predicates)

    def signature(self) -> str:
        return " or ".join(f"({p.signature()})" for p in self.predicates)


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate

    def mask(self, frame) -> np.ndarray:
        return ~self.predicate.mask(frame)

    def describe(self) -> str:
        return f"not ({self.predicate.describe()})"

    def signature(self) -> str:
        return f"not ({self.predicate.signature()})"


class RowIndexPredicate(Predicate):
    """Select rows by explicit positional indices (used by interventions)."""

    def __init__(self, indices: Sequence[int]) -> None:
        self.indices = np.asarray(sorted(set(int(i) for i in indices)), dtype=np.int64)

    def mask(self, frame) -> np.ndarray:
        keep = np.zeros(frame.num_rows, dtype=bool)
        valid = self.indices[(self.indices >= 0) & (self.indices < frame.num_rows)]
        keep[valid] = True
        return keep

    def describe(self) -> str:
        return f"rows in explicit index set of size {len(self.indices)}"

    def signature(self) -> str:
        # The description summarises (index sets can be huge); the cache
        # identity must pin the exact rows selected.
        digest = hashlib.blake2b(self.indices.tobytes(), digest_size=16).hexdigest()
        return f"rows in explicit index set #{digest}"
