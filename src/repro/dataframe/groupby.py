"""Group-by and aggregation for the dataframe substrate.

The paper's workloads (Appendix A, Tables 2 and 3) use group-by with ``mean``,
``max``, ``min``, ``count`` and multi-column grouping keys, producing output
columns named ``<agg>_<column>`` (e.g. ``mean_loudness``).  This module
implements exactly that behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import ColumnError, OperationError
from .column import Column
from .frame import DataFrame

#: Aggregation functions supported by the substrate.
AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda values: float(np.mean(values)),
    "sum": lambda values: float(np.sum(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
    "median": lambda values: float(np.median(values)),
    "std": lambda values: float(np.std(values, ddof=1)) if values.size > 1 else 0.0,
    "count": lambda values: float(values.size),
}


def aggregation_column_name(agg: str, column: str) -> str:
    """Name of the output column for aggregation ``agg`` over ``column``."""
    return f"{agg}_{column}"


def composite_key_codes(frame: DataFrame, by: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Mixed-radix composite code per row plus a mask of rows with a missing key.

    Each key column is factorised to integer codes (cached on the column) and
    the codes are combined into one ``int64`` composite code; two rows share
    a composite code exactly when they agree on every key column.  Shared by
    :func:`group_indices` and the incremental contribution backend's group
    structure so the two grouping paths cannot drift apart.
    """
    n_rows = frame.num_rows
    combined = np.zeros(n_rows, dtype=np.int64)
    any_null = np.zeros(n_rows, dtype=bool)
    for name in by:
        codes, uniques = frame[name].factorize()
        any_null |= codes < 0
        cardinality = max(len(uniques), 1)
        combined = combined * cardinality + np.where(codes < 0, 0, codes)
    return combined, any_null


def group_indices(frame: DataFrame, by: Sequence[str]) -> Dict[Tuple, np.ndarray]:
    """Map each distinct key tuple to the array of row indices holding it.

    Keys are tuples even for single-column group-bys, to keep the downstream
    logic uniform.  Rows with a missing value in any key column are skipped,
    mirroring the usual relational group-by semantics.  The grouping is
    vectorised: each key column is factorised to integer codes, the codes are
    combined into one composite code, and rows are bucketed with a single
    stable argsort.
    """
    missing = [name for name in by if name not in frame]
    if missing:
        raise ColumnError(f"group-by columns not found: {missing}")
    n_rows = frame.num_rows
    if n_rows == 0:
        return {}

    combined, any_null = composite_key_codes(frame, by)
    valid = np.flatnonzero(~any_null)
    if valid.size == 0:
        return {}
    valid_codes = combined[valid]
    unique_codes, first_positions, inverse = np.unique(
        valid_codes, return_index=True, return_inverse=True
    )
    order = np.argsort(inverse, kind="stable")
    boundaries = np.cumsum(np.bincount(inverse, minlength=unique_codes.size))[:-1]
    groups = np.split(valid[order], boundaries)

    buckets: Dict[Tuple, np.ndarray] = {}
    for group_position, representative in enumerate(first_positions):
        row_index = int(valid[representative])
        key = tuple(frame[name][row_index] for name in by)
        buckets[key] = groups[group_position].astype(np.int64)
    return buckets


def groupby(frame: DataFrame, by: Sequence[str] | str,
            aggregations: Mapping[str, Sequence[str]] | None = None,
            include_count: bool = False) -> DataFrame:
    """Group ``frame`` by the key column(s) and aggregate.

    Parameters
    ----------
    frame:
        Input dataframe.
    by:
        Single column name or list of column names to group on.
    aggregations:
        Mapping from value-column name to the list of aggregation names to
        apply (e.g. ``{"loudness": ["mean"], "popularity": ["mean", "max"]}``).
        May be ``None`` when only a row count per group is requested.
    include_count:
        When True, an additional ``count`` column with the group sizes is
        added (this implements the paper's ``SELECT count ... GROUP BY ...``
        queries).

    Returns
    -------
    DataFrame
        One row per group; key columns first, then one column per
        (aggregation, value column) pair named ``<agg>_<column>``, then the
        optional ``count`` column.  Groups appear sorted by key for
        determinism.
    """
    key_columns = [by] if isinstance(by, str) else list(by)
    if not key_columns:
        raise OperationError("group-by requires at least one key column")
    aggregations = dict(aggregations or {})
    for value_column, agg_names in aggregations.items():
        if value_column not in frame:
            raise ColumnError(f"aggregated column {value_column!r} not found")
        for agg in agg_names:
            if agg not in AGGREGATIONS:
                raise OperationError(
                    f"unknown aggregation {agg!r}; supported: {sorted(AGGREGATIONS)}"
                )
    if not aggregations and not include_count:
        include_count = True

    buckets = group_indices(frame, key_columns)
    sorted_keys = sorted(buckets.keys(), key=_key_sort_token)

    # Key columns of the output.
    out_columns: List[Column] = []
    for position, name in enumerate(key_columns):
        values = [key[position] for key in sorted_keys]
        out_columns.append(Column(name, np.asarray(values, dtype=object)))

    # Aggregated columns.
    for value_column, agg_names in aggregations.items():
        source = frame[value_column]
        if not (source.is_numeric or source.is_boolean):
            # ``count`` is meaningful for categorical columns, other
            # aggregations are not.
            non_count = [a for a in agg_names if a != "count"]
            if non_count:
                raise OperationError(
                    f"cannot aggregate categorical column {value_column!r} with {non_count}"
                )
        for agg in agg_names:
            func = AGGREGATIONS[agg]
            values = []
            for key in sorted_keys:
                indices = buckets[key]
                if agg == "count":
                    values.append(float(indices.size))
                    continue
                bucket_values = source.values[indices].astype(float)
                bucket_values = bucket_values[~np.isnan(bucket_values)]
                values.append(func(bucket_values) if bucket_values.size else float("nan"))
            out_columns.append(
                Column(aggregation_column_name(agg, value_column), np.asarray(values, dtype=float))
            )

    if include_count:
        counts = [float(buckets[key].size) for key in sorted_keys]
        out_columns.append(Column("count", np.asarray(counts, dtype=float)))

    return DataFrame(out_columns)


def _key_sort_token(key: Tuple) -> Tuple:
    """Sort token that keeps mixed-type group keys orderable."""
    token = []
    for part in key:
        if isinstance(part, (int, float)) and not isinstance(part, bool):
            token.append((0, float(part), ""))
        else:
            token.append((1, 0.0, str(part)))
    return tuple(token)
