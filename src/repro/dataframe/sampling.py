"""Uniform row sampling.

The fedex-Sampling optimization (paper §3.7) computes interestingness scores
on a uniform sample of the input rows (default 5K) while the contribution is
still computed over all rows.  This module provides the sampling primitive,
plus a helper to over-sample (sample with replacement) which the scalability
experiments use to blow a dataset up to 10M rows (paper §4.1).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataFrameError
from .frame import DataFrame


def uniform_sample(frame: DataFrame, n: int, seed: int | None = None) -> DataFrame:
    """Uniform sample of ``n`` rows without replacement.

    If ``n`` is greater than or equal to the number of rows the frame is
    returned unchanged (no point in shuffling — the paper's sampling is only
    an approximation device).
    """
    if n < 0:
        raise DataFrameError(f"sample size must be non-negative, got {n}")
    if n >= frame.num_rows:
        return frame
    rng = np.random.default_rng(seed)
    indices = rng.choice(frame.num_rows, size=n, replace=False)
    indices.sort()
    return frame.take(indices)


def upsample_with_replacement(frame: DataFrame, target_rows: int, seed: int | None = None) -> DataFrame:
    """Grow a dataframe to ``target_rows`` rows by sampling rows with replacement.

    Mirrors the paper's scalability setup where the Products & Sales join view
    is padded with uniformly sampled duplicate rows up to 10M rows.
    """
    if target_rows < frame.num_rows:
        raise DataFrameError(
            f"target_rows ({target_rows}) must be >= current rows ({frame.num_rows}); "
            "use uniform_sample to shrink"
        )
    if target_rows == frame.num_rows or frame.num_rows == 0:
        return frame
    rng = np.random.default_rng(seed)
    extra = rng.integers(0, frame.num_rows, size=target_rows - frame.num_rows)
    indices = np.concatenate([np.arange(frame.num_rows), extra])
    return frame.take(indices)


def stratified_sample(frame: DataFrame, by: str, per_group: int, seed: int | None = None) -> DataFrame:
    """Sample up to ``per_group`` rows from every distinct value of column ``by``.

    Not used by the core algorithm, but handy for building small test fixtures
    that preserve every category of a skewed column.
    """
    from .groupby import group_indices

    rng = np.random.default_rng(seed)
    chosen = []
    for _, indices in sorted(group_indices(frame, [by]).items(), key=lambda item: str(item[0])):
        if indices.size <= per_group:
            chosen.append(indices)
        else:
            chosen.append(rng.choice(indices, size=per_group, replace=False))
    if not chosen:
        return frame.head(0)
    all_indices = np.sort(np.concatenate(chosen))
    return frame.take(all_indices)
