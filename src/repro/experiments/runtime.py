"""Runtime scalability experiments (paper Figures 9 and 10).

Figure 9 measures explanation-generation time as a function of the number of
*columns* in the dataset (rows fixed) for fedex-Sampling, SeeDB, and Rath;
Figure 10 measures it as a function of the number of *rows* (all columns).
The absolute numbers depend on the hardware and on the substrate (the paper
ran on pandas/NumPy on a laptop; this repo runs its own dataframe engine), so
the quantity of interest is the *shape*: how each system scales and where the
crossovers are.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.common import BaselineSystem
from ..baselines.fedex_adapter import fedex_system
from ..baselines.rath import RathInsights
from ..baselines.seedb import SeeDB
from ..core.config import FedexConfig
from ..core.engine import FedexExplainer
from ..dataframe.frame import DataFrame
from ..datasets.registry import DatasetRegistry
from ..operators.operations import GroupBy
from ..operators.step import ExploratoryStep
from ..workloads.queries import WorkloadQuery, get_query


def time_system(system: BaselineSystem, step: ExploratoryStep, repetitions: int = 1,
                timeout_seconds: Optional[float] = None) -> Optional[float]:
    """Mean wall-clock seconds the system needs to explain the step.

    Returns ``None`` when the system does not support the step or when a
    single run exceeds ``timeout_seconds`` (mirroring the paper's treatment of
    Rath timing out / running out of memory on the largest datasets).
    """
    if not system.supports(step):
        return None
    durations: List[float] = []
    for _ in range(max(repetitions, 1)):
        started = time.perf_counter()
        system.explain(step)
        elapsed = time.perf_counter() - started
        if timeout_seconds is not None and elapsed > timeout_seconds:
            return None
        durations.append(elapsed)
    return float(np.mean(durations))


def default_runtime_systems(sample_size: int = 5_000) -> List[BaselineSystem]:
    """The systems compared in Figure 9 / Figure 10."""
    return [fedex_system(sample_size=sample_size, name="FEDEX-Sampling"), SeeDB(), RathInsights()]


def column_scaling_sweep(registry: DatasetRegistry, dataset: str,
                         query_numbers: Sequence[int],
                         column_counts: Sequence[int] | None = None,
                         systems: Sequence[BaselineSystem] | None = None,
                         repetitions: int = 1, seed: int = 0,
                         timeout_seconds: Optional[float] = None) -> List[Dict]:
    """Figure 9: runtime as a function of the number of columns.

    Following §4.3, the column subsets always contain the attribute the query
    needs and the most interesting attribute; the remaining columns are added
    in a fixed random permutation.
    """
    systems = list(systems) if systems is not None else default_runtime_systems()
    rows: List[Dict] = []
    for number in query_numbers:
        query = get_query(number)
        if query.dataset != dataset:
            continue
        full_step = query.build_step(registry)
        ordered_columns = _column_order(full_step, seed=seed)
        counts = column_counts or _default_column_counts(len(ordered_columns))
        for count in counts:
            kept = ordered_columns[: max(2, min(count, len(ordered_columns)))]
            step = _project_step(full_step, kept)
            for system in systems:
                seconds = time_system(system, step, repetitions=repetitions,
                                      timeout_seconds=timeout_seconds)
                rows.append({
                    "dataset": dataset,
                    "query": number,
                    "columns": len(kept),
                    "system": system.name,
                    "seconds": seconds,
                })
    return rows


def row_scaling_sweep(registry_factory: Callable[[int], DatasetRegistry],
                      row_counts: Sequence[int], query_numbers: Sequence[int],
                      systems: Sequence[BaselineSystem] | None = None,
                      include_exact_fedex: bool = True,
                      repetitions: int = 1,
                      timeout_seconds: Optional[float] = None) -> List[Dict]:
    """Figure 10: runtime as a function of the number of rows.

    ``registry_factory`` maps the requested row count to a registry whose
    tables have (roughly) that many rows.  When ``include_exact_fedex`` is
    set, exact fedex (no sampling) is timed alongside the configured systems,
    which is the comparison Figure 10 draws for the two fedex variants.
    """
    rows: List[Dict] = []
    for row_count in row_counts:
        registry = registry_factory(row_count)
        for number in query_numbers:
            query = get_query(number)
            step = query.build_step(registry)
            measured_systems = list(systems) if systems is not None else default_runtime_systems()
            if include_exact_fedex:
                measured_systems = [fedex_system(sample_size=None, name="FEDEX")] + measured_systems
            for system in measured_systems:
                seconds = time_system(system, step, repetitions=repetitions,
                                      timeout_seconds=timeout_seconds)
                rows.append({
                    "rows": row_count,
                    "query": number,
                    "kind": query.kind,
                    "dataset": query.dataset,
                    "system": system.name,
                    "seconds": seconds,
                })
    return rows


def average_by(rows: Sequence[Dict], group_columns: Sequence[str], value: str = "seconds") -> List[Dict]:
    """Average the value column over all rows sharing the group columns (None skipped)."""
    buckets: Dict[tuple, List[float]] = {}
    order: List[tuple] = []
    for row in rows:
        key = tuple(row[column] for column in group_columns)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        if row.get(value) is not None:
            buckets[key].append(float(row[value]))
    averaged = []
    for key in order:
        values = buckets[key]
        entry = {column: part for column, part in zip(group_columns, key)}
        entry[value] = float(np.mean(values)) if values else None
        entry["n"] = len(values)
        averaged.append(entry)
    return averaged


# ------------------------------------------------------------------------- helpers
def _column_order(step: ExploratoryStep, seed: int) -> List[str]:
    """Fixed column order: query attribute, most interesting attribute, then a permutation."""
    frame = step.primary_input
    config = FedexConfig(sample_size=5_000, seed=seed)
    scores = FedexExplainer(config).score_columns(step)
    required = _required_columns(step)
    most_interesting = max(scores, key=scores.get) if scores else None
    head = [name for name in dict.fromkeys(required + ([most_interesting] if most_interesting else []))
            if name is not None and name in frame]
    rest = [name for name in frame.column_names if name not in head]
    rng = np.random.default_rng(seed)
    rng.shuffle(rest)
    return head + rest


def _required_columns(step: ExploratoryStep) -> List[str]:
    operation = step.operation
    required: List[str] = []
    predicate = getattr(operation, "predicate", None)
    if predicate is not None:
        required.extend(_predicate_columns(predicate))
    if isinstance(operation, GroupBy):
        required.extend(operation.keys)
        required.extend(operation.aggregations.keys())
        if operation.pre_filter is not None:
            required.extend(_predicate_columns(operation.pre_filter))
    for attr in ("on",):
        keys = getattr(operation, attr, None)
        if keys:
            required.extend(keys)
    return required


def _predicate_columns(predicate) -> List[str]:
    columns = []
    if hasattr(predicate, "column"):
        columns.append(predicate.column)
    for nested in getattr(predicate, "predicates", []) or []:
        columns.extend(_predicate_columns(nested))
    nested = getattr(predicate, "predicate", None)
    if nested is not None:
        columns.extend(_predicate_columns(nested))
    return columns


def _project_step(step: ExploratoryStep, columns: Sequence[str]) -> ExploratoryStep:
    """The same step with every input projected onto the kept columns."""
    projected_inputs: List[DataFrame] = []
    for frame in step.inputs:
        present = [name for name in columns if name in frame]
        # Keep join/union steps well-formed: every input keeps at least the
        # columns the operation itself needs.
        needed = [name for name in _required_columns(step) if name in frame and name not in present]
        projected_inputs.append(frame.select(present + needed) if (present + needed) else frame)
    return ExploratoryStep(projected_inputs, step.operation, label=step.label)


def _default_column_counts(total_columns: int) -> List[int]:
    counts = [2, 4, 8, 12, 16, 20, 26, 33]
    return sorted({min(count, total_columns) for count in counts})
