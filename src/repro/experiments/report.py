"""Result-table formatting for the experiment harnesses.

Every experiment returns plain data (lists of dict rows); these helpers print
them as aligned text tables so the benchmark runs produce the same kind of
rows/series the paper's figures report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str] | None = None,
                 title: str | None = None, float_format: str = "{:.3f}") -> str:
    """Format a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [[_format_cell(row.get(column), float_format) for column in columns]
                                 for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    ]
    lines = ([title, ""] if title else []) + [header, separator] + body
    return "\n".join(lines)


def print_table(rows: Sequence[Dict], columns: Sequence[str] | None = None,
                title: str | None = None) -> None:
    """Print a formatted table (convenience for benchmark harnesses)."""
    print(format_table(rows, columns=columns, title=title))
    print()


def pivot_series(rows: Sequence[Dict], index: str, series: str, value: str) -> List[Dict]:
    """Pivot long-form rows into one row per ``index`` with one column per ``series``."""
    ordered_index: List = []
    table: Dict = {}
    series_names: List[str] = []
    for row in rows:
        key = row[index]
        if key not in table:
            table[key] = {index: key}
            ordered_index.append(key)
        name = str(row[series])
        if name not in series_names:
            series_names.append(name)
        table[key][name] = row[value]
    return [table[key] for key in ordered_index]


def _format_cell(value, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)
