"""Contribution vs number of sets-of-rows (paper Figure 11).

For a fixed query and a fixed explained column, the experiment varies the
number of sets-of-rows the partitioners produce and records the best raw
contribution score found.  The paper observes no monotone trend — the optimal
partition granularity depends on the query and the attribute — and settles on
5 or 10 sets for readability; this harness reproduces that series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import FedexConfig
from ..core.engine import FedexExplainer
from ..datasets.registry import DatasetRegistry
from ..workloads.queries import get_query

#: Queries shown in Figure 11: query 1 (Products & Sales join), query 7 (Spotify filter).
FIG11_QUERY_NUMBERS = (1, 7)

#: The sets-of-rows counts swept in Figure 11.
DEFAULT_SET_COUNTS = (2, 3, 5, 8, 10, 15, 20)


def sets_of_rows_sweep(registry: DatasetRegistry,
                       query_numbers: Sequence[int] = FIG11_QUERY_NUMBERS,
                       set_counts: Sequence[int] = DEFAULT_SET_COUNTS,
                       sample_size: Optional[int] = 5_000,
                       attribute: Optional[str] = None, seed: int = 0) -> List[Dict]:
    """Figure 11: best contribution score per number of sets-of-rows.

    For every query the explained column is held fixed (the most interesting
    column of the default run, or ``attribute`` when given) so that only the
    partition granularity varies, exactly as in the paper's setup.
    """
    rows: List[Dict] = []
    for number in query_numbers:
        query = get_query(number)
        step = query.build_step(registry)
        baseline_report = FedexExplainer(
            FedexConfig(sample_size=sample_size, seed=seed)
        ).explain(step)
        fixed_attribute = attribute
        if fixed_attribute is None:
            if baseline_report.selected_columns:
                fixed_attribute = baseline_report.selected_columns[0]
            else:
                continue
        for count in set_counts:
            config = FedexConfig(
                sample_size=sample_size,
                set_counts=(count,),
                target_columns=[fixed_attribute],
                seed=seed,
            )
            report = FedexExplainer(config).explain(step)
            candidates = [c for c in report.all_candidates if c.attribute == fixed_attribute]
            best_contribution = max((c.contribution for c in candidates), default=0.0)
            best_standardized = max((c.standardized_contribution for c in candidates), default=0.0)
            rows.append({
                "query": number,
                "dataset": query.dataset,
                "attribute": fixed_attribute,
                "sets_of_rows": count,
                "best_contribution": best_contribution,
                "best_standardized_contribution": best_standardized,
                "candidates": len(candidates),
            })
    return rows
