"""Simulated user studies (paper Figures 3, 4, 5, and 6).

The paper evaluates explanation quality with human studies.  Humans are not
available in this offline reproduction, so the studies are *simulated* with an
explicit, documented judge model — the goal is to check the relative ordering
of the systems (Expert ≥ FEDEX > IO > SeeDB / Rath, and assisted EDA finding
more insights than unassisted EDA), not to reproduce absolute Likert values.

Judge model
-----------
Ground truth for a query is computed by an exact FEDEX run (no sampling,
wide column budget): the ranking of output columns by interestingness and,
per column, the sets-of-rows with the highest standardized contribution.  An artefact produced by any system is
scored on three 1–7 scales:

* *insight* and *usefulness* — how well the artefact's claim (which column it
  talks about, which value/set-of-rows it highlights) aligns with the ground
  truth; claims about uninteresting columns or without any row-set grounding
  score low,
* *coherency* — a modality prior reflecting the paper's own observation that
  visualization-only artefacts are harder to interpret: narrative text scores
  highest, hybrid text+chart slightly lower, chart-only much lower.

The self-alignment caveat (FEDEX is scored against ground truth produced by
an exhaustive FEDEX run) is inherent to simulation and is documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.common import BaselineExplanation, BaselineSystem
from ..baselines.expert import ExpertBaseline
from ..baselines.fedex_adapter import fedex_system
from ..baselines.interestingness_only import InterestingnessOnly
from ..baselines.rath import RathInsights
from ..baselines.seedb import SeeDB
from ..core.config import FedexConfig
from ..core.engine import FedexExplainer
from ..datasets.registry import DatasetRegistry, small_registry
from ..operators.step import ExploratoryStep
from ..workloads.queries import NOTEBOOK_QUERIES, get_query

#: Coherency priors by artefact modality (1–7 scale).
COHERENCY_TEXT_ONLY = 6.2
COHERENCY_HYBRID = 5.8
COHERENCY_CHART_ONLY = 3.2
COHERENCY_EMPTY = 1.5

#: Unassisted-EDA simulation parameters (Figure 5): one exploratory step takes
#: ~75 seconds and yields a task-relevant insight with the per-dataset
#: probability below (the Spotify task is the easier of the two).
UNASSISTED_SECONDS_PER_STEP = 75.0
UNASSISTED_INSIGHT_PROBABILITY = {"spotify": 0.30, "bank": 0.125}
STUDY_MINUTES = 10.0


@dataclass
class GroundTruth:
    """Ground-truth signals of one query, derived from exhaustive exact FEDEX."""

    column_ranking: List[str]
    interestingness: Dict[str, float]
    row_sets: Dict[str, List[Tuple[str, str, float]]] = field(default_factory=dict)

    def column_score(self, column: Optional[str]) -> float:
        """Alignment of a claimed column with the interestingness ranking."""
        if column is None or column not in self.interestingness:
            return 0.0
        if column in self.column_ranking:
            rank = self.column_ranking.index(column)
            if rank == 0:
                return 1.0
            if rank == 1:
                return 0.8
            if rank == 2:
                return 0.6
        return 0.4 if self.interestingness.get(column, 0.0) > 0 else 0.0

    def row_set_score(self, column: Optional[str], value: Optional[str]) -> float:
        """Alignment of a highlighted value with the top contributing sets-of-rows."""
        if value is None:
            return 0.0
        if column is not None and self._matches_any(self.row_sets.get(column, []), value):
            return 1.0
        for other_column, row_sets in self.row_sets.items():
            if other_column != column and self._matches_any(row_sets, value):
                return 0.3
        return 0.1

    @staticmethod
    def _matches_any(row_sets: List[Tuple[str, str, float]], value: str) -> bool:
        return any(_labels_match(label, value) for _, label, _ in row_sets)


class SimulatedJudge:
    """Scores artefacts of any system against FEDEX-exhaustive ground truth."""

    def __init__(self, seed: int = 17, ground_truth_top_k: int = 5) -> None:
        self._rng = np.random.default_rng(seed)
        self._ground_truth_top_k = ground_truth_top_k
        config = FedexConfig(sample_size=None, top_k_columns=8, top_k_explanations=None)
        self._explainer = FedexExplainer(config=config)

    def ground_truth(self, step: ExploratoryStep) -> GroundTruth:
        """Build the ground-truth signals for one exploratory step."""
        report = self._explainer.explain(step)
        ranking = sorted(report.interestingness_scores.items(), key=lambda item: (-item[1], item[0]))
        column_ranking = [column for column, score in ranking if score > 0]
        row_sets: Dict[str, List[Tuple[str, str, float]]] = {}
        ranked_candidates = report.ranked_candidates()
        for candidate in ranked_candidates:
            bucket = row_sets.setdefault(candidate.attribute, [])
            if len(bucket) < self._ground_truth_top_k:
                bucket.append((
                    candidate.row_set.label_attribute,
                    candidate.row_set.label,
                    candidate.standardized_contribution,
                ))
        return GroundTruth(
            column_ranking=column_ranking,
            interestingness=dict(report.interestingness_scores),
            row_sets=row_sets,
        )

    def score(self, artefact: BaselineExplanation, ground_truth: GroundTruth) -> Dict[str, float]:
        """1–7 coherency / insight / usefulness scores of one artefact."""
        column_alignment = ground_truth.column_score(artefact.target_column)
        row_alignment = ground_truth.row_set_score(artefact.target_column, artefact.highlighted_value)

        insight = 1.0 + 6.0 * (0.45 * column_alignment + 0.55 * row_alignment)
        usefulness = 1.0 + 6.0 * (0.55 * column_alignment + 0.45 * row_alignment)
        if artefact.is_hybrid:
            coherency = COHERENCY_HYBRID
        elif artefact.has_text:
            coherency = COHERENCY_TEXT_ONLY
        elif artefact.has_visualization:
            coherency = COHERENCY_CHART_ONLY
        else:
            coherency = COHERENCY_EMPTY
        coherency = float(np.clip(coherency + self._rng.uniform(-0.3, 0.3), 1.0, 7.0))
        return {
            "coherency": coherency,
            "insight": float(np.clip(insight + self._rng.uniform(-0.3, 0.3), 1.0, 7.0)),
            "usefulness": float(np.clip(usefulness + self._rng.uniform(-0.3, 0.3), 1.0, 7.0)),
        }


def default_systems(sample_size: int = 5_000) -> List[BaselineSystem]:
    """The systems compared in the first user study (Figure 3)."""
    return [
        ExpertBaseline(),
        fedex_system(sample_size=sample_size, name="FEDEX"),
        InterestingnessOnly(),
        SeeDB(),
        RathInsights(),
    ]


def run_user_study(registry: DatasetRegistry | None = None,
                   systems: Sequence[BaselineSystem] | None = None,
                   notebooks: Dict[str, List[int]] | None = None,
                   artefacts_per_query: int = 2,
                   seed: int = 17) -> List[Dict]:
    """Figure 3: per-dataset, per-system coherency / insight / usefulness scores.

    Returns long-form rows ``{dataset, system, coherency, insight, usefulness,
    average, queries, generation_seconds}``.
    """
    registry = registry or small_registry()
    systems = list(systems) if systems is not None else default_systems()
    notebooks = notebooks or NOTEBOOK_QUERIES
    judge = SimulatedJudge(seed=seed)

    rows: List[Dict] = []
    for dataset, query_numbers in notebooks.items():
        steps = [get_query(number).build_step(registry) for number in query_numbers]
        truths = [judge.ground_truth(step) for step in steps]
        for system in systems:
            scores: List[Dict[str, float]] = []
            generation_seconds = 0.0
            for step, truth in zip(steps, truths):
                if not system.supports(step):
                    continue
                started = time.perf_counter()
                artefacts = system.explain(step, top_k=artefacts_per_query)
                generation_seconds += time.perf_counter() - started
                for artefact in artefacts[:artefacts_per_query]:
                    scores.append(judge.score(artefact, truth))
            if not scores:
                continue
            row = {
                "dataset": dataset,
                "system": system.name,
                "coherency": float(np.mean([s["coherency"] for s in scores])),
                "insight": float(np.mean([s["insight"] for s in scores])),
                "usefulness": float(np.mean([s["usefulness"] for s in scores])),
                "queries": len(steps),
                "generation_seconds": generation_seconds,
            }
            row["average"] = float(np.mean([row["coherency"], row["insight"], row["usefulness"]]))
            rows.append(row)
    return rows


def run_generation_time_study(registry: DatasetRegistry | None = None,
                              notebooks: Dict[str, List[int]] | None = None,
                              sample_size: int = 5_000, seed: int = 17) -> List[Dict]:
    """Figure 4: explanation generation time, FEDEX vs the (simulated) expert."""
    registry = registry or small_registry()
    notebooks = notebooks or NOTEBOOK_QUERIES
    fedex = fedex_system(sample_size=sample_size, name="FEDEX")
    expert = ExpertBaseline(seed=seed)

    rows: List[Dict] = []
    for dataset, query_numbers in notebooks.items():
        for number in query_numbers:
            step = get_query(number).build_step(registry)
            started = time.perf_counter()
            fedex.explain(step)
            fedex_seconds = time.perf_counter() - started
            expert.explain(step)
            rows.append({
                "dataset": dataset,
                "query": number,
                "fedex_seconds": fedex_seconds,
                "expert_seconds": expert.last_authoring_seconds,
                "speedup": expert.last_authoring_seconds / max(fedex_seconds, 1e-9),
            })
    return rows


def run_interactive_study(registry: DatasetRegistry | None = None,
                          sample_size: int = 5_000, seed: int = 17) -> List[Dict]:
    """Figure 5: number of task-relevant insights found with vs without FEDEX.

    The unassisted arm is a simulation: a participant performs one exploratory
    step every ``UNASSISTED_SECONDS_PER_STEP`` seconds and each step yields a
    task-relevant insight with the per-dataset probability above.  The
    assisted arm adds the *actual* distinct, ground-truth-aligned explanations
    FEDEX produces for the notebook's queries (each explanation read counts as
    one insight, as in the paper's counting protocol).
    """
    registry = registry or small_registry()
    judge = SimulatedJudge(seed=seed)
    rng = np.random.default_rng(seed)
    steps_in_session = int(STUDY_MINUTES * 60.0 / UNASSISTED_SECONDS_PER_STEP)
    fedex = fedex_system(sample_size=sample_size, name="FEDEX")

    rows: List[Dict] = []
    for dataset in ("bank", "spotify"):
        probability = UNASSISTED_INSIGHT_PROBABILITY[dataset]
        unassisted = float(rng.binomial(steps_in_session, probability))

        query_numbers = NOTEBOOK_QUERIES[dataset]
        revealed: set = set()
        for number in query_numbers:
            step = get_query(number).build_step(registry)
            truth = judge.ground_truth(step)
            for artefact in fedex.explain(step, top_k=2):
                aligned = (
                    truth.column_score(artefact.target_column) >= 0.6
                    and truth.row_set_score(artefact.target_column, artefact.highlighted_value) >= 1.0
                )
                if aligned:
                    revealed.add((artefact.target_column, artefact.highlighted_value))
        assisted = unassisted + len(revealed)
        rows.append({"dataset": dataset, "mode": "unassisted", "insights": unassisted})
        rows.append({"dataset": dataset, "mode": "fedex-assisted", "insights": assisted})
    return rows


def run_augmented_baselines_study(registry: DatasetRegistry | None = None,
                                  seed: int = 17, artefacts_per_query: int = 2) -> List[Dict]:
    """Figure 6: SeeDB/Rath augmented with expert captions, vs FEDEX (Bank notebook)."""
    registry = registry or small_registry()
    judge = SimulatedJudge(seed=seed)
    systems: List[BaselineSystem] = [
        fedex_system(sample_size=5_000, name="FEDEX"),
        SeeDB(),
        RathInsights(),
    ]
    steps = [get_query(number).build_step(registry) for number in NOTEBOOK_QUERIES["bank"]]
    truths = [judge.ground_truth(step) for step in steps]

    rows: List[Dict] = []
    for system in systems:
        scores: List[Dict[str, float]] = []
        for step, truth in zip(steps, truths):
            if not system.supports(step):
                continue
            artefacts = system.explain(step, top_k=artefacts_per_query)
            for artefact in artefacts[:artefacts_per_query]:
                if system.name != "FEDEX" and not artefact.has_text:
                    artefact.caption = _augmented_caption(artefact)
                scores.append(judge.score(artefact, truth))
        if not scores:
            continue
        label = system.name if system.name == "FEDEX" else f"{system.name}+text"
        rows.append({
            "system": label,
            "coherency": float(np.mean([s["coherency"] for s in scores])),
            "insight": float(np.mean([s["insight"] for s in scores])),
            "usefulness": float(np.mean([s["usefulness"] for s in scores])),
            "average": float(np.mean([list(s.values()) for s in scores])),
        })
    return rows


def _augmented_caption(artefact: BaselineExplanation) -> str:
    """The expert-written caption added to a visualization-only baseline artefact."""
    subject = artefact.target_column or "the result"
    highlight = f", with '{artefact.highlighted_value}' standing out" if artefact.highlighted_value else ""
    return f"This view summarises {subject} in the query result{highlight}."


def _labels_match(ground_truth_label: str, value: str) -> bool:
    """Whether a highlighted value names the same thing as a ground-truth set label."""
    first = str(ground_truth_label).strip().lower()
    second = str(value).strip().lower()
    if first == second:
        return True
    first_number = _try_float(first)
    second_number = _try_float(second)
    if first_number is not None and second_number is not None:
        return abs(first_number - second_number) < 1e-9
    # Interval labels like "[1960, 1965)" match any value inside the interval.
    if first.startswith("[") and ("," in first) and second_number is not None:
        bounds = first.strip("[]()").split(",")
        low, high = _try_float(bounds[0]), _try_float(bounds[1])
        if low is not None and high is not None:
            return low <= second_number <= high
    return False


def _try_float(text: str) -> Optional[float]:
    try:
        return float(text)
    except (TypeError, ValueError):
        return None
