"""Accuracy of fedex-Sampling w.r.t. exact fedex (paper Figures 7 and 8).

Exact fedex (no sampling) is the ground truth; fedex-Sampling is run with a
range of sample sizes (Figure 7) or with a fixed 5K sample on growing data
(Figure 8), and the two explanation sets are compared with:

* precision@k of the skyline explanation set (k = 3, as in the paper),
* the Kendall-tau distance between the two candidate rankings,
* the nDCG of the sampled ranking, with the exact weighted scores as graded
  relevance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.config import FedexConfig
from ..core.engine import ExplanationReport, FedexExplainer
from ..datasets.registry import DatasetRegistry
from ..stats.ranking import kendall_tau_distance, ndcg, precision_at_k
from ..workloads.queries import WorkloadQuery, get_query

#: The sample sizes swept in Figure 7.
DEFAULT_SAMPLE_SIZES = (50, 200, 1_000, 5_000, 10_000, 20_000, 50_000)

#: Queries averaged in Figure 7 (Spotify + Products filter/join and group-by).
FIG7_QUERY_NUMBERS = (1, 4, 5, 6, 7, 8, 9, 10, 16, 18, 19, 21, 22, 23, 24, 25)

#: Queries averaged in Figure 8 (Products filter/join queries).
FIG8_QUERY_NUMBERS = (1, 4, 5)


def compare_reports(exact: ExplanationReport, sampled: ExplanationReport, k: int = 3) -> Dict[str, float]:
    """Accuracy metrics of a sampled report against the exact report.

    Candidate keys are de-duplicated (different partition granularities can
    rediscover the same set-of-rows) so the ranking metrics compare each
    distinct explanation once.
    """
    exact_skyline = _dedupe(exact.skyline_keys())
    sampled_skyline = _dedupe(sampled.skyline_keys())
    exact_ranking = _dedupe([candidate.key() for candidate in exact.ranked_candidates()])
    sampled_ranking = _dedupe([candidate.key() for candidate in sampled.ranked_candidates()])
    relevance: Dict = {}
    for candidate in exact.ranked_candidates():
        key = candidate.key()
        score = max(candidate.weighted_score(1.0, 1.0), 0.0)
        relevance[key] = max(relevance.get(key, 0.0), score)
    return {
        "precision_at_k": precision_at_k(sampled_skyline, exact_skyline, k=k),
        "kendall_tau": float(kendall_tau_distance(sampled_ranking, exact_ranking)),
        "ndcg": ndcg(sampled_ranking, relevance, k=max(len(exact_ranking), 1)),
    }


def _dedupe(items: Sequence) -> List:
    """Drop repeated items while preserving the first-occurrence order."""
    seen: set = set()
    unique: List = []
    for item in items:
        if item in seen:
            continue
        seen.add(item)
        unique.append(item)
    return unique


def sampling_accuracy_sweep(registry: DatasetRegistry,
                            query_numbers: Sequence[int] = FIG7_QUERY_NUMBERS,
                            sample_sizes: Sequence[int] = DEFAULT_SAMPLE_SIZES,
                            k: int = 3, seed: int = 0) -> List[Dict]:
    """Figure 7: accuracy of fedex-Sampling as a function of the sample size.

    Returns long-form rows ``{sample_size, query, precision_at_k, kendall_tau,
    ndcg}`` plus per-sample-size averages (query = "mean").
    """
    rows: List[Dict] = []
    exact_reports: Dict[int, ExplanationReport] = {}
    steps = {}
    for number in query_numbers:
        query = get_query(number)
        step = query.build_step(registry)
        steps[number] = step
        exact_reports[number] = FedexExplainer(FedexConfig(sample_size=None, seed=seed)).explain(step)

    for sample_size in sample_sizes:
        per_query_metrics: List[Dict[str, float]] = []
        for number in query_numbers:
            sampled_report = FedexExplainer(
                FedexConfig(sample_size=sample_size, seed=seed)
            ).explain(steps[number])
            metrics = compare_reports(exact_reports[number], sampled_report, k=k)
            per_query_metrics.append(metrics)
            rows.append({"sample_size": sample_size, "query": number, **metrics})
        rows.append({
            "sample_size": sample_size,
            "query": "mean",
            "precision_at_k": float(np.mean([m["precision_at_k"] for m in per_query_metrics])),
            "kendall_tau": float(np.mean([m["kendall_tau"] for m in per_query_metrics])),
            "ndcg": float(np.mean([m["ndcg"] for m in per_query_metrics])),
        })
    return rows


def rows_accuracy_sweep(registry_factory, row_counts: Sequence[int],
                        query_numbers: Sequence[int] = FIG8_QUERY_NUMBERS,
                        sample_size: int = 5_000, k: int = 3, seed: int = 0) -> List[Dict]:
    """Figure 8: accuracy of fedex-Sampling (5K sample) for growing data sizes.

    ``registry_factory`` maps a row count to a :class:`DatasetRegistry` whose
    Products & Sales view has (roughly) that many rows; the sweep re-runs the
    exact and the sampled engines at every size.
    """
    rows: List[Dict] = []
    for row_count in row_counts:
        registry = registry_factory(row_count)
        per_query_metrics: List[Dict[str, float]] = []
        for number in query_numbers:
            step = get_query(number).build_step(registry)
            exact_report = FedexExplainer(FedexConfig(sample_size=None, seed=seed)).explain(step)
            sampled_report = FedexExplainer(
                FedexConfig(sample_size=sample_size, seed=seed)
            ).explain(step)
            metrics = compare_reports(exact_report, sampled_report, k=k)
            per_query_metrics.append(metrics)
            rows.append({"rows": row_count, "query": number, **metrics})
        rows.append({
            "rows": row_count,
            "query": "mean",
            "precision_at_k": float(np.mean([m["precision_at_k"] for m in per_query_metrics])),
            "kendall_tau": float(np.mean([m["kendall_tau"] for m in per_query_metrics])),
            "ndcg": float(np.mean([m["ndcg"] for m in per_query_metrics])),
        })
    return rows


def mean_rows(rows: Sequence[Dict], axis_column: str) -> List[Dict]:
    """Only the per-axis-value averages (query == "mean") of a sweep result."""
    return [row for row in rows if row.get("query") == "mean"]
