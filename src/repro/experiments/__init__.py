"""Experiment harnesses regenerating every table and figure of the paper's evaluation."""

from .accuracy import (
    DEFAULT_SAMPLE_SIZES,
    FIG7_QUERY_NUMBERS,
    FIG8_QUERY_NUMBERS,
    compare_reports,
    mean_rows,
    rows_accuracy_sweep,
    sampling_accuracy_sweep,
)
from .report import format_table, pivot_series, print_table
from .runtime import (
    average_by,
    column_scaling_sweep,
    default_runtime_systems,
    row_scaling_sweep,
    time_system,
)
from .setsofrows import DEFAULT_SET_COUNTS as FIG11_SET_COUNTS
from .setsofrows import FIG11_QUERY_NUMBERS, sets_of_rows_sweep
from .user_study import (
    GroundTruth,
    SimulatedJudge,
    default_systems,
    run_augmented_baselines_study,
    run_generation_time_study,
    run_interactive_study,
    run_user_study,
)

__all__ = [
    "DEFAULT_SAMPLE_SIZES",
    "FIG11_QUERY_NUMBERS",
    "FIG11_SET_COUNTS",
    "FIG7_QUERY_NUMBERS",
    "FIG8_QUERY_NUMBERS",
    "GroundTruth",
    "SimulatedJudge",
    "average_by",
    "column_scaling_sweep",
    "compare_reports",
    "default_runtime_systems",
    "default_systems",
    "format_table",
    "mean_rows",
    "pivot_series",
    "print_table",
    "row_scaling_sweep",
    "rows_accuracy_sweep",
    "run_augmented_baselines_study",
    "run_generation_time_study",
    "run_interactive_study",
    "run_user_study",
    "sampling_accuracy_sweep",
    "sets_of_rows_sweep",
    "time_system",
]
