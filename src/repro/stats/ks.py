"""Two-sample Kolmogorov–Smirnov statistic.

The paper's exceptionality measure (Eq. 1) is ``KS(Pr(d_in[A]), Pr(d_out[A]))``
— the two-sample KS statistic between the value distributions of a column
before and after the EDA operation.  We implement two flavours:

* :func:`ks_from_distributions` — KS distance between two already-computed
  discrete :class:`~repro.stats.distributions.ValueDistribution` objects
  (this is the form the paper uses: distributions are over relative value
  frequencies, and both numeric and categorical columns are supported by
  ordering the shared value domain).
* :func:`ks_two_sample` — the classic two-sample KS statistic on raw numeric
  samples, provided for completeness and cross-checked against SciPy in the
  test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dataframe.column import Column
from .distributions import ValueDistribution, aligned_cdfs


def ks_from_distributions(first: ValueDistribution, second: ValueDistribution) -> float:
    """KS distance (sup of |CDF1 - CDF2|) between two discrete distributions.

    Returns 0 when either distribution is empty: an empty output column tells
    us nothing about the deviation, and a 0 interestingness score makes FEDEX
    ignore that column, which matches the intended behaviour.
    """
    if not first or not second:
        return 0.0
    cdf_first, cdf_second = aligned_cdfs(first, second)
    if cdf_first.size == 0:
        return 0.0
    return float(np.max(np.abs(cdf_first - cdf_second)))


def ks_two_sample(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Classic two-sample KS statistic on raw numeric samples.

    Both samples are treated as empirical distributions; the statistic is the
    supremum over the pooled sample points of the absolute difference between
    the two empirical CDFs.
    """
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    return ks_two_sample_sorted(a, b)


def ks_two_sample_sorted(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample KS statistic for already-sorted, NaN-free float arrays.

    Numerically identical to :func:`ks_two_sample` minus the ``O(n log n)``
    sort and NaN scrub.  This is the workhorse of the incremental
    contribution backend, which derives the sorted values of every row-set
    intervention from one cached argsort of the full column (dropping rows
    from a sorted array leaves it sorted) and therefore must not pay a fresh
    sort per intervention.
    """
    if sample_a.size == 0 or sample_b.size == 0:
        return 0.0
    pooled = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, pooled, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, pooled, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_columns(before: Column, after: Column) -> float:
    """KS distance between the value distributions of two columns.

    This is the exact quantity used by the exceptionality interestingness
    measure: the relative-frequency distribution of the column before and
    after the operation, compared with the KS statistic.  Numeric columns use
    the vectorised two-sample path (mathematically identical, since the
    relative-frequency CDF of a column *is* its empirical CDF); categorical
    columns use a vectorised counts-over-shared-support computation with the
    supports ordered lexicographically.
    """
    numeric_before = before.is_numeric or before.is_boolean
    numeric_after = after.is_numeric or after.is_boolean
    if numeric_before and numeric_after:
        return ks_two_sample(before.values.astype(float), after.values.astype(float))
    if before.is_categorical and after.is_categorical:
        return _ks_categorical(before, after)
    return ks_from_distributions(
        ValueDistribution.from_column(before), ValueDistribution.from_column(after)
    )


def ks_from_value_counts(counts_before: np.ndarray, positions_before: np.ndarray,
                         counts_after: np.ndarray, positions_after: np.ndarray,
                         support_size: int) -> float:
    """Categorical KS from value counts scattered onto a shared, sorted support.

    ``positions_*`` place each count onto the support (values absent from one
    side keep zero mass).  An empty side scores 0 — no distribution to
    deviate from.  Shared by :func:`_ks_categorical` and the incremental
    contribution backend, which derives per-intervention counts by
    subtraction and must reproduce the exact computation bit-for-bit;
    scoring over a superset support is safe because values with zero mass on
    both sides cannot change the supremum.
    """
    total_before = counts_before.sum()
    total_after = counts_after.sum()
    if total_before <= 0 or total_after <= 0:
        return 0.0
    pmf_before = np.zeros(support_size)
    pmf_after = np.zeros(support_size)
    pmf_before[positions_before] = counts_before / total_before
    pmf_after[positions_after] = counts_after / total_after
    return float(np.max(np.abs(np.cumsum(pmf_before) - np.cumsum(pmf_after))))


def _ks_categorical(before: Column, after: Column) -> float:
    """Vectorised KS distance for two categorical columns (shared string support)."""
    codes_before, uniques_before = before.factorize()
    codes_after, uniques_after = after.factorize()
    if not uniques_before or not uniques_after:
        return 0.0
    support = np.union1d(np.asarray(uniques_before, dtype=str), np.asarray(uniques_after, dtype=str))

    counts_before = np.bincount(codes_before[codes_before >= 0], minlength=len(uniques_before))
    counts_after = np.bincount(codes_after[codes_after >= 0], minlength=len(uniques_after))
    positions_before = np.searchsorted(support, np.asarray(uniques_before, dtype=str))
    positions_after = np.searchsorted(support, np.asarray(uniques_after, dtype=str))
    return ks_from_value_counts(
        counts_before, positions_before, counts_after, positions_after, support.size
    )
