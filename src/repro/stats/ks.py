"""Two-sample Kolmogorov–Smirnov statistic.

The paper's exceptionality measure (Eq. 1) is ``KS(Pr(d_in[A]), Pr(d_out[A]))``
— the two-sample KS statistic between the value distributions of a column
before and after the EDA operation.  We implement two flavours:

* :func:`ks_from_distributions` — KS distance between two already-computed
  discrete :class:`~repro.stats.distributions.ValueDistribution` objects
  (this is the form the paper uses: distributions are over relative value
  frequencies, and both numeric and categorical columns are supported by
  ordering the shared value domain).
* :func:`ks_two_sample` — the classic two-sample KS statistic on raw numeric
  samples, provided for completeness and cross-checked against SciPy in the
  test suite.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..dataframe.column import Column
from .distributions import ValueDistribution, aligned_cdfs


def ks_from_distributions(first: ValueDistribution, second: ValueDistribution) -> float:
    """KS distance (sup of |CDF1 - CDF2|) between two discrete distributions.

    Returns 0 when either distribution is empty: an empty output column tells
    us nothing about the deviation, and a 0 interestingness score makes FEDEX
    ignore that column, which matches the intended behaviour.
    """
    if not first or not second:
        return 0.0
    cdf_first, cdf_second = aligned_cdfs(first, second)
    if cdf_first.size == 0:
        return 0.0
    return float(np.max(np.abs(cdf_first - cdf_second)))


def ks_two_sample(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Classic two-sample KS statistic on raw numeric samples.

    Both samples are treated as empirical distributions; the statistic is the
    supremum over the pooled sample points of the absolute difference between
    the two empirical CDFs.
    """
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    return ks_two_sample_sorted(a, b)


def ks_two_sample_sorted(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample KS statistic for already-sorted, NaN-free float arrays.

    Numerically identical to :func:`ks_two_sample` minus the ``O(n log n)``
    sort and NaN scrub.  This is the workhorse of the incremental
    contribution backend, which derives the sorted values of every row-set
    intervention from one cached argsort of the full column (dropping rows
    from a sorted array leaves it sorted) and therefore must not pay a fresh
    sort per intervention.
    """
    if sample_a.size == 0 or sample_b.size == 0:
        return 0.0
    pooled = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, pooled, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, pooled, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


#: Default working-set budget of the batched 2-D KS passes (128 MiB).  At
#: paper-full scale the ``n_sets × n_rows`` matrices of one partition can
#: otherwise grow without bound; sets are processed in chunks that fit.
DEFAULT_KS_BUDGET_BYTES = 128 * 1024 * 1024


def _batch_chunk_size(n_sets: int, words_per_set: int,
                      budget_bytes: Optional[int]) -> int:
    """How many sets fit in one chunk of the batched pass.

    ``words_per_set`` counts the float64 elements each set contributes to
    the pass's transient matrices; the chunk is sized so the chunk's
    working set stays within ``budget_bytes`` (``None`` → the module
    default).  Always at least 1 — a single set is the irreducible unit.
    """
    budget = DEFAULT_KS_BUDGET_BYTES if budget_bytes is None else int(budget_bytes)
    per_set = max(words_per_set, 1) * 8
    return max(1, min(n_sets, budget // per_set))


def ks_sorted_masked_batch(sorted_a: np.ndarray, keep_a: Optional[np.ndarray],
                           sorted_b: np.ndarray, keep_b: Optional[np.ndarray],
                           budget_bytes: Optional[int] = None) -> np.ndarray:
    """KS statistics of many masked sub-samples of two sorted arrays at once.

    ``sorted_a`` / ``sorted_b`` are the full sorted, NaN-free samples;
    ``keep_a`` / ``keep_b`` are boolean matrices of shape ``(n_sets, n)``
    whose row ``i`` selects the sub-sample of set ``i`` (``None`` means every
    set keeps the full array).  Returns one KS statistic per row — the same
    floats :func:`ks_two_sample_sorted` produces on the masked arrays,
    computed in a vectorised 2-D pass.

    Dropping rows from a sorted array leaves it sorted, so the number of
    kept values ``<= x`` is a prefix-sum of the keep mask evaluated at
    ``searchsorted(full, x)`` — the searchsorted positions are shared by all
    sets and computed once.  The per-set statistic is evaluated over *all*
    pooled points of the full arrays; that is a superset of each sub-sample's
    own pooled points, which is harmless (an empirical CDF difference is a
    step function, so values between a sub-sample's jump points repeat values
    already attained at the jump points) and keeps the evaluation grid
    shared.  Rows whose sub-sample is empty on either side score 0, matching
    the serial convention.  At least one mask must be given — with both
    sides full there is no per-set variation to batch over, and the number
    of sets cannot be inferred.

    When the pass's per-set transient matrices would exceed ``budget_bytes``
    (default :data:`DEFAULT_KS_BUDGET_BYTES`), the sets are processed in
    chunks.  Every set's statistic involves only its own mask row plus the
    shared positions, so chunking is bit-identical to the single pass.
    """
    if keep_a is None and keep_b is None:
        raise ValueError(
            "at least one of keep_a/keep_b must be a mask matrix "
            "(use ks_two_sample_sorted for a single full-array statistic)"
        )
    n_sets = keep_a.shape[0] if keep_a is not None else keep_b.shape[0]
    pooled = np.concatenate([sorted_a, sorted_b])
    positions_a = np.searchsorted(sorted_a, pooled, side="right")
    positions_b = np.searchsorted(sorted_b, pooled, side="right")
    # Transient float64 words per set: a prefix row + a gathered counts row
    # per masked side, plus the shared-grid difference row.
    words_per_set = pooled.size
    if keep_a is not None:
        words_per_set += sorted_a.size + 1 + pooled.size
    if keep_b is not None:
        words_per_set += sorted_b.size + 1 + pooled.size
    chunk = _batch_chunk_size(n_sets, words_per_set, budget_bytes)
    if chunk >= n_sets:
        return _ks_sorted_masked_block(sorted_a, keep_a, sorted_b, keep_b,
                                       n_sets, pooled, positions_a, positions_b)
    statistics = np.empty(n_sets)
    for start in range(0, n_sets, chunk):
        stop = min(start + chunk, n_sets)
        statistics[start:stop] = _ks_sorted_masked_block(
            sorted_a, None if keep_a is None else keep_a[start:stop],
            sorted_b, None if keep_b is None else keep_b[start:stop],
            stop - start, pooled, positions_a, positions_b,
        )
    return statistics


def _ks_sorted_masked_block(sorted_a: np.ndarray, keep_a: Optional[np.ndarray],
                            sorted_b: np.ndarray, keep_b: Optional[np.ndarray],
                            n_sets: int, pooled: np.ndarray,
                            positions_a: np.ndarray,
                            positions_b: np.ndarray) -> np.ndarray:
    """One chunk of :func:`ks_sorted_masked_batch` (shared grid precomputed)."""
    counts_a, totals_a = _masked_prefix_counts(sorted_a.size, keep_a, n_sets, positions_a)
    counts_b, totals_b = _masked_prefix_counts(sorted_b.size, keep_b, n_sets, positions_b)
    valid = (totals_a > 0) & (totals_b > 0)
    safe_a = np.where(totals_a > 0, totals_a, 1).astype(float)
    safe_b = np.where(totals_b > 0, totals_b, 1).astype(float)
    diff = counts_a / safe_a[:, None]
    diff -= counts_b / safe_b[:, None]
    np.abs(diff, out=diff)
    statistics = diff.max(axis=1) if pooled.size else np.zeros(n_sets)
    return np.where(valid, statistics, 0.0)


def _masked_prefix_counts(n_values: int, keep: Optional[np.ndarray], n_sets: int,
                          positions: np.ndarray) -> tuple:
    """Per-set counts of kept values at each searchsorted position, plus totals."""
    if keep is None:
        counts = np.broadcast_to(positions.astype(float), (n_sets, positions.size))
        totals = np.full(n_sets, n_values, dtype=np.int64)
        return counts, totals
    prefix = np.zeros((n_sets, n_values + 1))
    np.cumsum(keep, axis=1, out=prefix[:, 1:])
    totals = prefix[:, -1].astype(np.int64)
    return prefix[:, positions], totals


def ks_from_value_counts_batch(counts_before: np.ndarray, positions_before: np.ndarray,
                               counts_after: np.ndarray, positions_after: np.ndarray,
                               support_size: int,
                               budget_bytes: Optional[int] = None) -> np.ndarray:
    """Batched :func:`ks_from_value_counts`: one statistic per row of counts.

    ``counts_before`` / ``counts_after`` are ``(n_sets, n_uniques)`` matrices
    of per-set value counts; the positions scatter each count column onto the
    shared sorted support exactly as in the serial function.  Rows with zero
    total mass on either side score 0.

    Like :func:`ks_sorted_masked_batch`, the sets are processed in chunks
    when the per-set PMF matrices would exceed ``budget_bytes`` (default
    :data:`DEFAULT_KS_BUDGET_BYTES`); rows are independent, so chunking is
    bit-identical to the single pass.
    """
    n_sets = counts_before.shape[0]
    # Two scattered PMF matrices over the full support per set (the
    # difference reuses one of them in place).
    chunk = _batch_chunk_size(n_sets, 2 * support_size, budget_bytes)
    if chunk >= n_sets:
        return _ks_from_value_counts_block(counts_before, positions_before,
                                           counts_after, positions_after, support_size)
    statistics = np.empty(n_sets)
    for start in range(0, n_sets, chunk):
        stop = min(start + chunk, n_sets)
        statistics[start:stop] = _ks_from_value_counts_block(
            counts_before[start:stop], positions_before,
            counts_after[start:stop], positions_after, support_size,
        )
    return statistics


def _ks_from_value_counts_block(counts_before: np.ndarray, positions_before: np.ndarray,
                                counts_after: np.ndarray, positions_after: np.ndarray,
                                support_size: int) -> np.ndarray:
    """One chunk of :func:`ks_from_value_counts_batch`."""
    totals_before = counts_before.sum(axis=1)
    totals_after = counts_after.sum(axis=1)
    valid = (totals_before > 0) & (totals_after > 0)
    safe_before = np.where(totals_before > 0, totals_before, 1.0)
    safe_after = np.where(totals_after > 0, totals_after, 1.0)
    n_sets = counts_before.shape[0]
    pmf_before = np.zeros((n_sets, support_size))
    pmf_after = np.zeros((n_sets, support_size))
    pmf_before[:, positions_before] = counts_before / safe_before[:, None]
    pmf_after[:, positions_after] = counts_after / safe_after[:, None]
    diff = np.cumsum(pmf_before, axis=1)
    diff -= np.cumsum(pmf_after, axis=1)
    np.abs(diff, out=diff)
    statistics = diff.max(axis=1) if support_size else np.zeros(n_sets)
    return np.where(valid, statistics, 0.0)


def ks_columns(before: Column, after: Column) -> float:
    """KS distance between the value distributions of two columns.

    This is the exact quantity used by the exceptionality interestingness
    measure: the relative-frequency distribution of the column before and
    after the operation, compared with the KS statistic.  Numeric columns use
    the vectorised two-sample path (mathematically identical, since the
    relative-frequency CDF of a column *is* its empirical CDF); categorical
    columns use a vectorised counts-over-shared-support computation with the
    supports ordered lexicographically.
    """
    numeric_before = before.is_numeric or before.is_boolean
    numeric_after = after.is_numeric or after.is_boolean
    if numeric_before and numeric_after:
        return ks_two_sample(before.values.astype(float), after.values.astype(float))
    if before.is_categorical and after.is_categorical:
        return _ks_categorical(before, after)
    return ks_from_distributions(
        ValueDistribution.from_column(before), ValueDistribution.from_column(after)
    )


def ks_from_value_counts(counts_before: np.ndarray, positions_before: np.ndarray,
                         counts_after: np.ndarray, positions_after: np.ndarray,
                         support_size: int) -> float:
    """Categorical KS from value counts scattered onto a shared, sorted support.

    ``positions_*`` place each count onto the support (values absent from one
    side keep zero mass).  An empty side scores 0 — no distribution to
    deviate from.  Shared by :func:`_ks_categorical` and the incremental
    contribution backend, which derives per-intervention counts by
    subtraction and must reproduce the exact computation bit-for-bit;
    scoring over a superset support is safe because values with zero mass on
    both sides cannot change the supremum.
    """
    total_before = counts_before.sum()
    total_after = counts_after.sum()
    if total_before <= 0 or total_after <= 0:
        return 0.0
    pmf_before = np.zeros(support_size)
    pmf_after = np.zeros(support_size)
    pmf_before[positions_before] = counts_before / total_before
    pmf_after[positions_after] = counts_after / total_after
    return float(np.max(np.abs(np.cumsum(pmf_before) - np.cumsum(pmf_after))))


def _ks_categorical(before: Column, after: Column) -> float:
    """Vectorised KS distance for two categorical columns (shared string support)."""
    codes_before, uniques_before = before.factorize()
    codes_after, uniques_after = after.factorize()
    if not uniques_before or not uniques_after:
        return 0.0
    support = np.union1d(np.asarray(uniques_before, dtype=str), np.asarray(uniques_after, dtype=str))

    counts_before = np.bincount(codes_before[codes_before >= 0], minlength=len(uniques_before))
    counts_after = np.bincount(codes_after[codes_after >= 0], minlength=len(uniques_after))
    positions_before = np.searchsorted(support, np.asarray(uniques_before, dtype=str))
    positions_after = np.searchsorted(support, np.asarray(uniques_after, dtype=str))
    return ks_from_value_counts(
        counts_before, positions_before, counts_after, positions_after, support.size
    )
