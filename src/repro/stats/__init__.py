"""Statistics substrate: distributions, KS statistic, dispersion, ranking metrics."""

from .dispersion import (
    coefficient_of_variation,
    fisher_pearson_skewness,
    gini_coefficient,
    mean_and_std,
    standardize,
    z_score,
)
from .distributions import ValueDistribution, aligned_cdfs
from .ks import (
    ks_columns,
    ks_from_distributions,
    ks_from_value_counts_batch,
    ks_sorted_masked_batch,
    ks_two_sample,
)
from .ranking import (
    dcg,
    kendall_tau_distance,
    ndcg,
    normalized_kendall_tau_distance,
    precision_at_k,
    reciprocal_rank,
)

__all__ = [
    "ValueDistribution",
    "aligned_cdfs",
    "coefficient_of_variation",
    "dcg",
    "fisher_pearson_skewness",
    "gini_coefficient",
    "kendall_tau_distance",
    "ks_columns",
    "ks_from_distributions",
    "ks_from_value_counts_batch",
    "ks_sorted_masked_batch",
    "ks_two_sample",
    "mean_and_std",
    "ndcg",
    "normalized_kendall_tau_distance",
    "precision_at_k",
    "reciprocal_rank",
    "standardize",
    "z_score",
]
