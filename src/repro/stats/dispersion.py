"""Dispersion and shape statistics.

Implements the statistics the paper relies on:

* coefficient of variation (CV) — the diversity interestingness measure for
  group-by steps (Eq. 2);
* Fisher–Pearson standardized moment coefficient (skewness) — used in §4.1 to
  characterise how skewed the evaluation datasets are;
* z-scores / standardization — used for the standardized contribution C̄ and
  for the diversity caption ("1.2 standard deviations lower than the mean").
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _clean(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    return array[~np.isnan(array)]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Coefficient of variation, ``std / |mean|`` with the sample (n-1) std.

    This is the diversity measure of Eq. 2.  Conventions for degenerate
    inputs: fewer than two values, or a zero mean, yield 0 — a single group
    (or an all-zero aggregate) carries no diversity signal.
    """
    array = _clean(values)
    if array.size < 2:
        return 0.0
    mean = float(np.mean(array))
    if mean == 0.0:
        return 0.0
    std = float(np.std(array, ddof=1))
    return abs(std / mean)


def fisher_pearson_skewness(values: Sequence[float]) -> float:
    """Fisher–Pearson standardized moment coefficient g1 = m3 / m2^(3/2).

    The paper (§4.1) reports this coefficient to show the evaluation datasets
    contain heavily skewed columns (e.g. 10.16 for the top Spotify column).
    """
    array = _clean(values)
    if array.size < 3:
        return 0.0
    mean = float(np.mean(array))
    m2 = float(np.mean((array - mean) ** 2))
    if m2 == 0.0:
        return 0.0
    m3 = float(np.mean((array - mean) ** 3))
    return m3 / m2 ** 1.5


def standardize(values: Sequence[float]) -> np.ndarray:
    """Z-scores of the values: ``(x - mean) / std`` with the sample std.

    Used to standardize contribution scores within a row partition.  When the
    standard deviation is zero (all contributions equal) all z-scores are 0.
    """
    array = np.asarray(values, dtype=float)
    finite = array[~np.isnan(array)]
    if finite.size < 2:
        return np.zeros_like(array)
    mean = float(np.mean(finite))
    std = float(np.std(finite, ddof=1))
    if std == 0.0:
        return np.zeros_like(array)
    return (array - mean) / std


def z_score(value: float, values: Sequence[float]) -> float:
    """Z-score of a single value relative to a population of values."""
    array = _clean(values)
    if array.size < 2:
        return 0.0
    mean = float(np.mean(array))
    std = float(np.std(array, ddof=1))
    if std == 0.0:
        return 0.0
    return (value - mean) / std


def mean_and_std(values: Sequence[float], ddof: int = 1) -> Tuple[float, float]:
    """Mean and sample standard deviation of the non-missing values."""
    array = _clean(values)
    if array.size == 0:
        return 0.0, 0.0
    mean = float(np.mean(array))
    std = float(np.std(array, ddof=ddof)) if array.size > ddof else 0.0
    return mean, std


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative values (alternative diversity measure).

    Included as one of the "additional interestingness facets" the paper's
    future-work section alludes to; exposed through the custom-measure
    registry and exercised by the ablation benchmarks.
    """
    array = np.sort(_clean(values))
    if array.size == 0:
        return 0.0
    if np.any(array < 0):
        array = array - array.min()
    total = float(np.sum(array))
    if total == 0.0:
        return 0.0
    n = array.size
    index = np.arange(1, n + 1, dtype=float)
    return float((2.0 * np.sum(index * array)) / (n * total) - (n + 1.0) / n)
