"""Ranking-quality metrics used by the accuracy experiments (Figs 7 and 8).

The paper evaluates fedex-Sampling against the exact fedex output with three
metrics:

* precision@k of the skyline explanation set,
* Kendall-tau distance between the two explanation rankings,
* nDCG of the sampled ranking against the exact ranking used as ground truth.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

import numpy as np


def precision_at_k(predicted: Sequence[Hashable], relevant: Sequence[Hashable], k: int) -> float:
    """Fraction of the top-``k`` predicted items that appear in the relevant set.

    ``k`` is capped at the length of the prediction list; an empty prediction
    (or ``k == 0``) scores 0.
    """
    if k <= 0:
        return 0.0
    top = list(predicted)[:k]
    if not top:
        return 0.0
    relevant_set = set(relevant)
    hits = sum(1 for item in top if item in relevant_set)
    return hits / len(top)


def kendall_tau_distance(ranking_a: Sequence[Hashable], ranking_b: Sequence[Hashable]) -> int:
    """Number of discordant pairs between two rankings of (mostly) shared items.

    Items appearing in only one ranking are appended to the end of the other
    ranking (in a deterministic order) so the metric remains defined when the
    sampled skyline differs slightly from the exact one — the same situation
    the paper measures.  The returned value is the raw count of discordant
    pairs (the paper's Figure 7b reports raw counts, not the normalised tau).
    """
    order_a = _complete_ranking(ranking_a, ranking_b)
    order_b = _complete_ranking(ranking_b, ranking_a)
    position_b = {item: index for index, item in enumerate(order_b)}
    discordant = 0
    n = len(order_a)
    for i in range(n):
        for j in range(i + 1, n):
            if position_b[order_a[i]] > position_b[order_a[j]]:
                discordant += 1
    return discordant


def normalized_kendall_tau_distance(ranking_a: Sequence[Hashable], ranking_b: Sequence[Hashable]) -> float:
    """Kendall-tau distance normalised to [0, 1] by the number of item pairs."""
    order_a = _complete_ranking(ranking_a, ranking_b)
    n = len(order_a)
    if n < 2:
        return 0.0
    pairs = n * (n - 1) / 2
    return kendall_tau_distance(ranking_a, ranking_b) / pairs


def dcg(relevances: Sequence[float]) -> float:
    """Discounted cumulative gain of a relevance-ordered list."""
    gains = np.asarray(list(relevances), dtype=float)
    if gains.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, gains.size + 2, dtype=float))
    return float(np.sum(gains * discounts))


def ndcg(predicted: Sequence[Hashable], relevance: Dict[Hashable, float], k: int | None = None) -> float:
    """Normalised DCG of a predicted ranking given graded relevance labels.

    ``relevance`` maps item -> graded relevance (e.g. the exact fedex score of
    each explanation).  Items missing from the mapping count as relevance 0.
    """
    items = list(predicted)
    if k is not None:
        items = items[:k]
    gains = [relevance.get(item, 0.0) for item in items]
    ideal = sorted(relevance.values(), reverse=True)
    if k is not None:
        ideal = ideal[:k]
    ideal_dcg = dcg(ideal)
    if ideal_dcg == 0.0:
        return 1.0 if dcg(gains) == 0.0 else 0.0
    return dcg(gains) / ideal_dcg


def reciprocal_rank(predicted: Sequence[Hashable], relevant: Sequence[Hashable]) -> float:
    """Reciprocal rank of the first relevant item (0 when none is present)."""
    relevant_set = set(relevant)
    for index, item in enumerate(predicted, start=1):
        if item in relevant_set:
            return 1.0 / index
    return 0.0


def _complete_ranking(primary: Sequence[Hashable], other: Sequence[Hashable]) -> list:
    """``primary`` followed by the items present only in ``other`` (sorted by repr)."""
    seen = set(primary)
    extras = sorted((item for item in other if item not in seen), key=repr)
    return list(primary) + extras
