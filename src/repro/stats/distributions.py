"""Value distributions over dataframe columns.

The exceptionality measure (paper Eq. 1) compares the *probability
distribution of column values* before and after an operation.  The paper
defines ``Pr(d[A])`` over the relative frequency of values, so the natural
representation is a discrete distribution: value -> probability.  For the
KS statistic we additionally need the two distributions over a common sorted
domain, which :func:`aligned_cdfs` provides.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..dataframe.column import Column


class ValueDistribution:
    """Discrete probability distribution of a column's values.

    Parameters
    ----------
    probabilities:
        Mapping from value to probability.  Probabilities are re-normalised so
        they always sum to one (empty distributions stay empty).
    """

    __slots__ = ("probabilities",)

    def __init__(self, probabilities: Dict[Hashable, float]) -> None:
        total = float(sum(probabilities.values()))
        if total > 0:
            self.probabilities = {value: p / total for value, p in probabilities.items()}
        else:
            self.probabilities = {}

    @classmethod
    def from_column(cls, column: Column) -> "ValueDistribution":
        """Relative-frequency distribution of a column (missing values excluded)."""
        return cls(column.frequencies())

    @classmethod
    def from_values(cls, values: Sequence) -> "ValueDistribution":
        """Relative-frequency distribution of a plain sequence of values."""
        counts: Dict[Hashable, float] = {}
        for value in values:
            item = value.item() if isinstance(value, np.generic) else value
            if item is None or (isinstance(item, float) and np.isnan(item)):
                continue
            counts[item] = counts.get(item, 0.0) + 1.0
        return cls(counts)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self.probabilities)

    def __bool__(self) -> bool:
        return bool(self.probabilities)

    def probability(self, value: Hashable) -> float:
        """Probability mass of ``value`` (0 when absent)."""
        return self.probabilities.get(value, 0.0)

    def support(self) -> List:
        """Values with non-zero probability, sorted for determinism."""
        return sorted(self.probabilities.keys(), key=_sort_token)

    def entropy(self) -> float:
        """Shannon entropy in nats (used by the RATH-style baseline)."""
        probs = np.asarray(list(self.probabilities.values()), dtype=float)
        probs = probs[probs > 0]
        if probs.size == 0:
            return 0.0
        return float(-np.sum(probs * np.log(probs)))

    def most_common(self, k: int = 1) -> List[Tuple[Hashable, float]]:
        """The ``k`` most probable values as (value, probability) pairs."""
        ranked = sorted(self.probabilities.items(), key=lambda item: (-item[1], _sort_token(item[0])))
        return ranked[:k]

    def total_variation_distance(self, other: "ValueDistribution") -> float:
        """Total variation distance between two discrete distributions."""
        values = set(self.probabilities) | set(other.probabilities)
        return 0.5 * sum(abs(self.probability(v) - other.probability(v)) for v in values)


def aligned_cdfs(first: ValueDistribution, second: ValueDistribution) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative distribution functions of both distributions on a shared domain.

    The shared domain is the sorted union of both supports; numeric values are
    ordered numerically and mixed domains fall back to string ordering.  The
    two returned arrays have equal length and each is non-decreasing, ending
    at 1 (for non-empty distributions).
    """
    values = sorted(set(first.probabilities) | set(second.probabilities), key=_sort_token)
    if not values:
        return np.zeros(0), np.zeros(0)
    first_pmf = np.asarray([first.probability(v) for v in values], dtype=float)
    second_pmf = np.asarray([second.probability(v) for v in values], dtype=float)
    return np.cumsum(first_pmf), np.cumsum(second_pmf)


def _sort_token(value) -> Tuple:
    """Order numbers before strings so mixed supports sort deterministically."""
    if isinstance(value, bool):
        return (1, 0.0, str(value))
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (1, 0.0, str(value))
