"""The paper's evaluation workload: the 30 queries of Appendix A.

Tables 2 and 3 of the paper define 15 filter/join queries (evaluated with the
exceptionality measure) and 15 group-by queries (evaluated with the diversity
measure) over the three datasets.  Each :class:`WorkloadQuery` carries the
original SQL-ish text and knows how to build the corresponding
:class:`~repro.operators.step.ExploratoryStep` from a
:class:`~repro.datasets.registry.DatasetRegistry`.

Notes on the mapping to the synthetic datasets:

* "Bank" is the Credit Card Customers dataset (the paper uses both names).
* Query 3's text in the paper is garbled ("SELECT * FROM counties INNER
  SELECT * FROM stores INNER JOIN sales ..."); it is reproduced as the
  Stores ⋈ Sales join, which is what the runnable part of the text states.
* Query 12 is the paper's nested query: a filter applied on the result of
  query 11.
* Query 18 groups by ``products_sales_pack``, which does not exist verbatim
  in the join view; it is mapped to ``products_pack``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..dataframe.predicates import Comparison
from ..datasets.registry import DatasetRegistry
from ..errors import ExperimentError
from ..operators.operations import Filter, GroupBy, Join, Operation
from ..operators.step import ExploratoryStep

#: Workload kinds.
KIND_FILTER = "filter"
KIND_JOIN = "join"
KIND_GROUPBY = "groupby"


@dataclass(frozen=True)
class WorkloadQuery:
    """One evaluation query of Appendix A."""

    number: int
    dataset: str
    kind: str
    sql: str
    builder: Callable[[DatasetRegistry], ExploratoryStep]

    def build_step(self, registry: DatasetRegistry) -> ExploratoryStep:
        """Materialise the exploratory step on the registry's tables."""
        step = self.builder(registry)
        return step

    @property
    def measure(self) -> str:
        """Interestingness family the paper evaluates this query with."""
        return "diversity" if self.kind == KIND_GROUPBY else "exceptionality"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"Q{self.number} [{self.dataset}/{self.kind}] {self.sql}"


def _filter_step(table: str, predicate: Comparison, label: str):
    def build(registry: DatasetRegistry) -> ExploratoryStep:
        frame = registry.table(table)
        return ExploratoryStep([frame], Filter(predicate), label=label)

    return build


def _join_step(left: str, right: str, on: str, label: str):
    def build(registry: DatasetRegistry) -> ExploratoryStep:
        return ExploratoryStep(
            [registry.table(left), registry.table(right)], Join(on=on), label=label
        )

    return build


def _groupby_step(table: str, keys: Sequence[str], aggregations=None, include_count: bool = False,
                  pre_filter: Optional[Comparison] = None, label: str = ""):
    def build(registry: DatasetRegistry) -> ExploratoryStep:
        operation = GroupBy(
            keys=list(keys), aggregations=aggregations, include_count=include_count,
            pre_filter=pre_filter,
        )
        return ExploratoryStep([registry.table(table)], operation, label=label)

    return build


def _nested_filter_step(table: str, outer: Comparison, inner: Comparison, label: str):
    """Filter applied on the result of an inner filter (query 12)."""

    def build(registry: DatasetRegistry) -> ExploratoryStep:
        base = registry.table(table)
        inner_result = base.filter(inner)
        return ExploratoryStep([inner_result], Filter(outer), label=label)

    return build


def _build_workload() -> List[WorkloadQuery]:
    queries: List[WorkloadQuery] = []

    # ----------------------------------------------------------- Table 2 (filter/join)
    queries.append(WorkloadQuery(
        1, "products", KIND_JOIN,
        "SELECT * FROM products INNER JOIN sales ON products.item=sales.item;",
        _join_step("products", "sales", "item", "Q1"),
    ))
    queries.append(WorkloadQuery(
        2, "products", KIND_JOIN,
        "SELECT * FROM counties INNER JOIN sales ON counties.county=sales.county;",
        _join_step("counties", "sales", "county", "Q2"),
    ))
    queries.append(WorkloadQuery(
        3, "products", KIND_JOIN,
        "SELECT * FROM stores INNER JOIN sales ON stores.store=sales.store;",
        _join_step("stores", "sales", "store", "Q3"),
    ))
    queries.append(WorkloadQuery(
        4, "products", KIND_FILTER,
        "SELECT * FROM products_sales WHERE sales_liter_size <= 500;",
        _filter_step("products_sales", Comparison("sales_liter_size", "<=", 500), "Q4"),
    ))
    queries.append(WorkloadQuery(
        5, "products", KIND_FILTER,
        "SELECT * FROM products_sales WHERE sales_pack == 12;",
        _filter_step("products_sales", Comparison("sales_pack", "==", 12), "Q5"),
    ))
    queries.append(WorkloadQuery(
        6, "spotify", KIND_FILTER,
        "SELECT * FROM spotify WHERE popularity > 65;",
        _filter_step("spotify", Comparison("popularity", ">", 65), "Q6"),
    ))
    queries.append(WorkloadQuery(
        7, "spotify", KIND_FILTER,
        "SELECT * FROM spotify WHERE year > 1990;",
        _filter_step("spotify", Comparison("year", ">", 1990), "Q7"),
    ))
    queries.append(WorkloadQuery(
        8, "spotify", KIND_FILTER,
        "SELECT * FROM spotify WHERE loudness > -12;",
        _filter_step("spotify", Comparison("loudness", ">", -12), "Q8"),
    ))
    queries.append(WorkloadQuery(
        9, "spotify", KIND_FILTER,
        "SELECT * FROM spotify WHERE duration_minutes < 3;",
        _filter_step("spotify", Comparison("duration_minutes", "<", 3), "Q9"),
    ))
    queries.append(WorkloadQuery(
        10, "spotify", KIND_FILTER,
        "SELECT * FROM spotify WHERE tempo > 100;",
        _filter_step("spotify", Comparison("tempo", ">", 100), "Q10"),
    ))
    queries.append(WorkloadQuery(
        11, "bank", KIND_FILTER,
        'SELECT * FROM Bank WHERE Attrition_Flag != "Existing Customer";',
        _filter_step("bank", Comparison("Attrition_Flag", "!=", "Existing Customer"), "Q11"),
    ))
    queries.append(WorkloadQuery(
        12, "bank", KIND_FILTER,
        "SELECT * FROM [SELECT * FROM Bank WHERE Attrition_Flag != 'Existing Customer'] "
        "WHERE Total_Count_Change_Q4_vs_Q1 > 0.75;",
        _nested_filter_step(
            "bank",
            outer=Comparison("Total_Count_Change_Q4_vs_Q1", ">", 0.75),
            inner=Comparison("Attrition_Flag", "!=", "Existing Customer"),
            label="Q12",
        ),
    ))
    queries.append(WorkloadQuery(
        13, "bank", KIND_FILTER,
        "SELECT * FROM Bank WHERE Months_Inactive_Count_Last_Year > 2;",
        _filter_step("bank", Comparison("Months_Inactive_Count_Last_Year", ">", 2), "Q13"),
    ))
    queries.append(WorkloadQuery(
        14, "bank", KIND_FILTER,
        "SELECT * FROM Bank WHERE Customer_Age < 30;",
        _filter_step("bank", Comparison("Customer_Age", "<", 30), "Q14"),
    ))
    queries.append(WorkloadQuery(
        15, "bank", KIND_FILTER,
        'SELECT * FROM Bank WHERE Income_Category == "Less than $40K";',
        _filter_step("bank", Comparison("Income_Category", "==", "Less than $40K"), "Q15"),
    ))

    # ------------------------------------------------------------- Table 3 (group-by)
    queries.append(WorkloadQuery(
        16, "products", KIND_GROUPBY,
        "SELECT count(item) FROM products_sales GROUP BY sales_vendor;",
        _groupby_step("products_sales", ["sales_vendor"], include_count=True, label="Q16"),
    ))
    queries.append(WorkloadQuery(
        17, "products", KIND_GROUPBY,
        "SELECT count(item) FROM products_sales GROUP BY sales_county, sales_category_name;",
        _groupby_step("products_sales", ["sales_county", "sales_category_name"],
                      include_count=True, label="Q17"),
    ))
    queries.append(WorkloadQuery(
        18, "products", KIND_GROUPBY,
        "SELECT count(item) FROM products_sales GROUP BY products_sales_pack;",
        _groupby_step("products_sales", ["products_pack"], include_count=True, label="Q18"),
    ))
    queries.append(WorkloadQuery(
        19, "products", KIND_GROUPBY,
        "SELECT mean(sales_total), mean(sales_pack) FROM products_sales "
        "GROUP BY sales_bottle_quantity;",
        _groupby_step("products_sales", ["sales_bottle_quantity"],
                      {"sales_total": ["mean"], "sales_pack": ["mean"]}, label="Q19"),
    ))
    queries.append(WorkloadQuery(
        20, "products", KIND_GROUPBY,
        "SELECT mean(products_bottle_size) FROM products_sales "
        "GROUP BY products_pack, products_inner_pack;",
        _groupby_step("products_sales", ["products_pack", "products_inner_pack"],
                      {"products_bottle_size": ["mean"]}, label="Q20"),
    ))
    queries.append(WorkloadQuery(
        21, "spotify", KIND_GROUPBY,
        "SELECT mean(popularity), max(popularity), min(popularity) FROM spotify GROUP BY year;",
        _groupby_step("spotify", ["year"], {"popularity": ["mean", "max", "min"]}, label="Q21"),
    ))
    queries.append(WorkloadQuery(
        22, "spotify", KIND_GROUPBY,
        "SELECT mean(danceability), max(danceability), mean(instrumentalness), "
        "max(instrumentalness), mean(liveness) FROM spotify GROUP BY year;",
        _groupby_step("spotify", ["year"], {
            "danceability": ["mean", "max"],
            "instrumentalness": ["mean", "max"],
            "liveness": ["mean"],
        }, label="Q22"),
    ))
    queries.append(WorkloadQuery(
        23, "spotify", KIND_GROUPBY,
        "SELECT mean(danceability), mean(popularity) FROM spotify GROUP BY key;",
        _groupby_step("spotify", ["key"], {"danceability": ["mean"], "popularity": ["mean"]},
                      label="Q23"),
    ))
    queries.append(WorkloadQuery(
        24, "spotify", KIND_GROUPBY,
        "SELECT max(duration_minutes), mean(duration_minutes) FROM spotify GROUP BY decade;",
        _groupby_step("spotify", ["decade"], {"duration_minutes": ["max", "mean"]}, label="Q24"),
    ))
    queries.append(WorkloadQuery(
        25, "spotify", KIND_GROUPBY,
        "SELECT mean(loudness), mean(liveness), mean(tempo) FROM spotify GROUP BY mode, key;",
        _groupby_step("spotify", ["mode", "key"], {
            "loudness": ["mean"], "liveness": ["mean"], "tempo": ["mean"],
        }, label="Q25"),
    ))
    queries.append(WorkloadQuery(
        26, "bank", KIND_GROUPBY,
        "SELECT mean(Credit_Used), mean(Total_Transitions_Amount) FROM Bank "
        "GROUP BY Marital_Status, Income_Category;",
        _groupby_step("bank", ["Marital_Status", "Income_Category"], {
            "Credit_Used": ["mean"], "Total_Transitions_Amount": ["mean"],
        }, label="Q26"),
    ))
    queries.append(WorkloadQuery(
        27, "bank", KIND_GROUPBY,
        "SELECT count FROM Bank GROUP BY Marital_Status, Gender, Education_Level;",
        _groupby_step("bank", ["Marital_Status", "Gender", "Education_Level"],
                      include_count=True, label="Q27"),
    ))
    queries.append(WorkloadQuery(
        28, "bank", KIND_GROUPBY,
        "SELECT mean(Credit_Used), mean(Total_Transitions_Amount) FROM Bank "
        "GROUP BY Marital_Status;",
        _groupby_step("bank", ["Marital_Status"], {
            "Credit_Used": ["mean"], "Total_Transitions_Amount": ["mean"],
        }, label="Q28"),
    ))
    queries.append(WorkloadQuery(
        29, "bank", KIND_GROUPBY,
        "SELECT mean(Customer_Age) FROM Bank GROUP BY Gender, Income_Category;",
        _groupby_step("bank", ["Gender", "Income_Category"], {"Customer_Age": ["mean"]},
                      label="Q29"),
    ))
    queries.append(WorkloadQuery(
        30, "bank", KIND_GROUPBY,
        "SELECT count FROM Bank GROUP BY Registered_Products_Count, Attrition_Flag;",
        _groupby_step("bank", ["Registered_Products_Count", "Attrition_Flag"],
                      include_count=True, label="Q30"),
    ))
    return queries


#: The full workload, ordered by query number.
WORKLOAD: List[WorkloadQuery] = _build_workload()

#: The user-study notebook query subsets (paper §4.2).
NOTEBOOK_QUERIES = {
    "spotify": [6, 7, 21, 22],
    "bank": [11, 12, 13, 27],
    "products": [1, 5, 16, 17, 18],
}


def get_query(number: int) -> WorkloadQuery:
    """The workload query with the given Appendix-A number."""
    for query in WORKLOAD:
        if query.number == number:
            return query
    raise ExperimentError(f"no workload query numbered {number}; valid range is 1-30")


def queries_for_dataset(dataset: str, kinds: Sequence[str] | None = None) -> List[WorkloadQuery]:
    """All queries on a dataset, optionally restricted to certain kinds."""
    selected = [query for query in WORKLOAD if query.dataset == dataset]
    if kinds is not None:
        allowed = set(kinds)
        selected = [query for query in selected if query.kind in allowed]
    return selected


def filter_join_queries() -> List[WorkloadQuery]:
    """Queries 1–15 (Table 2): filter and join queries."""
    return [query for query in WORKLOAD if query.kind in (KIND_FILTER, KIND_JOIN)]


def groupby_queries() -> List[WorkloadQuery]:
    """Queries 16–30 (Table 3): group-by queries."""
    return [query for query in WORKLOAD if query.kind == KIND_GROUPBY]
