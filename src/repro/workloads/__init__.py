"""The paper's 30 evaluation queries (Appendix A, Tables 2 and 3)."""

from .queries import (
    KIND_FILTER,
    KIND_GROUPBY,
    KIND_JOIN,
    NOTEBOOK_QUERIES,
    WORKLOAD,
    WorkloadQuery,
    filter_join_queries,
    get_query,
    groupby_queries,
    queries_for_dataset,
)

__all__ = [
    "KIND_FILTER",
    "KIND_GROUPBY",
    "KIND_JOIN",
    "NOTEBOOK_QUERIES",
    "WORKLOAD",
    "WorkloadQuery",
    "filter_join_queries",
    "get_query",
    "groupby_queries",
    "queries_for_dataset",
]
