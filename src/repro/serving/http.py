"""A stdlib-only asyncio HTTP front end over :class:`ExplanationService`.

One :class:`ExplanationServer` exposes one service over HTTP/1.1:

* ``GET /healthz`` — liveness JSON; always 200, with a ``status`` field of
  ``ok`` / ``draining`` so load balancers can stop routing before the
  socket disappears.
* ``GET /metrics`` — the service's merged Prometheus document
  (:meth:`ExplanationService.render_metrics`, which reuses the
  :mod:`repro.obs` registries).
* ``POST /explain`` — a validated query (see :mod:`repro.serving.protocol`)
  explained to completion; the full report as one JSON document.
* ``POST /explain/stream`` — the same request, answered as chunked NDJSON:
  one ``progress`` event per finished (partition, attribute) pair *while
  later shards are still computing*, then exactly one ``report`` (or
  ``error``) event.  The final report bytes are produced by the same
  serialiser as ``/explain``, so the two endpoints are bit-identical.

The event loop runs on a dedicated thread; ``start()`` returns once the
socket is bound.  Explanations never run on the loop: ``submit`` is
dispatched to a thread (its admission gate may block) and the returned
``concurrent.futures`` future is awaited via ``asyncio.wrap_future``.
Progress callbacks hop threads through ``loop.call_soon_threadsafe`` into
an ``asyncio.Queue``; because the worker thread emits every progress event
before resolving the future, FIFO scheduling guarantees the stream never
drops a trailing event.

Graceful drain (:meth:`close`): the listener keeps accepting so new
explain requests get an honest ``503`` (``/healthz`` reports ``draining``),
in-flight requests — including mid-stream responses — run to completion,
the span exporter is flushed, and only then does the loop stop.  ``close``
is idempotent and safe under concurrent callers: one drains, the rest wait.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Awaitable, Callable, Dict, Mapping, Optional, Tuple

from ..errors import (
    ReproError,
    ServerDrainingError,
    ServiceError,
    ServiceOverloadError,
    ServingError,
    ServingRequestError,
)
from .auth import TokenAuthenticator
from .protocol import parse_explain_request, report_document, dump_json

__all__ = ["ExplanationServer"]

#: Request heads larger than this are refused (431).
MAX_HEAD_BYTES = 32 * 1024

#: Bodies larger than this are refused before being read (413); the
#: protocol layer enforces its own tighter 400-level limit after.
MAX_BODY_BYTES = 256 * 1024

#: An idle keep-alive connection is dropped after this many seconds.
DEFAULT_KEEP_ALIVE_S = 30.0

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _status_of(error: BaseException) -> int:
    """Map an exception to the HTTP status the client should see."""
    status = getattr(error, "http_status", None)
    if isinstance(status, int):
        return status
    if isinstance(error, ServiceOverloadError):
        return 429
    if isinstance(error, ServiceError):
        # A closed service behind a live listener: tell callers to retry
        # elsewhere rather than blaming the request.
        return 503
    if isinstance(error, ReproError):
        return 400
    return 500


def _error_document(error: BaseException) -> Dict[str, object]:
    return {"error": str(error) or type(error).__name__,
            "type": type(error).__name__}


class ExplanationServer:
    """Serves one :class:`ExplanationService` over HTTP on a loop thread.

    Parameters
    ----------
    service:
        The :class:`~repro.service.service.ExplanationService` to front.
    auth:
        Optional :class:`~repro.serving.auth.TokenAuthenticator`; when
        given, the explain endpoints require ``Authorization: Bearer`` and
        requests run as the token's tenant.  Without one, every request
        runs as ``default_tenant``.
    frames:
        Optional ``name -> DataFrame`` mapping consulted before the
        service's dataset store when resolving table names.
    resolver:
        Optional ``name -> DataFrame`` callable replacing the default
        resolution (frames mapping, then ``service.dataset_store.open``).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    """

    def __init__(self, service, *, auth: Optional[TokenAuthenticator] = None,
                 frames: Optional[Mapping[str, object]] = None,
                 resolver: Optional[Callable[[str], object]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 default_tenant: str = "anonymous",
                 keep_alive_s: float = DEFAULT_KEEP_ALIVE_S) -> None:
        self.service = service
        self.auth = auth
        self.host = host
        self.default_tenant = default_tenant
        self.keep_alive_s = float(keep_alive_s)
        self._frames = dict(frames) if frames is not None else None
        self._resolver = resolver or self._default_resolver
        self._requested_port = int(port)
        self._bound_port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._inflight_idle = threading.Condition(self._inflight_lock)
        self._close_lock = threading.Lock()
        self._close_started = False
        self._closed_event = threading.Event()

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "ExplanationServer":
        """Bind the socket and start serving; returns once ready."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serving", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise error
        return self

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise ServingError("the server has not been started")
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self, timeout_s: float = 30.0) -> None:
        """Drain gracefully, then stop the loop.  Idempotent and concurrent-safe.

        The listener stays open through the drain so new explain requests
        receive ``503`` (and ``/healthz`` reports ``draining``); requests
        already admitted — including streams mid-response — finish
        normally, the span exporter is flushed, and only then is the loop
        stopped.  A second (or concurrent) caller waits for the first
        drain to complete instead of racing it.
        """
        with self._close_lock:
            already = self._close_started
            self._close_started = True
        # Atomic with respect to _admit's check-and-increment: a request
        # either entered before this flag flipped (and is waited on below)
        # or it observes draining and gets a 503 — never neither.
        with self._inflight_lock:
            self._draining = True
        if already:
            self._closed_event.wait(timeout_s)
            return
        try:
            if self._thread is None:
                return
            deadline = timeout_s
            with self._inflight_idle:
                self._inflight_idle.wait_for(
                    lambda: self._inflight == 0, timeout=deadline)
            # Every admitted request has answered; exported spans must land
            # before the process that holds the queue goes away.
            try:
                self.service.flush_observability()
            except Exception:
                pass
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._begin_shutdown)
            self._thread.join(timeout=10.0)
        finally:
            self._closed_event.set()

    def __enter__(self) -> "ExplanationServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- loop thread
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(asyncio.start_server(
                self._handle_client, self.host, self._requested_port,
                limit=MAX_HEAD_BYTES))
        except BaseException as error:  # bind failure → surface in start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._server = server
        self._bound_port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            try:
                server.close()
                loop.run_until_complete(server.wait_closed())
                pending = [task for task in asyncio.all_tasks(loop)
                           if not task.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
            finally:
                loop.close()

    def _begin_shutdown(self) -> None:
        # Runs on the loop: stop accepting, then stop the loop itself.  The
        # run_forever() epilogue cancels lingering keep-alive handlers.
        if self._server is not None:
            self._server.close()
        if self._loop is not None:
            self._loop.stop()

    # ------------------------------------------------------------- HTTP plumbing
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"),
                        timeout=self.keep_alive_s)
                except (asyncio.IncompleteReadError, ConnectionError,
                        asyncio.TimeoutError):
                    break
                except asyncio.LimitOverrunError:
                    await self._respond_json(
                        writer, 431, _error_document(
                            ServingRequestError("request head too large")),
                        keep_alive=False)
                    break
                try:
                    method, target, headers = _parse_head(head)
                except ServingRequestError as error:
                    await self._respond_json(
                        writer, 400, _error_document(error), keep_alive=False)
                    break
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    await self._respond_json(
                        writer, 400, _error_document(ServingRequestError(
                            "invalid Content-Length")), keep_alive=False)
                    break
                if length > MAX_BODY_BYTES:
                    await self._respond_json(
                        writer, 413, _error_document(ServingRequestError(
                            f"request body of {length} bytes refused")),
                        keep_alive=False)
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                keep_alive = await self._dispatch(
                    writer, method, target, headers, body, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, writer, method: str, target: str,
                        headers: Dict[str, str], body: bytes,
                        keep_alive: bool) -> bool:
        path = target.split("?", 1)[0]
        try:
            if path == "/healthz" and method == "GET":
                await self._respond_json(writer, 200, self._health_document(),
                                         keep_alive=keep_alive)
            elif path == "/metrics" and method == "GET":
                text = self.service.render_metrics().encode("utf-8")
                await self._respond(writer, 200, text,
                                    content_type="text/plain; version=0.0.4",
                                    keep_alive=keep_alive)
            elif path == "/explain" and method == "POST":
                await self._handle_explain(writer, headers, body, keep_alive)
            elif path == "/explain/stream" and method == "POST":
                keep_alive = await self._handle_stream(
                    writer, headers, body, keep_alive)
            elif path in ("/healthz", "/metrics", "/explain",
                          "/explain/stream"):
                await self._respond_json(
                    writer, 405, {"error": f"method {method} not allowed"},
                    keep_alive=keep_alive)
            else:
                await self._respond_json(
                    writer, 404, {"error": f"no such route: {path}"},
                    keep_alive=keep_alive)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except BaseException as error:
            status = _status_of(error)
            extra = ()
            if status == 401:
                extra = (("WWW-Authenticate", "Bearer"),)
            await self._respond_json(writer, status, _error_document(error),
                                     keep_alive=keep_alive,
                                     extra_headers=extra)
        return keep_alive

    # ------------------------------------------------------------------- routes
    def _health_document(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
        }
        try:
            document.update(self.service._health())
            if self._draining:
                document["status"] = "draining"
        except Exception:
            pass
        return document

    def _admit(self, headers: Dict[str, str]) -> str:
        """Auth + drain checks shared by both explain routes.

        Authenticates, then atomically checks the drain flag and counts
        the request in-flight (so :meth:`close` either waits for it or it
        sees a 503 — never neither).  Runs before any response byte is
        written, so failures map to proper status codes even for the
        stream route.  On success the caller owes a ``_leave_request``.
        """
        if self.auth is not None:
            tenant = self.auth.authenticate(headers.get("authorization"))
        else:
            tenant = self.default_tenant
        with self._inflight_lock:
            if self._draining:
                raise ServerDrainingError(
                    "the server is draining and accepts no new explanations")
            self._inflight += 1
        return tenant

    async def _submit(self, tenant: str, body: bytes, progress=None):
        """Parse and submit one request without ever blocking the loop."""
        request = parse_explain_request(body, self._resolver,
                                        self.service.config)
        loop = asyncio.get_running_loop()
        # submit() may block on the tenant's admission gate — keep that off
        # the loop.  The inner future then resolves on a service worker.
        submit = functools.partial(
            self.service.submit, tenant, request.step,
            measure=request.measure, config=request.config,
            progress=progress)
        future = await loop.run_in_executor(None, submit)
        return asyncio.wrap_future(future, loop=loop)

    async def _handle_explain(self, writer, headers: Dict[str, str],
                              body: bytes, keep_alive: bool) -> None:
        tenant = self._admit(headers)
        try:
            wrapped = await self._submit(tenant, body)
            report = await wrapped
            payload = dump_json(report_document(report))
            await self._respond(writer, 200, payload, keep_alive=keep_alive)
        finally:
            self._leave_request()

    async def _handle_stream(self, writer, headers: Dict[str, str],
                             body: bytes, keep_alive: bool) -> bool:
        tenant = self._admit(headers)
        try:
            loop = asyncio.get_running_loop()
            queue: "asyncio.Queue[Dict]" = asyncio.Queue()

            def progress(event: Dict) -> None:
                # Worker thread → loop.  call_soon_threadsafe is FIFO, and
                # the worker emits every event before resolving the future,
                # so the queue always holds all events by the time the
                # wrapped future is observed done.
                loop.call_soon_threadsafe(queue.put_nowait, event)

            wrapped = await self._submit(tenant, body, progress=progress)
            # Admission passed and the request is computing: from here on
            # failures are reported in-band as NDJSON error events.
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                + (b"Connection: keep-alive\r\n" if keep_alive
                   else b"Connection: close\r\n")
                + b"\r\n")
            await writer.drain()
            task = asyncio.ensure_future(wrapped)
            try:
                while not task.done() or not queue.empty():
                    if not queue.empty():
                        event = queue.get_nowait()
                        await _send_chunk(writer, dump_json(
                            {"event": "progress", **event}))
                        continue
                    getter = asyncio.ensure_future(queue.get())
                    await asyncio.wait({getter, task},
                                       return_when=asyncio.FIRST_COMPLETED)
                    if getter.done() and not getter.cancelled():
                        await _send_chunk(writer, dump_json(
                            {"event": "progress", **getter.result()}))
                    else:
                        getter.cancel()
                try:
                    report = task.result()
                except BaseException as error:
                    await _send_chunk(writer, dump_json(
                        {"event": "error", "status": _status_of(error),
                         **_error_document(error)}))
                else:
                    await _send_chunk(writer, dump_json(
                        {"event": "report",
                         "report": report_document(report)}))
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                # The client went away mid-stream; let the computation
                # finish (its report is cached for the next asker).
                task.cancel()
                return False
            return keep_alive
        finally:
            self._leave_request()

    # ---------------------------------------------------------------- internals
    def _default_resolver(self, name: str):
        # Table names are case-insensitive, like the SQL dialect that
        # carries them (the paper's workload writes "Bank"; registries
        # store "bank").
        if self._frames is not None:
            if name in self._frames:
                return self._frames[name]
            if name.lower() in self._frames:
                return self._frames[name.lower()]
        store = self.service.dataset_store
        if store is None:
            raise KeyError(name)
        try:
            return store.open(name)
        except Exception:
            if name.lower() != name:
                return store.open(name.lower())
            raise

    def _leave_request(self) -> None:
        with self._inflight_idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_idle.notify_all()

    async def _respond_json(self, writer, status: int, document: Dict,
                            keep_alive: bool = True,
                            extra_headers: Tuple = ()) -> None:
        await self._respond(writer, status, dump_json(document),
                            keep_alive=keep_alive,
                            extra_headers=extra_headers)

    async def _respond(self, writer, status: int, body: bytes,
                       content_type: str = "application/json",
                       keep_alive: bool = True,
                       extra_headers: Tuple = ()) -> None:
        reason = _REASONS.get(status, "Error")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 "Connection: " + ("keep-alive" if keep_alive else "close")]
        for key, value in extra_headers:
            lines.append(f"{key}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("draining" if self._draining
                 else "serving" if self._bound_port else "stopped")
        return f"ExplanationServer({self.host}:{self._bound_port}, {state})"


async def _send_chunk(writer, payload: bytes) -> None:
    """One NDJSON line as one HTTP chunk, flushed immediately."""
    line = payload + b"\n"
    writer.write(f"{len(line):X}\r\n".encode("ascii") + line + b"\r\n")
    await writer.drain()


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """Split a raw request head into (method, target, lowercased headers)."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:
        raise ServingRequestError("undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServingRequestError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        key, sep, value = line.partition(":")
        if not sep:
            raise ServingRequestError(f"malformed header line: {line!r}")
        headers[key.strip().lower()] = value.strip()
    return method.upper(), target, headers
