"""Networked serving: the HTTP front end and the replica fleet.

The stack, bottom-up:

* :mod:`repro.serving.protocol` — the wire format: request validation
  (SQL-ish query + whitelisted config overrides) and the canonical JSON
  serialisation of reports.
* :mod:`repro.serving.auth` — per-tenant bearer tokens, compared in
  constant time.
* :mod:`repro.serving.http` — the stdlib-only asyncio HTTP/1.1 server:
  JSON explain, chunked-NDJSON streaming of partial results, health,
  metrics, and graceful drain.
* :mod:`repro.serving.cache_tier` — the disk-backed shared cache segment
  replicas promote :class:`~repro.session.store.CacheStore` entries into,
  invalidated fleet-wide by manifest-version epoch keys.
* :mod:`repro.serving.replicas` — N server processes over one
  :class:`~repro.storage.store.DatasetStore` and one shared tier.
"""

from .auth import TokenAuthenticator
from .cache_tier import DEFAULT_TIER_LAYERS, SharedCacheTier
from .http import ExplanationServer
from .protocol import (
    ALLOWED_CONFIG_OVERRIDES,
    ExplainRequest,
    dump_json,
    parse_explain_request,
    report_document,
)
from .replicas import ReplicaFleet

__all__ = [
    "ALLOWED_CONFIG_OVERRIDES",
    "DEFAULT_TIER_LAYERS",
    "ExplainRequest",
    "ExplanationServer",
    "ReplicaFleet",
    "SharedCacheTier",
    "TokenAuthenticator",
    "dump_json",
    "parse_explain_request",
    "report_document",
]
