"""A fleet of HTTP serving replicas over one dataset store.

:class:`ReplicaFleet` starts N :class:`~repro.serving.http.ExplanationServer`
processes that share:

* **the data** — every replica opens the same on-disk
  :class:`~repro.storage.store.DatasetStore`, so the OS page cache holds
  one physical copy of each dataset's columns however many replicas map
  them; and
* **the computed state** — every replica's
  :class:`~repro.session.store.CacheStore` is wired to one
  :class:`~repro.serving.cache_tier.SharedCacheTier` segment, so a report
  computed by any replica is a file read for all of them.  Tier entries
  are keyed under manifest-version epochs: rewriting a dataset in the
  store invalidates the whole fleet's shared entries without any
  cross-process coordination channel.

Each replica is a real OS process with its own event loop, worker pool
and GIL — the unit of horizontal scaling the serving benchmark measures.
The parent talks to children over one pipe per replica: the child reports
its bound port when ready (or the startup error), then blocks until the
parent signals shutdown, drains its server gracefully and exits.

Typical use::

    fleet = ReplicaFleet(store_root, tier_root, replicas=2,
                         tokens={"token-a": "tenant-a"})
    fleet.start()
    ... load-balance requests across fleet.urls ...
    fleet.stop()
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional

from ..errors import ServingError

__all__ = ["ReplicaFleet"]

#: Seconds a replica gets to report readiness before the fleet gives up.
DEFAULT_START_TIMEOUT_S = 60.0


def _replica_main(conn, store_root: str, tier_root: str,
                  tokens: Optional[Dict[str, str]], host: str,
                  service_config: Optional[dict],
                  fedex_config: Optional[dict],
                  tier_layers: Optional[tuple]) -> None:
    """Entry point of one replica process (module-level: spawn-safe)."""
    # Imports happen in the child so a spawn start method pays them once
    # per replica, not once per pickled closure.
    from ..core.config import FedexConfig, ServiceConfig
    from ..service.service import ExplanationService
    from ..session.store import CacheStore
    from ..storage.store import DatasetStore
    from .auth import TokenAuthenticator
    from .cache_tier import DEFAULT_TIER_LAYERS, SharedCacheTier
    from .http import ExplanationServer

    server = None
    service = None
    dataset_store = None
    try:
        dataset_store = DatasetStore(store_root)
        tier = SharedCacheTier(tier_root, dataset_store=dataset_store,
                               layers=tier_layers or DEFAULT_TIER_LAYERS)
        svc_config = ServiceConfig(**(service_config or {}))
        store = CacheStore(
            budget_bytes=svc_config.cache_budget_bytes,
            tenant_quota_bytes=svc_config.tenant_quota_bytes,
            tier=tier,
        )
        service = ExplanationService(
            config=FedexConfig(**(fedex_config or {})),
            service_config=svc_config,
            store=store,
            dataset_store=dataset_store,
        )
        auth = TokenAuthenticator(tokens) if tokens else None
        server = ExplanationServer(service, auth=auth, host=host).start()
        conn.send(("ready", server.port))
    except BaseException as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
        return
    try:
        conn.recv()  # blocks until the parent signals shutdown (or dies)
    except EOFError:
        pass
    finally:
        try:
            server.close()
            service.close()
            if dataset_store is not None:
                dataset_store.close()
        finally:
            try:
                conn.send(("stopped", None))
            except (BrokenPipeError, OSError):
                pass


class ReplicaFleet:
    """N serving processes over one dataset store and one shared cache tier."""

    def __init__(self, store_root: str, tier_root: str, *,
                 replicas: int = 2,
                 tokens: Optional[Dict[str, str]] = None,
                 host: str = "127.0.0.1",
                 service_config: Optional[dict] = None,
                 fedex_config: Optional[dict] = None,
                 tier_layers: Optional[tuple] = None,
                 start_timeout_s: float = DEFAULT_START_TIMEOUT_S) -> None:
        if replicas < 1:
            raise ValueError(f"a fleet needs at least one replica, got {replicas}")
        self.store_root = str(store_root)
        self.tier_root = str(tier_root)
        self.replicas = int(replicas)
        self.tokens = dict(tokens) if tokens else None
        self.host = host
        self.service_config = dict(service_config) if service_config else None
        self.fedex_config = dict(fedex_config) if fedex_config else None
        self.tier_layers = tuple(tier_layers) if tier_layers else None
        self.start_timeout_s = float(start_timeout_s)
        self._processes: List[multiprocessing.Process] = []
        self._pipes: List = []
        self._ports: List[int] = []

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "ReplicaFleet":
        """Spawn every replica and wait until each has bound its port."""
        if self._processes:
            return self
        context = multiprocessing.get_context()
        try:
            for index in range(self.replicas):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_replica_main,
                    args=(child_conn, self.store_root, self.tier_root,
                          self.tokens, self.host, self.service_config,
                          self.fedex_config, self.tier_layers),
                    name=f"repro-replica-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._pipes.append(parent_conn)
            for index, conn in enumerate(self._pipes):
                if not conn.poll(self.start_timeout_s):
                    raise ServingError(
                        f"replica {index} did not report readiness within "
                        f"{self.start_timeout_s}s")
                kind, payload = conn.recv()
                if kind != "ready":
                    raise ServingError(f"replica {index} failed to start: {payload}")
                self._ports.append(int(payload))
        except BaseException:
            self.stop()
            raise
        return self

    @property
    def ports(self) -> List[int]:
        return list(self._ports)

    @property
    def urls(self) -> List[str]:
        """One base URL per live replica, for the client to balance across."""
        return [f"http://{self.host}:{port}" for port in self._ports]

    def stop(self, timeout_s: float = 30.0) -> None:
        """Signal every replica to drain and exit; idempotent."""
        for conn in self._pipes:
            try:
                conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:
                pass
        self._processes = []
        self._pipes = []
        self._ports = []

    def __enter__(self) -> "ReplicaFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicaFleet(replicas={self.replicas}, "
                f"live={sum(p.is_alive() for p in self._processes)}, "
                f"ports={self._ports})")
