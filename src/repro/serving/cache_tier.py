"""The out-of-process shared cache tier of a replica fleet.

N replica processes over one :class:`~repro.storage.store.DatasetStore`
share mmap pages for the *data*; this module shares the *computed* state:
a disk-backed segment that :class:`~repro.session.store.CacheStore`
snapshots are promoted into, so an explanation computed by one replica is
a file read (not a recomputation) for every other replica.

Layout::

    <root>/<epoch>/<layer>-<digest>.pkl     one file per entry
    <root>/<epoch>/...

* **Entries** are individually pickled ``{"value", "nbytes"}`` documents,
  written atomically (temp file + rename) so a reader can never observe a
  torn entry; the digest is a blake2b of the pickled ``(layer, key)``
  composite.  Unpicklable values (environment-token-keyed reports hold
  process-local identity on purpose) are skipped, never fatal.
* **Epochs are the invalidation mechanism.**  The epoch directory name is
  a hash over the dataset store's manifest versions and frame
  fingerprints — exactly the tokens
  :class:`~repro.storage.reader.FrameDescriptor` already pins.  Rewriting
  any dataset changes its manifest version, which changes the epoch
  token, which sends every replica to a fresh (empty) epoch directory:
  cross-replica invalidation without a coordination channel.  Stale
  epochs are garbage-collected by :meth:`sweep`.
* **The tier is an L2, not a store of record.**  ``CacheStore`` consults
  it only on local misses and promotes hits into local memory; every
  tier failure (missing file, corrupt pickle, dead disk) degrades to a
  plain miss.

Wire it up by constructing the replica's store with ``tier=``::

    tier = SharedCacheTier(segment_dir, dataset_store=dataset_store)
    store = CacheStore(budget_bytes=..., tier=tier)
    service = ExplanationService(store=store, dataset_store=dataset_store)
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["SharedCacheTier", "DEFAULT_TIER_LAYERS"]

#: Layers promoted into the shared segment by default.  Reports and
#: phase-1 scores are the expensive-to-recompute, cheap-to-ship artefacts;
#: partitions/structures/columns pin large index arrays that the local
#: stores rebuild quickly from the shared mmap pages anyway.
DEFAULT_TIER_LAYERS = ("reports", "scores")

#: Entries larger than this are not shared (pickling and shipping them
#: costs more than recomputing on the other replica).
DEFAULT_MAX_VALUE_BYTES = 32 * 1024 * 1024

#: How long a computed epoch token is trusted before the dataset-store
#: manifests are re-read.  Refreshing reads one small JSON file per
#: dataset — cheap, but not per-lookup cheap.
DEFAULT_EPOCH_TTL_S = 5.0


class SharedCacheTier:
    """Disk-backed shared cache segment with manifest-version epoch keys."""

    def __init__(self, root: str | Path, dataset_store=None,
                 layers: Sequence[str] = DEFAULT_TIER_LAYERS,
                 max_value_bytes: int = DEFAULT_MAX_VALUE_BYTES,
                 epoch_ttl_s: float = DEFAULT_EPOCH_TTL_S) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.dataset_store = dataset_store
        self.layers = tuple(layers)
        self.max_value_bytes = int(max_value_bytes)
        self.epoch_ttl_s = float(epoch_ttl_s)
        self._lock = threading.Lock()
        self._epoch: Optional[str] = None
        self._epoch_read_at = 0.0
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "offers": 0, "skipped": 0,
            "epoch_refreshes": 0, "swept": 0,
        }

    # ------------------------------------------------------------------ epochs
    def epoch_token(self) -> str:
        """The current epoch (cached up to ``epoch_ttl_s``; see :meth:`refresh_epoch`)."""
        with self._lock:
            fresh_enough = (self._epoch is not None and
                            time.monotonic() - self._epoch_read_at < self.epoch_ttl_s)
            if fresh_enough:
                return self._epoch
        return self.refresh_epoch()

    def refresh_epoch(self) -> str:
        """Recompute the epoch from the dataset store's manifests, now.

        The token hashes every dataset's ``(name, manifest version, frame
        fingerprint)`` — the same tokens frame descriptors pin — so any
        rewrite of any dataset moves every replica that refreshes to a new
        epoch directory.  Without a dataset store the tier is static
        (nothing it caches over can change underneath it).
        """
        if self.dataset_store is None:
            token = "static"
        else:
            digest = hashlib.blake2b(digest_size=16)
            # version_tokens() reads manifests fresh from disk — a rewrite
            # by *another replica's* process must move this one's epoch too.
            for name, version, fingerprint in self.dataset_store.version_tokens():
                digest.update(f"{name}:{version}:{fingerprint}\n".encode())
            token = f"epoch-{digest.hexdigest()}"
        with self._lock:
            self._epoch = token
            self._epoch_read_at = time.monotonic()
            self.stats["epoch_refreshes"] += 1
        return token

    # ----------------------------------------------------------------- entries
    def lookup(self, layer: str, key: object) -> Optional[Tuple[object, int]]:
        """``(value, nbytes)`` of one shared entry, or ``None``.

        The ``CacheStore`` L2 hook: called on every local miss, so the
        non-served-layer rejection must be the first (and cheapest) check.
        """
        if layer not in self.layers:
            return None
        path = self._entry_path(layer, key)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                document = pickle.load(handle)
            value, nbytes = document["value"], int(document["nbytes"])
        except Exception:
            with self._lock:
                self.stats["misses"] += 1
            return None
        with self._lock:
            self.stats["hits"] += 1
        return value, nbytes

    def offer(self, layer: str, key: object, value: object,
              nbytes: Optional[int] = None) -> bool:
        """Share one entry with the fleet; returns whether it was written.

        Skips non-served layers, oversized values, unpicklable values, and
        entries already present (first writer wins — the values are
        deterministic recomputations of each other anyway).
        """
        if layer not in self.layers:
            return False
        if nbytes is not None and nbytes > self.max_value_bytes:
            with self._lock:
                self.stats["skipped"] += 1
            return False
        path = self._entry_path(layer, key)
        if path is None or path.exists():
            return False
        try:
            blob = pickle.dumps({"value": value, "nbytes": int(nbytes or 0)},
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self.stats["skipped"] += 1
            return False
        if len(blob) > self.max_value_bytes:
            with self._lock:
                self.stats["skipped"] += 1
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=str(path.parent), prefix=path.name + ".", delete=False)
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats["offers"] += 1
        return True

    def publish(self, store) -> int:
        """Bulk-promote a :class:`CacheStore`'s served layers into the tier.

        The warm-handoff path: a replica that has served traffic publishes
        its snapshot so replicas started later boot warm.  Returns the
        number of entries written.
        """
        written = 0
        for layer, key, _tenant, nbytes, value in store.snapshot_entries():
            if self.offer(layer, key, value, nbytes=nbytes):
                written += 1
        return written

    def sweep(self) -> int:
        """Delete stale epoch directories; returns how many were removed."""
        current = self.epoch_token()
        removed = 0
        for child in self.root.iterdir():
            if not child.is_dir() or child.name == current:
                continue
            for entry in child.iterdir():
                try:
                    entry.unlink()
                except OSError:
                    pass
            try:
                child.rmdir()
            except OSError:
                continue
            removed += 1
        with self._lock:
            self.stats["swept"] += removed
        return removed

    def entry_count(self) -> int:
        """Number of entries stored under the current epoch."""
        epoch_dir = self.root / self.epoch_token()
        if not epoch_dir.is_dir():
            return 0
        return sum(1 for path in epoch_dir.iterdir() if path.suffix == ".pkl")

    # --------------------------------------------------------------- internals
    def _entry_path(self, layer: str, key: object) -> Optional[Path]:
        try:
            blob = pickle.dumps((layer, key), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        digest = hashlib.blake2b(blob, digest_size=16).hexdigest()
        return self.root / self.epoch_token() / f"{layer}-{digest}.pkl"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedCacheTier(root={str(self.root)!r}, "
                f"layers={self.layers}, entries={self.entry_count()})")
