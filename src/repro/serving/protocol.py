"""Request validation and response documents of the HTTP front end.

The wire format is deliberately small:

* **Explain request** (``POST /explain`` and ``POST /explain/stream``) — a
  JSON object::

      {"query": "SELECT * FROM spotify WHERE popularity > 65",
       "measure": "exceptionality",          # optional
       "config": {"top_k_explanations": 3}}  # optional, whitelisted keys

  The query is the same SQL-ish dialect the paper's workload uses
  (:func:`repro.operators.parser.parse_query`); table names resolve
  against the server's resolver (named datasets of the shared
  :class:`~repro.storage.store.DatasetStore`, or any ``name ->
  DataFrame`` mapping).  Nested ``[...]`` subqueries are materialised
  server-side, one level deep, exactly as the parser defines them.

* **Explain response** — :func:`report_document`: explanations (each via
  :meth:`Explanation.to_dict`), skyline keys, selected columns, scores
  and timings.  The same function produces the final chunk of a streamed
  response, which is how the bit-identity guarantee between the two
  endpoints holds by construction.

* **Stream chunks** (NDJSON) — one JSON object per line: ``{"event":
  "progress", ...}`` per finished (partition, attribute) pair while later
  shards still compute, then exactly one ``{"event": "report", "report":
  {...}}``, or ``{"event": "error", ...}`` if the request failed mid-way.

Config overrides are whitelisted: a client may tune result shaping and
sampling, but not the execution backend, worker counts, or cache policy —
those are the operator's knobs, not the tenant's.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, Optional

import numpy as np

from ..core.config import FedexConfig
from ..dataframe.frame import DataFrame
from ..errors import (
    ExplanationError,
    QueryParseError,
    ServingRequestError,
    UnknownDatasetError,
)
from ..operators.parser import ParsedQuery, parse_query
from ..operators.step import ExploratoryStep

__all__ = [
    "ALLOWED_CONFIG_OVERRIDES",
    "ExplainRequest",
    "parse_explain_request",
    "report_document",
    "dump_json",
]

#: ``FedexConfig`` fields a request may override.  Result shaping and
#: sampling only — never backends, workers, or cache policy.
ALLOWED_CONFIG_OVERRIDES = frozenset({
    "top_k_explanations", "top_k_columns", "sample_size", "seed",
    "interestingness_weight", "contribution_weight", "use_skyline",
    "target_columns", "exclude_columns", "positive_contribution_only",
})

#: Hard cap on request documents; an explain request is a query string
#: plus a few overrides, never megabytes.
MAX_REQUEST_BYTES = 64 * 1024


@dataclasses.dataclass
class ExplainRequest:
    """One validated explain request, ready for the service."""

    step: ExploratoryStep
    measure: Optional[str]
    config: Optional[FedexConfig]
    query_text: str


def parse_explain_request(body: bytes, resolver: Callable[[str], DataFrame],
                          base_config: FedexConfig) -> ExplainRequest:
    """Validate a request body into an :class:`ExplainRequest`.

    Raises :class:`~repro.errors.ServingRequestError` (HTTP 400) for
    malformed JSON/queries/overrides and
    :class:`~repro.errors.UnknownDatasetError` (HTTP 404) for table names
    the resolver cannot serve.
    """
    if len(body) > MAX_REQUEST_BYTES:
        raise ServingRequestError(
            f"request body of {len(body)} bytes exceeds the "
            f"{MAX_REQUEST_BYTES}-byte limit")
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ServingRequestError(f"request body is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ServingRequestError("request body must be a JSON object")
    unknown = set(document) - {"query", "measure", "config"}
    if unknown:
        raise ServingRequestError(
            f"unknown request field(s): {', '.join(sorted(unknown))}")

    query_text = document.get("query")
    if not isinstance(query_text, str) or not query_text.strip():
        raise ServingRequestError("request needs a non-empty 'query' string")
    try:
        parsed = parse_query(query_text)
    except QueryParseError as error:
        raise ServingRequestError(f"could not parse query: {error}") from None

    measure = document.get("measure")
    if measure is not None and not isinstance(measure, str):
        raise ServingRequestError("'measure' must be a string when given")

    config = _apply_overrides(base_config, document.get("config"))
    step = _build_step(parsed, resolver)
    return ExplainRequest(step=step, measure=measure, config=config,
                          query_text=query_text.strip())


def _apply_overrides(base: FedexConfig, overrides) -> Optional[FedexConfig]:
    if overrides is None:
        return None
    if not isinstance(overrides, dict):
        raise ServingRequestError("'config' must be a JSON object when given")
    refused = set(overrides) - ALLOWED_CONFIG_OVERRIDES
    if refused:
        raise ServingRequestError(
            f"config override(s) not allowed over HTTP: "
            f"{', '.join(sorted(refused))}")
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in overrides.items()
    }
    try:
        return dataclasses.replace(base, **coerced)
    except (TypeError, ValueError, ExplanationError) as error:
        raise ServingRequestError(f"invalid config override: {error}") from None


def _build_step(parsed: ParsedQuery, resolver: Callable[[str], DataFrame],
                ) -> ExploratoryStep:
    """Materialise a parsed query into a step, resolving table names.

    A one-level nested subquery is applied first and its output becomes
    the outer step's (single) input — the outer explanation then explains
    the outer operation, exactly like workload query 12.
    """
    if parsed.inner is not None:
        inner_step = _build_step(parsed.inner, resolver)
        inputs = [inner_step.output]
    else:
        inputs = [_resolve(resolver, name) for name in parsed.tables]
    return ExploratoryStep(inputs, parsed.operation, label=parsed.text or None)


def _resolve(resolver: Callable[[str], DataFrame], name: str) -> DataFrame:
    try:
        frame = resolver(name)
    except KeyError:
        frame = None
    except Exception as error:
        raise UnknownDatasetError(
            f"could not open dataset {name!r}: {error}") from None
    if frame is None:
        raise UnknownDatasetError(f"unknown dataset {name!r}")
    return frame


# ----------------------------------------------------------------- responses
def report_document(report) -> Dict:
    """The JSON document of one finished explanation report.

    Used verbatim by the plain endpoint and as the final chunk of the
    streaming endpoint, so the two are bit-identical by construction.
    """
    return {
        "explanations": [explanation.to_dict()
                         for explanation in report.explanations],
        "skyline_keys": [list(key) for key in report.skyline_keys()],
        "selected_columns": list(report.selected_columns),
        "interestingness_scores": dict(report.interestingness_scores),
        "candidates": len(report.all_candidates),
        "timings": dict(report.timings),
    }


def _json_default(value):
    """JSON fallback for the NumPy scalars/arrays report artefacts carry."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def dump_json(document: object) -> bytes:
    """Canonical JSON serialisation of every serving payload.

    One serialiser for both endpoints: identical documents produce
    identical bytes, which is what the streamed-vs-plain bit-identity
    acceptance check compares.
    """
    return json.dumps(document, default=_json_default,
                      separators=(",", ":"), sort_keys=True).encode("utf-8")
