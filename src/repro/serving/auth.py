"""Per-tenant bearer-token authentication for the HTTP front end.

One :class:`TokenAuthenticator` per server, built from a ``token ->
tenant`` mapping: every request must carry ``Authorization: Bearer
<token>``, and the token names the tenant the request is admitted,
metered, and quota-charged as.  Many tokens may map to one tenant (key
rotation, one tenant with several clients).

Token comparison is constant-time (:func:`hmac.compare_digest` against
every known token) so response timing leaks nothing about how much of a
guessed token matched.  The authenticator is immutable after construction
— rotating tokens means building a new one and swapping it on the server,
which is a single reference assignment and therefore safe under
concurrent requests.
"""

from __future__ import annotations

import hmac
from typing import Dict, Mapping, Optional

from ..errors import ServingAuthError

__all__ = ["TokenAuthenticator"]


class TokenAuthenticator:
    """Maps bearer tokens to tenant identities, in constant time."""

    def __init__(self, tokens: Mapping[str, str]) -> None:
        if not tokens:
            raise ValueError("an authenticator needs at least one token")
        for token, tenant in tokens.items():
            if not token or not isinstance(token, str):
                raise ValueError(f"invalid token {token!r}")
            if not tenant or not isinstance(tenant, str):
                raise ValueError(f"invalid tenant {tenant!r} for a token")
        self._tokens: Dict[str, str] = dict(tokens)

    def authenticate(self, authorization: Optional[str]) -> str:
        """The tenant of an ``Authorization`` header value; raises on failure.

        Accepts exactly ``Bearer <token>`` (scheme case-insensitive).  A
        missing header, a different scheme, or an unknown token all raise
        :class:`~repro.errors.ServingAuthError` — the server renders it as
        HTTP 401.
        """
        if not authorization:
            raise ServingAuthError("missing Authorization header")
        scheme, _, token = authorization.strip().partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise ServingAuthError(
                "Authorization must be of the form 'Bearer <token>'")
        # Compare against every known token: the work done is independent
        # of whether (and where) the presented token matches.
        tenant: Optional[str] = None
        for known, known_tenant in self._tokens.items():
            if hmac.compare_digest(known.encode(), token.encode()):
                tenant = known_tenant
        if tenant is None:
            raise ServingAuthError("unknown bearer token")
        return tenant

    def __len__(self) -> int:
        return len(self._tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tenants = sorted(set(self._tokens.values()))
        return (f"TokenAuthenticator(tokens={len(self._tokens)}, "
                f"tenants={len(tenants)})")
