"""Integration tests of the FEDEX engine (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedexConfig, FedexExplainer, MappingPartitioner, explain_step
from repro.dataframe import Comparison, DataFrame
from repro.errors import ExplanationError
from repro.operators import ExploratoryStep, Filter, GroupBy, Join, Union


@pytest.fixture
def filter_step(spotify_small):
    return ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 65)))


@pytest.fixture
def groupby_step(spotify_small):
    operation = GroupBy("year", {"loudness": ["mean"], "danceability": ["mean"]},
                        pre_filter=Comparison("year", ">=", 1990))
    return ExploratoryStep([spotify_small], operation)


class TestFilterExplanations:
    def test_produces_explanations(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        assert report.explanations

    def test_interestingness_scores_cover_output_columns(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        assert set(report.interestingness_scores).issubset(set(filter_step.output.column_names))
        assert all(score >= 0 for score in report.interestingness_scores.values())

    def test_selected_columns_are_most_interesting(self, filter_step):
        report = FedexExplainer(FedexConfig(top_k_columns=3)).explain(filter_step)
        assert len(report.selected_columns) <= 3
        top = max(report.interestingness_scores, key=report.interestingness_scores.get)
        assert top in report.selected_columns

    def test_all_candidates_have_positive_contribution(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        assert all(candidate.contribution > 0 for candidate in report.all_candidates)

    def test_skyline_is_subset_of_candidates(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        candidate_keys = {candidate.key() for candidate in report.all_candidates}
        assert set(report.skyline_keys()).issubset(candidate_keys)

    def test_no_duplicate_final_explanations(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        identities = [(e.attribute, e.row_set_label) for e in report.explanations]
        assert len(identities) == len(set(identities))

    def test_decade_explained_by_recent_decades(self, filter_step):
        """The running example's insight: popular songs skew to recent decades."""
        config = FedexConfig(target_columns=["decade"])
        report = FedexExplainer(config).explain(filter_step)
        assert report.explanations
        labels = {e.row_set_label for e in report.explanations}
        assert labels & {"2010s", "2000s", "2020s"}

    def test_timings_recorded(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        assert set(report.timings) == {"interestingness", "partitioning", "contribution",
                                       "skyline", "visualization"}
        assert report.total_time > 0


class TestGroupByExplanations:
    def test_produces_explanations(self, groupby_step):
        report = FedexExplainer().explain(groupby_step)
        assert report.explanations

    def test_explained_columns_are_aggregates(self, groupby_step):
        report = FedexExplainer().explain(groupby_step)
        for explanation in report.explanations:
            assert explanation.attribute in {"mean_loudness", "mean_danceability"}

    def test_row_sets_come_from_group_keys(self, groupby_step):
        report = FedexExplainer().explain(groupby_step)
        for explanation in report.explanations:
            assert explanation.candidate.row_set.source_attribute == "year"


class TestJoinAndUnion:
    def test_join_step_explained(self, products_and_sales_small):
        products, sales = products_and_sales_small
        step = ExploratoryStep([products, sales], Join("item"))
        report = FedexExplainer(FedexConfig(sample_size=2_000, top_k_columns=3)).explain(step)
        assert report.interestingness_scores
        assert report.explanations

    def test_union_step_explained(self, spotify_small):
        recent = spotify_small.filter(Comparison("year", ">", 2010))
        step = ExploratoryStep([spotify_small, recent], Union())
        report = FedexExplainer(FedexConfig(top_k_columns=3)).explain(step)
        assert report.interestingness_scores


class TestConfigurationEffects:
    def test_target_columns_restrict_explanations(self, filter_step):
        config = FedexConfig(target_columns=["decade", "year"])
        report = FedexExplainer(config).explain(filter_step)
        assert set(e.attribute for e in report.explanations).issubset({"decade", "year"})

    def test_unknown_target_columns_rejected(self, filter_step):
        config = FedexConfig(target_columns=["nope"])
        with pytest.raises(ExplanationError):
            FedexExplainer(config).explain(filter_step)

    def test_exclude_columns(self, filter_step):
        config = FedexConfig(exclude_columns=("popularity",))
        report = FedexExplainer(config).explain(filter_step)
        assert "popularity" not in report.interestingness_scores

    def test_top_k_explanations_limit(self, filter_step):
        config = FedexConfig(top_k_explanations=1)
        report = FedexExplainer(config).explain(filter_step)
        assert len(report.explanations) == 1

    def test_disable_skyline_keeps_all_candidates(self, filter_step):
        config = FedexConfig(use_skyline=False, top_k_explanations=None)
        report = FedexExplainer(config).explain(filter_step)
        with_skyline = FedexExplainer(FedexConfig()).explain(filter_step)
        assert len(report.skyline_candidates) >= len(with_skyline.skyline_candidates)

    def test_sampling_changes_only_interestingness_phase(self, filter_step):
        exact = FedexExplainer(FedexConfig(sample_size=None, seed=0)).explain(filter_step)
        sampled = FedexExplainer(FedexConfig(sample_size=500, seed=0)).explain(filter_step)
        # Contribution is still computed on all rows, so for each shared
        # candidate key the raw contribution must be identical.
        exact_contributions = {c.key(): c.contribution for c in exact.all_candidates}
        shared = [c for c in sampled.all_candidates if c.key() in exact_contributions]
        assert shared
        for candidate in shared:
            assert candidate.contribution == pytest.approx(
                exact_contributions[candidate.key()], rel=1e-9
            )

    def test_sampling_is_deterministic_given_seed(self, filter_step):
        first = FedexExplainer(FedexConfig(sample_size=500, seed=5)).explain(filter_step)
        second = FedexExplainer(FedexConfig(sample_size=500, seed=5)).explain(filter_step)
        assert first.skyline_keys() == second.skyline_keys()

    def test_custom_partitioner_is_used(self, spotify_small):
        step = ExploratoryStep([spotify_small], Filter(Comparison("popularity", ">", 70)))
        partitioner = MappingPartitioner("era", lambda year: "old" if year < 2000 else "new")
        explainer = FedexExplainer(
            FedexConfig(target_columns=["year"]), extra_partitioners=[partitioner]
        )
        report = explainer.explain(step)
        methods = {candidate.row_set.method for candidate in report.all_candidates}
        assert "era" in methods

    def test_measure_override(self, filter_step):
        report = FedexExplainer().explain(filter_step, measure="diversity")
        assert all(c.measure_name == "diversity" for c in report.all_candidates)


class TestReportHelpers:
    def test_explanation_for(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        attribute = report.explanations[0].attribute
        assert report.explanation_for(attribute) is report.explanations[0]
        assert report.explanation_for("missing-column") is None

    def test_render_text_mentions_every_explanation(self, filter_step):
        report = FedexExplainer().explain(filter_step)
        text = report.render_text()
        assert text.count("Explanation:") == len(report.explanations)

    def test_render_text_without_explanations(self, tiny_frame):
        step = ExploratoryStep([tiny_frame], Filter(Comparison("popularity", ">", -1)))
        report = FedexExplainer().explain(step)
        assert "No explanation" in report.render_text() or report.explanations

    def test_explain_step_helper(self, filter_step):
        report = explain_step(filter_step, FedexConfig(top_k_explanations=2))
        assert len(report.explanations) <= 2


class TestNoExplanationCases:
    def test_no_positive_contribution_yields_no_explanations(self):
        frame = DataFrame({
            "x": np.asarray([1.0, 2.0, 3.0, 4.0] * 5),
            "label": np.asarray(["a", "b", "c", "d"] * 5, dtype=object),
        })
        # A filter that keeps everything changes nothing: interestingness is 0
        # for every column, so there is nothing to explain.
        step = ExploratoryStep([frame], Filter(Comparison("x", ">", 0)))
        report = FedexExplainer().explain(step)
        assert report.explanations == []
        assert report.all_candidates == []
