"""End-to-end checks of the paper's running example (Examples 1.1–3.10).

These tests rebuild the Spotify running example on the synthetic dataset and
verify the *semantics* the paper describes: which columns come out as
interesting, which sets-of-rows explain them, and what the final captions
say.  Absolute scores differ (the data is synthetic), but the relationships
the paper highlights must hold.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ContributionCalculator,
    DiversityMeasure,
    ExceptionalityMeasure,
    FedexConfig,
    FedexExplainer,
    ManyToOnePartitioner,
)
from repro.dataframe import Comparison
from repro.operators import ExploratoryStep, Filter, GroupBy


@pytest.fixture(scope="module")
def spotify(spotify_small):
    return spotify_small


@pytest.fixture(scope="module")
def filter_step(spotify):
    """Example 1.1 / query 6: songs with popularity > 65."""
    return ExploratoryStep([spotify], Filter(Comparison("popularity", ">", 65)), label="Q6")


@pytest.fixture(scope="module")
def groupby_step(spotify):
    """Example 1.1: mean loudness / danceability per year, for songs after 1990."""
    operation = GroupBy("year", {"loudness": ["mean"], "danceability": ["mean"]},
                        pre_filter=Comparison("year", ">=", 1990))
    return ExploratoryStep([spotify], operation, label="running-example group-by")


class TestExample32Interestingness:
    def test_decade_deviation_is_high_for_the_popularity_filter(self, spotify, filter_step):
        measure = ExceptionalityMeasure()
        decade_score = measure.score_step(filter_step, "decade")
        assert decade_score > 0.15

    def test_decade_and_year_more_interesting_than_unrelated_columns(self, filter_step):
        measure = ExceptionalityMeasure()
        assert measure.score_step(filter_step, "decade") > measure.score_step(filter_step, "liveness")
        assert measure.score_step(filter_step, "year") > measure.score_step(filter_step, "key")

    def test_loudness_more_diverse_than_danceability(self, groupby_step):
        """Example 3.2: 'loudness' (CV 0.13) beats 'danceability' (CV 0.04)."""
        measure = DiversityMeasure()
        assert measure.score_step(groupby_step, "mean_loudness") > \
            measure.score_step(groupby_step, "mean_danceability")


class TestExample34Contribution:
    def test_removing_2010s_songs_lowers_the_decade_deviation(self, spotify, filter_step):
        """Example 3.4: the '2010s' rows contribute positively to the decade deviation."""
        partition = ManyToOnePartitioner().partition(spotify, "year", n_sets=10)
        if partition is None or "2010s" not in {s.label for s in partition.sets}:
            partition = None
        calculator = ContributionCalculator(filter_step, ExceptionalityMeasure())
        if partition is not None:
            target = next(s for s in partition.sets if s.label == "2010s")
            assert calculator.contribution(target, "decade") > 0

    def test_recent_decades_contribute_more_than_old_ones(self, spotify, filter_step):
        from repro.core import FrequencyPartitioner

        partition = FrequencyPartitioner().partition(spotify, "decade", n_sets=10)
        calculator = ContributionCalculator(filter_step, ExceptionalityMeasure())
        contributions = {
            row_set.label: calculator.contribution(row_set, "decade") for row_set in partition.sets
        }
        recent = max(contributions.get("2010s", 0.0), contributions.get("2000s", 0.0))
        old = contributions.get("1950s", 0.0)
        assert recent > old


class TestFigure2Explanations:
    def test_filter_explanation_points_at_recent_songs(self, filter_step):
        config = FedexConfig(target_columns=["decade"], seed=0)
        report = FedexExplainer(config).explain(filter_step)
        assert report.explanations
        explanation = report.explanations[0]
        assert explanation.attribute == "decade"
        assert explanation.row_set_label in {"2010s", "2000s", "2020s"}
        assert "more frequent" in explanation.caption

    def test_groupby_explanation_uses_decade_labels_via_many_to_one(self, groupby_step):
        config = FedexConfig(target_columns=["mean_loudness"], seed=0)
        report = FedexExplainer(config).explain(groupby_step)
        assert report.explanations
        label_attributes = {e.candidate.row_set.label_attribute for e in report.explanations}
        # The many-to-one partition (year -> decade) competes with the plain
        # frequency partition on year; at least one explanation should be
        # phrased at a level the user can read (either is acceptable), and the
        # candidate pool must contain decade-level sets-of-rows.
        pool_label_attributes = {c.row_set.label_attribute for c in report.all_candidates}
        assert "decade" in pool_label_attributes
        assert label_attributes

    def test_groupby_explanation_mentions_standard_deviations(self, groupby_step):
        config = FedexConfig(target_columns=["mean_loudness"], seed=0)
        report = FedexExplainer(config).explain(groupby_step)
        assert "standard deviations" in report.explanations[0].caption

    def test_skyline_is_small(self, filter_step):
        """The paper reports at most 2-3 skyline explanations per step."""
        report = FedexExplainer(FedexConfig(seed=0)).explain(filter_step)
        assert 1 <= len(report.explanations) <= 8
