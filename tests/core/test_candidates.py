"""Unit tests for explanation candidates (paper §3.4 / §3.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExplanationCandidate, FrequencyPartitioner, build_candidates
from repro.dataframe import DataFrame


@pytest.fixture
def partition():
    frame = DataFrame({
        "decade": np.asarray(["1990s", "1990s", "2000s", "2010s", "2010s", "2010s"], dtype=object),
    })
    return FrequencyPartitioner().partition(frame, "decade", 3)


class TestBuildCandidates:
    def test_one_candidate_per_positive_set(self, partition):
        raw = [0.2, -0.1, 0.05]
        standardized = [1.0, -1.2, 0.2]
        candidates = build_candidates(partition, "decade", 0.5, raw, standardized, "exceptionality")
        assert len(candidates) == 2
        assert all(candidate.contribution > 0 for candidate in candidates)

    def test_positive_only_can_be_disabled(self, partition):
        raw = [0.2, -0.1, 0.05]
        standardized = [1.0, -1.2, 0.2]
        candidates = build_candidates(partition, "decade", 0.5, raw, standardized,
                                      "exceptionality", positive_only=False)
        assert len(candidates) == 3

    def test_scores_recorded(self, partition):
        candidates = build_candidates(partition, "decade", 0.5, [0.2, 0.1, 0.3],
                                      [0.5, -0.5, 1.0], "exceptionality")
        best = max(candidates, key=lambda c: c.contribution)
        assert best.interestingness == 0.5
        assert best.standardized_contribution == 1.0
        assert best.partition_size == 3
        assert best.measure_name == "exceptionality"

    def test_candidate_key_unique_per_set(self, partition):
        candidates = build_candidates(partition, "decade", 0.5, [0.2, 0.1, 0.3],
                                      [0.5, -0.5, 1.0], "exceptionality")
        keys = {candidate.key() for candidate in candidates}
        assert len(keys) == len(candidates)

    def test_describe_mentions_attribute_and_label(self, partition):
        candidates = build_candidates(partition, "decade", 0.5, [0.2, 0.1, 0.3],
                                      [0.5, -0.5, 1.0], "exceptionality")
        text = candidates[0].describe()
        assert "decade" in text
