"""Unit tests for the natural-language caption templates (paper §3.7)."""

from __future__ import annotations

from repro.core.captions import diversity_caption, exceptionality_caption, generic_caption


class TestExceptionalityCaption:
    def test_structure_matches_paper_figure_2a(self):
        caption = exceptionality_caption("decade", "2010s", 0.035, 0.61)
        assert "column 'decade'" in caption
        assert "'2010s'" in caption
        assert "17 times" in caption
        assert "3.5%" in caption
        assert "61%" in caption
        assert "more frequent" in caption

    def test_less_frequent_direction(self):
        caption = exceptionality_caption("year", "[1960, 1965)", 0.10, 0.02)
        assert "less frequent" in caption

    def test_vanished_value(self):
        caption = exceptionality_caption("pack", "48", 0.10, 0.0)
        assert "infinitely" in caption

    def test_nearly_equal_frequencies(self):
        caption = exceptionality_caption("pack", "6", 0.30, 0.305)
        assert "about equally" in caption


class TestDiversityCaption:
    def test_structure_matches_paper_figure_2b(self):
        caption = diversity_caption("loudness", "decade", "1990s", -10.8, -8.7, -1.2)
        assert "column 'loudness'" in caption
        assert "'decade'='1990s'" in caption
        assert "1.2 standard deviations lower" in caption
        assert "-8.7" in caption
        assert "low" in caption

    def test_high_direction(self):
        caption = diversity_caption("mean_popularity", "decade", "2020s", 80.0, 60.0, 2.1)
        assert "higher" in caption
        assert "high" in caption


class TestGenericCaption:
    def test_mentions_measure_and_scores(self):
        caption = generic_caption("total", "vendor_001", "concentration", 0.42, 1.7)
        assert "concentration" in caption
        assert "total" in caption
        assert "vendor_001" in caption
