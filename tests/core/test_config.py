"""Unit tests for FedexConfig."""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_SAMPLE_SIZE, FedexConfig, exact_config, sampling_config
from repro.errors import ExplanationError


class TestValidation:
    def test_defaults_are_valid(self):
        config = FedexConfig()
        assert config.sample_size is None
        assert tuple(config.set_counts) == (5, 10)

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(sample_size=0)

    def test_empty_set_counts_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(set_counts=())

    def test_non_positive_set_counts_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(set_counts=(5, 0))

    def test_unknown_partition_method_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(partition_methods=("frequency", "magic"))

    def test_unknown_partition_source_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(partition_source="some")

    def test_negative_weights_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(interestingness_weight=-1.0)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(interestingness_weight=0.0, contribution_weight=0.0)


class TestConveniences:
    def test_with_sampling(self):
        config = FedexConfig().with_sampling()
        assert config.sample_size == DEFAULT_SAMPLE_SIZE

    def test_without_sampling(self):
        assert FedexConfig(sample_size=100).without_sampling().sample_size is None

    def test_restricted_to(self):
        config = FedexConfig().restricted_to(["a", "b"])
        assert config.target_columns == ["a", "b"]

    def test_config_is_immutable(self):
        config = FedexConfig()
        with pytest.raises(Exception):
            config.sample_size = 10

    def test_weighted_score_denominator(self):
        config = FedexConfig(interestingness_weight=2.0, contribution_weight=3.0)
        assert config.weighted_score_denominator == 5.0

    def test_factory_helpers(self):
        assert exact_config().sample_size is None
        assert sampling_config().sample_size == DEFAULT_SAMPLE_SIZE
        assert sampling_config(1_000).sample_size == 1_000

    def test_with_backend_switches_backend(self):
        config = FedexConfig().with_backend("parallel", workers=4)
        assert config.backend == "parallel"
        assert config.workers == 4

    def test_with_backend_preserves_workers_when_omitted(self):
        config = FedexConfig(workers=8).with_backend("parallel")
        assert config.workers == 8

    def test_cache_toggles_default_on(self):
        config = FedexConfig()
        assert config.cache_reports and config.cache_structures

    def test_shard_batch_defaults_to_automatic(self):
        assert FedexConfig().shard_batch is None
        assert FedexConfig(shard_batch=3).shard_batch == 3

    def test_non_positive_shard_batch_rejected(self):
        with pytest.raises(ExplanationError):
            FedexConfig(shard_batch=0)
        with pytest.raises(ExplanationError):
            FedexConfig(shard_batch=-2)

    def test_with_backend_preserves_shard_batch(self):
        config = FedexConfig(shard_batch=4).with_backend("process")
        assert config.shard_batch == 4
