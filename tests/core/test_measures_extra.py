"""Unit tests for the additional interestingness measures (§3.8 extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CompactnessMeasure,
    CoverageMeasure,
    FedexConfig,
    FedexExplainer,
    SurprisingnessMeasure,
    extended_registry,
)
from repro.dataframe import Comparison, DataFrame
from repro.operators import ExploratoryStep, Filter, GroupBy


@pytest.fixture
def frame() -> DataFrame:
    rng = np.random.default_rng(1)
    n = 500
    value = rng.normal(10.0, 2.0, n)
    group = np.asarray(["a", "b", "c", "d", "e"], dtype=object)[rng.integers(0, 5, n)]
    return DataFrame({"value": value, "group": group})


class TestSurprisingness:
    def test_shifting_filter_scores_high(self, frame):
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 13)))
        score = SurprisingnessMeasure().score_step(step, "value")
        assert score > 1.0

    def test_neutral_filter_scores_near_zero(self, frame):
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", -100)))
        assert SurprisingnessMeasure().score_step(step, "value") == pytest.approx(0.0, abs=1e-9)

    def test_categorical_columns_not_applicable(self, frame):
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 10)))
        assert "group" not in SurprisingnessMeasure().applicable_columns(step)

    def test_missing_column_scores_zero(self, frame):
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 10)))
        assert SurprisingnessMeasure().score_step(step, "nope") == 0.0


class TestCoverageAndCompactness:
    def test_full_coverage_scores_zero(self, frame):
        step = ExploratoryStep([frame], GroupBy("group", {"value": ["mean"]}))
        assert CoverageMeasure().score_step(step, "mean_value") == pytest.approx(0.0)

    def test_partial_coverage_scores_positive(self, frame):
        operation = GroupBy("group", {"value": ["mean"]},
                            pre_filter=Comparison("value", ">", 12))
        step = ExploratoryStep([frame], operation)
        # Groups are computed only over the filtered rows, so some input rows
        # may fall outside the summarised groups only if a whole group vanishes;
        # either way the score stays within [0, 1].
        score = CoverageMeasure().score_step(step, "mean_value")
        assert 0.0 <= score <= 1.0

    def test_coverage_not_applicable_to_filters(self, frame):
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 10)))
        assert CoverageMeasure().applicable_columns(step) == []

    def test_compactness_rewards_fewer_groups(self, frame):
        few_groups = ExploratoryStep([frame], GroupBy("group", {"value": ["mean"]}))
        many_groups = ExploratoryStep(
            [frame.with_column(frame["value"].rename("fine_key"))],
            GroupBy("fine_key", {"value": ["mean"]}),
        )
        compactness = CompactnessMeasure()
        assert compactness.score_step(few_groups, "mean_value") > \
            compactness.score_step(many_groups, "mean_value")

    def test_compactness_bounded(self, frame):
        step = ExploratoryStep([frame], GroupBy("group", {"value": ["mean"]}))
        assert 0.0 <= CompactnessMeasure().score_step(step, "mean_value") <= 1.0


class TestExtendedRegistry:
    def test_contains_all_measures(self):
        registry = extended_registry()
        for name in ("exceptionality", "diversity", "surprisingness", "coverage", "compactness"):
            assert name in registry

    def test_engine_runs_with_surprisingness(self, frame):
        step = ExploratoryStep([frame], Filter(Comparison("value", ">", 13)))
        explainer = FedexExplainer(FedexConfig(seed=0), registry=extended_registry())
        report = explainer.explain(step, measure="surprisingness")
        assert report.interestingness_scores
        assert all(c.measure_name == "surprisingness" for c in report.all_candidates)
