"""Adversarial test tier of the cost-model scheduler and work-stealing.

The contract under test extends the exact-rerun oracle to *scheduling*:
however the grid is cut (fixed counts, static cost estimates, measured
history), however pairs move between workers (batches, steal-board claims,
mid-steal splits), and even when a thief is SIGKILLed immediately after a
successful steal, the results must be identical to the serial incremental
backend — scheduling may move execution, never change a float.

Covers, per the PR's test-tier brief:

* the batch planner's policy precedence and equal-predicted-cost slicing
  on skewed grids (the whale pair never drags cheap pairs behind it);
* skyline + score equivalence (≤1e-9, in fact bit-identical) under
  adaptive × stealing × shared-structures at 1/2/4 workers, for both the
  process and the thread backend, including a hypothesis sweep;
* crash injection mid-steal: a worker killed right after a successful
  steal orphans its stolen range, which must come back serially and
  bit-identically, with the steal still counted (the board file survives
  the worker);
* the shared structure tier: post-crash replacement pools load published
  structures instead of rebuilding, and a rewritten dataset keys fresh
  entries — never a stale hit;
* measured pair costs flowing context → planner: a second run of the same
  step upgrades the batch policy to ``cost-history``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContributionCalculator,
    ExceptionalityMeasure,
    FrequencyPartitioner,
    NumericBinningPartitioner,
    ProcessBackend,
)
from repro.core.backends.base import resolve_flag
from repro.core.backends.costs import (
    PLAN_CLASS_WEIGHTS,
    estimate_pair_cost,
    history_key,
    pair_key,
    plan_batches,
)
from repro.core.backends.incremental import IncrementalBackend
from repro.core.backends.parallel import ParallelBackend
from repro.core.backends.process import shutdown_process_pools
from repro.dataframe import Comparison
from repro.errors import ExplanationError
from repro.operators import ExploratoryStep, Filter
from repro.storage import DatasetStore
from repro.storage.reader import clear_shared_datasets


WORKERS = 2


# ------------------------------------------------------------------- helpers
class _FakePartition:
    def __init__(self, attribute, n_sets=4, input_index=0):
        self.input_index = input_index
        self.method = "frequency"
        self.source_attribute = attribute
        self.n_requested = n_sets
        self.sets = [object()] * n_sets
        self.ignore_set = None


class _FakeFrame:
    def __init__(self, n_rows):
        self.num_rows = n_rows

    def __contains__(self, name):
        return False


class _FakeStep:
    def __init__(self, n_rows):
        self.inputs = [_FakeFrame(n_rows)]


class _FakeInner:
    """plan_class by attribute name; enough surface for the cost model."""

    def __init__(self, classes, n_rows=1_000):
        self.step = _FakeStep(n_rows)
        self._classes = classes

    def plan_class(self, input_index, attribute):
        return self._classes.get(attribute, "slice")


class _CostHistoryContext:
    """The session's pair-cost hooks, minus the session."""

    def __init__(self):
        self.costs = {}

    def pair_costs(self, key):
        return dict(self.costs.get(key, {}))

    def store_pair_costs(self, key, costs):
        self.costs.setdefault(key, {}).update(costs)

    # Structure hooks the embedded incremental backend expects of any
    # context: build-through, no caching (costs are what's under test).
    def row_sources(self, step, build):
        return build(step)

    def groupby_structure(self, step, build):
        return build(step)

    def left_join_structure(self, step, build):
        return build(step)


def _skewed_grid(frame, widths=(2, 3, 4, 5, 6, 7)):
    """Partitions with very different set counts: a cost-skewed grid."""
    partitions = [FrequencyPartitioner().partition(frame, "decade", width)
                  for width in widths]
    partitions.append(NumericBinningPartitioner().partition(frame, "popularity", 8))
    return [(partition, partition.source_attribute) for partition in partitions]


def _reference(step, measure, grid):
    return _run_backend(IncrementalBackend(step, measure), step, measure, grid)


def _run_backend(backend, step, measure, grid):
    calculator = ContributionCalculator(step, measure, backend=backend)
    calculator.prefetch(grid)
    return {
        (id(partition), attribute): calculator.partition_contributions(
            partition, attribute)
        for partition, attribute in grid
    }


@pytest.fixture
def filter_step(spotify_small):
    return ExploratoryStep([spotify_small],
                           Filter(Comparison("popularity", ">", 65)))


# ------------------------------------------------------------- the cost model
class TestCostModel:
    def test_estimates_order_plan_classes(self):
        costs = {name: estimate_pair_cost(name, 4, 1_000)
                 for name in PLAN_CLASS_WEIGHTS}
        assert (costs["exact"] > costs["leftjoin"] > costs["slice"]
                > costs["groupby"] > costs["constant"])
        # Object-dtype targets pay the python-comparison factor.
        assert (estimate_pair_cost("slice", 4, 1_000, object_dtype=True)
                > estimate_pair_cost("slice", 4, 1_000))
        # Even free pairs pay dispatch overhead (no zero-cost batches).
        assert estimate_pair_cost("constant", 1, 0) == 1.0

    def test_policy_precedence(self, monkeypatch):
        inner = _FakeInner({})
        pairs = [(_FakePartition("a"), "a") for _ in range(8)]
        assert plan_batches(pairs, workers=2, inner=inner,
                            shard_batch=3).policy == "fixed"
        monkeypatch.setenv("REPRO_SHARD_BATCH", "2")
        assert plan_batches(pairs, workers=2, inner=inner).policy == "env"
        monkeypatch.delenv("REPRO_SHARD_BATCH")
        assert plan_batches(pairs, workers=2, inner=inner,
                            adaptive=False).policy == "count-auto"
        assert plan_batches(pairs, workers=2, inner=None).policy == "count-auto"
        assert plan_batches(pairs, workers=2, inner=inner).policy == "cost-static"
        assert plan_batches([], workers=2, inner=inner).policy == "empty"

    def test_uniform_costs_degrade_to_count_slices(self):
        inner = _FakeInner({})
        pairs = [(_FakePartition(f"a{i}", n_sets=3), f"a{i}") for i in range(12)]
        plan = plan_batches(pairs, workers=1, inner=inner)
        assert plan.policy == "cost-static"
        assert [len(batch) for batch in plan.batches] == [3, 3, 3, 3]
        assert [pair for batch in plan.batches for pair in batch] == pairs

    def test_whale_pair_never_drags_cheap_pairs(self):
        """The batch holding the expensive pair is cut right after it."""
        inner = _FakeInner({"whale": "exact"})
        pairs = [(_FakePartition(f"a{i}", n_sets=2), f"a{i}") for i in range(5)]
        pairs += [(_FakePartition("whale", n_sets=50), "whale")]
        pairs += [(_FakePartition(f"b{i}", n_sets=2), f"b{i}") for i in range(6)]
        plan = plan_batches(pairs, workers=1, inner=inner)
        assert plan.policy == "cost-static"
        whale_batch = next(batch for batch in plan.batches
                           if any(attr == "whale" for _, attr in batch))
        assert whale_batch[-1][1] == "whale"
        assert [pair for batch in plan.batches for pair in batch] == pairs

    def test_history_upgrades_policy_and_outweighs_estimates(self):
        inner = _FakeInner({})
        whale = _FakePartition("whale", n_sets=2)
        pairs = [(_FakePartition(f"a{i}", n_sets=2), f"a{i}") for i in range(7)]
        pairs.insert(0, (whale, "whale"))
        # Statically the grid is uniform; history says the first pair is
        # 100× the others (the exact-rerun skew the model cannot see).
        history = {pair_key(whale, "whale"): 1.0}
        for partition, attribute in pairs[1:]:
            history[pair_key(partition, attribute)] = 0.01
        plan = plan_batches(pairs, workers=1, inner=inner, history=history)
        assert plan.policy == "cost-history"
        assert plan.batches[0] == [pairs[0]]

    def test_plan_class_answers_for_a_real_backend(self, filter_step):
        inner = IncrementalBackend(filter_step, ExceptionalityMeasure())
        before = inner.plan_class(0, "popularity")
        assert before in PLAN_CLASS_WEIGHTS
        inner._plan_for(0, "popularity")
        # The pre-plan classification and the cached plan's class agree.
        assert inner.plan_class(0, "popularity") == before

    def test_resolve_flag_parses_and_rejects(self, monkeypatch):
        assert resolve_flag(True, "REPRO_TEST_FLAG", False) is True
        assert resolve_flag(False, "REPRO_TEST_FLAG", True) is False
        assert resolve_flag(None, "REPRO_TEST_FLAG", True) is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert resolve_flag(None, "REPRO_TEST_FLAG", True) is False
        monkeypatch.setenv("REPRO_TEST_FLAG", "yes")
        assert resolve_flag(None, "REPRO_TEST_FLAG", False) is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "maybe")
        with pytest.raises(ExplanationError):
            resolve_flag(None, "REPRO_TEST_FLAG", False)


# ------------------------------------------------- skewed-grid equivalence
class TestSkewedGridEquivalence:
    """Scheduling may move execution between workers, never change a float."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("adaptive,steal,shared", [
        (True, False, False),
        (True, True, False),
        (True, True, True),
        (False, True, False),
    ])
    def test_process_backend_matches_serial(self, filter_step, tmp_path,
                                            monkeypatch, workers, adaptive,
                                            steal, shared):
        monkeypatch.setenv("REPRO_STRUCTURE_DIR", str(tmp_path / "shared"))
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(filter_step.primary_input)
        reference = _reference(filter_step, measure, grid)
        backend = ProcessBackend(filter_step, measure, workers=workers,
                                 spill_bytes=0, adaptive_batch=adaptive,
                                 steal=steal, shared_structures=shared)
        results = _run_backend(backend, filter_step, measure, grid)
        assert results == reference  # bit-identical, not approximately
        if workers > 1:
            expected = "cost-static" if adaptive else "count-auto"
            assert backend.stats()["batch_policy"] == expected

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("steal", [False, True])
    def test_thread_backend_matches_serial(self, filter_step, workers, steal):
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(filter_step.primary_input)
        reference = _reference(filter_step, measure, grid)
        backend = ParallelBackend(filter_step, measure, workers=workers,
                                  steal=steal)
        results = _run_backend(backend, filter_step, measure, grid)
        assert results == reference
        stats = backend.stats()
        assert stats["batch_policy"] == "cost-static"
        assert stats["batches_submitted"] > 0

    @settings(max_examples=5, deadline=None)
    @given(threshold=st.integers(min_value=50, max_value=80),
           widths=st.lists(st.integers(min_value=2, max_value=9),
                           min_size=3, max_size=6))
    def test_hypothesis_stealing_is_identical(self, spotify_small, threshold,
                                              widths):
        """Property: any skew, any steal interleaving — identical floats."""
        step = ExploratoryStep(
            [spotify_small], Filter(Comparison("popularity", ">", threshold)))
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(step.primary_input, widths=tuple(widths))
        reference = _reference(step, measure, grid)
        backend = ProcessBackend(step, measure, workers=WORKERS,
                                 spill_bytes=0, steal=True)
        assert _run_backend(backend, step, measure, grid) == reference


# ---------------------------------------------------------- crash mid-steal
class TestCrashMidSteal:
    def test_stolen_range_is_retried_serially_and_identically(self, filter_step):
        """A thief SIGKILLed right after its steal orphans the stolen range;
        the parent must serve every orphaned pair serially, bit-identically,
        and still count the steal (the board file outlives the worker)."""
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(filter_step.primary_input)
        reference = _reference(filter_step, measure, grid)
        # One initial slot forces the second worker's first claim to be a
        # steal (remainder of the whole grid minus one pair, always >= 2).
        backend = ProcessBackend(filter_step, measure, workers=WORKERS,
                                 spill_bytes=0, steal=True,
                                 shard_batch=len(grid),
                                 crash_after_steal=True)
        results = _run_backend(backend, filter_step, measure, grid)
        assert results == reference
        stats = backend.stats()
        assert stats["steals"] >= 1
        assert stats["stolen_pairs"] >= 1
        assert stats["serial_retries"] >= 1
        assert backend._queue_board is None  # board folded and removed

    def test_healthy_steal_run_counts_and_cleans_up(self, filter_step):
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(filter_step.primary_input)
        reference = _reference(filter_step, measure, grid)
        backend = ProcessBackend(filter_step, measure, workers=WORKERS,
                                 spill_bytes=0, steal=True)
        results = _run_backend(backend, filter_step, measure, grid)
        assert results == reference
        stats = backend.stats()
        assert stats["serial_retries"] == 0
        assert stats["shards_completed"] == len(grid)
        assert backend._queue_board is None


# ------------------------------------------------------ shared structure tier
class TestSharedStructureTier:
    @pytest.fixture
    def unique_store(self, tmp_path):
        """A dataset no other test's worker has ever seen (unique seed), so
        worker-local L1 caches cannot mask the shared tier."""
        from repro.datasets import load_spotify

        store = DatasetStore(tmp_path / "store")
        store.put("d", load_spotify(n_rows=1_500, seed=104729))
        return store

    def test_post_crash_pool_loads_published_structures(self, unique_store,
                                                        tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STRUCTURE_DIR", str(tmp_path / "shared"))
        measure = ExceptionalityMeasure()
        step = ExploratoryStep([unique_store.open("d")],
                               Filter(Comparison("popularity", ">", 65)))
        grid = _skewed_grid(step.primary_input)
        reference = _reference(step, measure, grid)

        publisher = ProcessBackend(step, measure, workers=WORKERS,
                                   shared_structures=True)
        assert _run_backend(publisher, step, measure, grid) == reference
        assert publisher.stats()["shared_structure_stores"] > 0

        crashing = ProcessBackend(step, measure, workers=WORKERS,
                                  shared_structures=True, crash_shards=1)
        assert _run_backend(crashing, step, measure, grid) == reference

        # The crash discarded the pool: the replacement pool's workers have
        # empty L1 caches and must load from the shared tier instead of
        # rebuilding.
        replacement = ProcessBackend(step, measure, workers=WORKERS,
                                     shared_structures=True)
        assert _run_backend(replacement, step, measure, grid) == reference
        assert replacement.stats()["shared_structure_hits"] > 0

    def test_rewritten_dataset_keys_fresh_entries(self, unique_store, tmp_path,
                                                  monkeypatch):
        from repro.datasets import load_spotify

        shared_dir = tmp_path / "shared"
        monkeypatch.setenv("REPRO_STRUCTURE_DIR", str(shared_dir))
        measure = ExceptionalityMeasure()
        step = ExploratoryStep([unique_store.open("d")],
                               Filter(Comparison("popularity", ">", 65)))
        grid = _skewed_grid(step.primary_input)
        first = ProcessBackend(step, measure, workers=WORKERS,
                               shared_structures=True)
        _run_backend(first, step, measure, grid)
        published = len(list(shared_dir.glob("*.pkl")))
        assert published > 0

        # Rewrite the dataset in place: same name, different content.
        unique_store.put("d", load_spotify(n_rows=1_500, seed=224737))
        clear_shared_datasets()
        shutdown_process_pools()  # fresh workers: no L1 to hide behind
        rewritten = ExploratoryStep([unique_store.open("d")],
                                    Filter(Comparison("popularity", ">", 65)))
        grid2 = _skewed_grid(rewritten.primary_input)
        reference = _reference(rewritten, measure, grid2)
        second = ProcessBackend(rewritten, measure, workers=WORKERS,
                                shared_structures=True)
        assert _run_backend(second, rewritten, measure, grid2) == reference
        stats = second.stats()
        # New fingerprints key new entries: nothing stale is ever served,
        # and the store grows instead of answering.
        assert stats["shared_structure_hits"] == 0
        assert len(list(shared_dir.glob("*.pkl"))) > published


# ------------------------------------------------------------- cost history
class TestCostHistory:
    def test_process_backend_upgrades_to_history_policy(self, filter_step):
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(filter_step.primary_input)
        context = _CostHistoryContext()
        first = ProcessBackend(filter_step, measure, workers=WORKERS,
                               spill_bytes=0, context=context)
        _run_backend(first, filter_step, measure, grid)
        assert first.stats()["batch_policy"] == "cost-static"
        assert context.costs  # measured timings came home and were stored

        second = ProcessBackend(filter_step, measure, workers=WORKERS,
                                spill_bytes=0, context=context)
        results = _run_backend(second, filter_step, measure, grid)
        assert second.stats()["batch_policy"] == "cost-history"
        assert results == _reference(filter_step, measure, grid)

    def test_thread_backend_upgrades_to_history_policy(self, filter_step):
        measure = ExceptionalityMeasure()
        grid = _skewed_grid(filter_step.primary_input)
        context = _CostHistoryContext()
        first = ParallelBackend(filter_step, measure, workers=WORKERS,
                                context=context)
        _run_backend(first, filter_step, measure, grid)
        assert first.stats()["batch_policy"] == "cost-static"
        key = history_key(filter_step)
        assert context.costs.get(key)

        second = ParallelBackend(filter_step, measure, workers=WORKERS,
                                 context=context)
        _run_backend(second, filter_step, measure, grid)
        assert second.stats()["batch_policy"] == "cost-history"

    def test_session_cache_keeps_pair_costs(self):
        from repro.session.cache import SessionCache

        cache = SessionCache()
        key = ("paircosts", "filter", "sig", ("fp",))
        assert cache.pair_costs(key) == {}
        cache.store_pair_costs(key, {("p", "a"): 0.5})
        cache.store_pair_costs(key, {("p", "b"): 0.25})
        # Merge-on-write: later flushes extend, never erase, earlier ones.
        assert cache.pair_costs(key) == {("p", "a"): 0.5, ("p", "b"): 0.25}
